"""Quickstart: preprocess a graph and explore it interactively.

Runs the full graphVizdb flow on a small synthetic citation graph:

1. generate a graph;
2. run the offline preprocessing pipeline (partition -> layout -> organise ->
   abstraction layers -> store & index);
3. open an exploration session and issue the three online operations the paper
   describes (interactive navigation, multi-level exploration, keyword search).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GraphVizDBConfig, GraphVizDBServer
from repro.graph import patent_like


def main() -> None:
    # 1. A synthetic citation graph (stand-in for the SNAP Patent dataset).
    graph = patent_like(num_patents=800, seed=7)
    print(f"dataset: {graph.name} with {graph.num_nodes} nodes / {graph.num_edges} edges")

    # 2. Offline preprocessing (Steps 1-5 of the paper's Fig. 1).
    server = GraphVizDBServer(GraphVizDBConfig.small())
    handle = server.load_dataset(graph)
    report = server.preprocessing_report(handle.name)
    print("preprocessing report (seconds):")
    for timing in report.steps:
        print(f"  step {timing.step} ({timing.name:<20}): {timing.seconds:8.3f}")
    print(f"  layers stored: {handle.database.num_layers}")

    # 3a. Interactive navigation: the initial viewport plus a pan.
    session = server.create_session(handle.name)
    initial = session.refresh()
    print(f"initial viewport: {len(initial.payload.nodes)} nodes, "
          f"{len(initial.payload.edges)} edges "
          f"({initial.db_query_seconds * 1000:.2f} ms in the database)")
    panned = session.pan(400, 0)
    print(f"after panning right: {panned.num_objects} objects in the window")

    # 3b. Multi-level exploration: jump to the most abstract layer.
    top_layer = session.available_layers()[-1]
    abstract = session.change_layer(top_layer)
    print(f"layer {top_layer}: {abstract.num_objects} objects (abstraction of the same window)")
    session.change_layer(0)

    # 3c. Keyword search + focus on node.
    matches = session.search("patent 0000042", limit=5)
    if matches.num_matches:
        first = matches.matches[0]
        print(f"search hit: node {first['node_id']} {first['label']!r} at "
              f"({first['x']:.0f}, {first['y']:.0f})")
        focused = session.focus_on(first["node_id"])
        print(f"focused window contains {focused.num_objects} objects")

    # Statistics panel.
    stats = server.dataset_statistics(handle.name)
    print(f"statistics: average degree {stats.average_degree:.2f}, "
          f"density {stats.density:.6f}, components {stats.num_components}")


if __name__ == "__main__":
    main()

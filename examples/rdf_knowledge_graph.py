"""RDF knowledge-graph scenario: multi-level exploration, birdview and SQLite.

Mirrors the Wikidata/DBpedia side of the paper's demonstration:

* preprocess an RDF-style graph with PageRank as the abstraction criterion
  ("sites whose PageRank score is above a threshold" in the Notre Dame demo);
* print the birdview panel as ASCII art and jump to its densest region;
* hide RDF literal nodes with the Filter panel;
* walk the abstraction layers top-down, watching the level of detail grow;
* persist the whole database to SQLite and reopen it.

Run with::

    python examples/rdf_knowledge_graph.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    AbstractionConfig,
    GraphVizDBConfig,
    GraphVizDBServer,
    LayoutConfig,
    PartitionConfig,
)
from repro.client import Birdview
from repro.core import QueryManager
from repro.graph import wikidata_like
from repro.storage import load_from_sqlite, save_to_sqlite


def main() -> None:
    graph = wikidata_like(num_entities=700, seed=11)
    config = GraphVizDBConfig(
        partition=PartitionConfig(max_partition_nodes=400),
        layout=LayoutConfig(iterations=30, area_per_node=20_000.0),
        abstraction=AbstractionConfig(num_layers=3, criterion="pagerank"),
    )
    server = GraphVizDBServer(config)
    handle = server.load_dataset(graph, name="knowledge-graph")
    session = server.create_session("knowledge-graph")

    # --- Birdview panel. ------------------------------------------------------
    birdview = Birdview.from_database(handle.database, layer=0, width=64, height=18)
    print("birdview of the whole plane (node density):")
    print(birdview.to_ascii())
    dense_col, dense_row = birdview.densest_cell()
    target = birdview.cell_center(dense_col, dense_row)
    jumped = session.jump_to(target)
    print(f"jumped to the densest region: {jumped.num_objects} objects in the window")

    # --- Filter panel: hide RDF literals. -------------------------------------
    literal_labels = {
        node.label for node in graph.nodes() if node.node_type == "literal"
    }
    before = session.refresh().num_objects
    session.filters.hidden_node_labels = {label.lower() for label in literal_labels}
    after = session.refresh().num_objects
    print(f"hiding literals: {before} -> {after} objects in the window")
    session.clear_filters()

    # --- Multi-level exploration, most abstract first. ------------------------
    print("walking the PageRank abstraction layers (top-down):")
    for layer in reversed(session.available_layers()):
        stats = server.layer_statistics("knowledge-graph", layer)
        result = session.change_layer(layer)
        print(f"  layer {layer}: {stats.num_nodes:5d} nodes / {stats.num_edges:5d} edges "
              f"stored; {result.num_objects:5d} objects in the current window")

    # --- Keyword search over entity labels. ------------------------------------
    session.change_layer(0)
    hits = session.search("databases", limit=5)
    print(f"search 'databases': {hits.num_matches} entities, e.g. "
          f"{[match['label'] for match in hits.matches[:3]]}")

    # --- SQLite persistence. ----------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "knowledge-graph.db"
        save_to_sqlite(handle.database, db_path)
        reloaded = load_from_sqlite(db_path)
        manager = QueryManager(reloaded)
        viewport = manager.default_viewport()
        roundtrip = manager.viewport_query(viewport)
        print(f"SQLite round trip: {db_path.stat().st_size / 1024:.0f} KiB on disk, "
              f"{roundtrip.num_objects} objects served after reload")


if __name__ == "__main__":
    main()

"""Reproduce the paper's evaluation (Table I and Fig. 3) in one script.

A scaled-down version of the benchmark harness intended for a quick local run
(about a minute); the full harness lives in ``benchmarks/`` and is run with
``pytest benchmarks/ --benchmark-only``.

Run with::

    python examples/reproduce_paper.py [scale]

where ``scale`` (default 0.25) multiplies the synthetic dataset sizes.
"""

from __future__ import annotations

import sys

from repro.bench import (
    build_benchmark_datasets,
    format_figure3,
    format_table1,
    run_figure3,
    run_table1,
)
from repro.config import GraphVizDBConfig


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    config = GraphVizDBConfig.benchmark()
    datasets = build_benchmark_datasets(scale=scale)
    for name, graph in datasets.items():
        print(f"{name}: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # Table I — preprocessing time per step.
    table1 = run_table1(datasets=datasets, config=config)
    print()
    print(format_table1(table1))

    # Fig. 3 — window query latency breakdown vs window size (both datasets).
    print()
    for name in ("wikidata-like", "patent-like"):
        series = run_figure3(
            table1.results[name],
            name,
            queries_per_size=30,
        )
        print(format_figure3(series))
        print()


if __name__ == "__main__":
    main()

"""Simulated web client driving the JSON API layer.

The original graphVizdb frontend is an HTML/JavaScript application talking to
HTTP endpoints.  This example plays the role of that frontend: it calls the
transport-agnostic API handlers (`repro.core.api.GraphVizDBApi`) exactly the way
an HTTP layer would — dictionaries in, dictionaries out — and walks through a
typical user session: pick a dataset, load the first screen, search, focus,
switch abstraction layers, edit, and read the monitoring summary.

Run with::

    python examples/web_api_simulation.py
"""

from __future__ import annotations

import json

from repro import GraphVizDBConfig, GraphVizDBServer
from repro.core import GraphVizDBApi, QueryLog
from repro.core.session import ExplorationSession
from repro.graph.datasets import load_dataset


def main() -> None:
    # --- Server bootstrap (what a deployment would do at startup). -----------
    server = GraphVizDBServer(GraphVizDBConfig.small())
    server.load_dataset(load_dataset("acm", scale=0.3, seed=21), name="acm")
    server.load_dataset(load_dataset("webgraph", scale=0.15, seed=21), name="webgraph")
    api = GraphVizDBApi(server)

    # --- GET /datasets --------------------------------------------------------
    datasets = api.list_datasets()
    print("available datasets:")
    for entry in datasets["datasets"]:
        print(f"  {entry['name']:<10} {entry['num_nodes']:>6} nodes "
              f"{entry['num_edges']:>6} edges  layers={entry['layers']}")

    # --- GET /datasets/acm ----------------------------------------------------
    info = api.dataset_info("acm")
    print(f"acm average degree: {info['statistics']['average_degree']:.2f}, "
          f"layers: {[layer['layer'] for layer in info['layers']]}")

    # --- POST /datasets/acm/window (the first screen). ------------------------
    bounds = server.dataset("acm").database.bounds(0)
    first_screen = api.window("acm", {
        "min_x": bounds.center.x - 640, "max_x": bounds.center.x + 640,
        "min_y": bounds.center.y - 400, "max_y": bounds.center.y + 400,
    })
    print(f"first screen: {len(first_screen['nodes'])} nodes, "
          f"{len(first_screen['edges'])} edges, "
          f"{first_screen['chunks']} streamed chunks, "
          f"db={first_screen['timings_ms']['db_query']:.2f} ms")

    # --- POST /datasets/acm/search + /focus ------------------------------------
    hits = api.search("acm", {"keyword": "Faloutsos", "limit": 5})
    print(f"search 'Faloutsos': {hits['num_matches']} matches")
    if hits["matches"]:
        node_id = hits["matches"][0]["node_id"]
        focused = api.focus("acm", {
            "node_id": node_id, "viewport_width": 1280, "viewport_height": 800,
        })
        print(f"focused on node {node_id}: {focused['num_objects']} objects around "
              f"({focused['center']['x']:.0f}, {focused['center']['y']:.0f})")
        neighbours = api.node("acm", node_id)["neighbours"]
        print(f"information panel: degree {len(neighbours)}")

    # --- POST /datasets/acm/layer (multi-level exploration). -------------------
    top_layer = server.dataset("acm").database.layers()[-1]
    abstract = api.layer("acm", {
        "min_x": bounds.min_x, "max_x": bounds.max_x,
        "min_y": bounds.min_y, "max_y": bounds.max_y,
        "layer": top_layer,
    })
    print(f"layer {top_layer} over the whole plane: {abstract['num_objects']} objects")

    # --- POST /datasets/acm/edit ------------------------------------------------
    if hits["matches"]:
        edited = api.edit("acm", {
            "operation": "rename_node",
            "node_id": hits["matches"][0]["node_id"],
            "label": "Christos Faloutsos (edited via API)",
        })
        print(f"edit applied, rows touched: {edited['rows_touched']}")
        assert api.search("acm", {"keyword": "edited via api"})["num_matches"] == 1

    # --- Monitoring: a logged exploration session. ------------------------------
    log = QueryLog()
    session = ExplorationSession(server.dataset("webgraph").query_manager, query_log=log)
    session.refresh()
    for _ in range(5):
        session.pan(250, 100)
    session.zoom_with_level_of_detail(0.2, max_objects=400)
    print("monitoring summary for the webgraph session:")
    print(json.dumps(log.summary(), indent=2))


if __name__ == "__main__":
    main()

"""Citation-network scenario: filters, pathway navigation and the Edit panel.

Mirrors the paper's demonstration outline on an ACM/Patent-style citation
graph:

* hide irrelevant edge types and "visualize only the cite edges";
* use keyword search plus the "Focus on node" mode to follow citation paths
  (the "Christos Faloutsos - has-author - article - has-author" scenario,
  transplanted to patents citing patents);
* store a graph modification through the Edit panel and see it reflected in
  subsequent queries.

Run with::

    python examples/citation_network.py
"""

from __future__ import annotations

from repro import GraphVizDBConfig, GraphVizDBServer
from repro.client import ClientSimulator
from repro.graph import patent_like
from repro.graph.traversal import shortest_path


def main() -> None:
    graph = patent_like(num_patents=1200, seed=3)
    server = GraphVizDBServer(GraphVizDBConfig.small())
    handle = server.load_dataset(graph, name="patents")
    session = server.create_session("patents")

    # --- Filter panel: only the citation edges stay visible. -----------------
    everything = session.refresh()
    only_cites = session.show_only_edges({"cites"})
    hidden = session.hide_edge_label("cites")  # hide them instead: canvas empties
    print(f"all edges in the window: {len(everything.payload.edges)}; "
          f"'show only cites': {len(only_cites.payload.edges)}; "
          f"'hide cites': {len(hidden.payload.edges)}")
    session.clear_filters()

    # --- Pathway navigation with Focus on node. ------------------------------
    # Pick the most cited patent and follow a citation path from it.
    most_cited = max(graph.node_ids(), key=graph.in_degree)
    leaf = max(graph.node_ids(), key=graph.out_degree)
    path = shortest_path(graph, leaf, most_cited)
    print(f"most cited patent: {graph.node(most_cited).label!r} "
          f"({graph.in_degree(most_cited)} citations)")
    if path:
        print(f"following a {len(path)}-hop citation path with focus-on-node:")
        for node_id in path:
            result = session.focus_on(node_id)
            info = handle.query_manager.node_info(node_id)
            print(f"  {info['label']:<32} degree={info['degree']:<3} "
                  f"window objects={result.num_objects}")

    # --- Client cost accounting (what the browser would spend). --------------
    simulator = ClientSimulator(handle.query_manager)
    timing = simulator.account(session.refresh())
    print("latency breakdown for the current window (seconds):")
    print(f"  db query      : {timing.db_query_seconds:.4f}")
    print(f"  build JSON    : {timing.json_build_seconds:.4f}")
    print(f"  comm + render : {timing.communication_rendering_seconds:.4f}")
    print(f"  total         : {timing.total_seconds:.4f} for {timing.num_objects} objects")

    # --- Edit panel: record a new citation and persist it. -------------------
    editor = server.create_editor("patents")
    source, target = path[0], path[-1] if path else (leaf, most_cited)
    editor.add_edge(source, target, label="cites")
    print(f"added edge {source} -> {target}; journal: "
          f"{[operation.kind for operation in editor.journal]}")
    refreshed = session.focus_on(source)
    assert any(
        {row.node1_id, row.node2_id} == {source, target} for row in refreshed.rows
    ), "the edited edge must be visible in the focused window"
    print("the new citation is visible in the focused window")


if __name__ == "__main__":
    main()

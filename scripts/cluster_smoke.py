#!/usr/bin/env python
"""2-worker cluster smoke: start, query through the router, kill a worker,
query again, drain.

The no-pytest proof that the cluster subsystem works end to end on a bare
checkout (CI runs it from ``scripts/bench_smoke.sh``).  Builds two tiny
preprocessed shards in a temp dir, starts a ``ClusterRuntime`` with two
worker processes, and walks the lifecycle the subsystem exists for:

1. window + keyword queries through the router (both shards);
2. a repeated window served by the cross-request cache;
3. a fleet-wide ``/debug/profile`` under cache-busting window load — the
   merged collapsed stacks must attribute samples to the ``window`` op —
   written to ``profile.collapsed``, plus ``/debug/memory`` aggregation;
4. a ``POST /edit/add_node`` through the router — the ack carries the
   journal sequence, the cached window invalidates eagerly, and the edit is
   immediately visible to the next read;
5. SIGKILL the worker that owns the edited shard, then query it again —
   failover to the survivor must answer 200 *with the acknowledged edit
   present* (cold open + write-ahead-journal replay), and the supervisor
   must bring a replacement back to healthy;
6. graceful drain.

Prints a JSON summary and exits non-zero on any failed expectation.
"""

from __future__ import annotations

import http.client
import json
import re
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

#: Prometheus text exposition format 0.0.4, line by line: a HELP/TYPE
#: comment, or ``name{labels} value`` with a parseable number.
_EXPO_COMMENT = re.compile(r"^# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*(?: .*)?$")
_EXPO_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?(?:[0-9.]+(?:[eE][+-]?[0-9]+)?|Inf)|\+Inf|NaN)$"
)


def get(port: int, target: str, timeout: float = 60.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("GET", target)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get_text(port: int, target: str, timeout: float = 60.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("GET", target)
        response = connection.getresponse()
        return (
            response.status,
            response.read().decode(),
            {key.lower(): value for key, value in response.getheaders()},
        )
    finally:
        connection.close()


def check_prometheus(port: int) -> int:
    """Scrape ``?format=prometheus`` and validate every line; returns samples."""
    status, text, headers = get_text(port, "/metrics?format=prometheus")
    assert status == 200, f"prometheus scrape failed: {status}"
    assert headers.get("content-type", "").startswith("text/plain"), headers
    samples = 0
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert _EXPO_COMMENT.match(line), f"bad exposition comment: {line!r}"
            continue
        match = _EXPO_SAMPLE.match(line)
        assert match, f"bad exposition sample line: {line!r}"
        if match.group(1).startswith("gvdb_"):
            value = float(match.group(3).replace("+Inf", "inf"))
            assert value >= 0, f"negative gvdb sample: {line!r}"
            samples += 1
    assert samples > 0, "prometheus exposition contained no gvdb_* samples"
    return samples


def post(port: int, target: str, body: dict, timeout: float = 60.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("POST", target, body=json.dumps(body).encode())
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def main() -> int:
    from repro.cluster.router import ClusterRuntime
    from repro.config import ClusterConfig, GraphVizDBConfig
    from repro.core.pipeline import PreprocessingPipeline
    from repro.graph.generators import patent_like
    from repro.storage.sqlite_backend import save_to_sqlite

    summary: dict[str, object] = {}
    base = Path(tempfile.mkdtemp(prefix="cluster-smoke-"))
    result = PreprocessingPipeline(GraphVizDBConfig.small()).run(
        patent_like(num_patents=200, seed=7)
    )
    paths: dict[str, str] = {}
    for name in ("smoke-a", "smoke-b"):
        path = base / f"{name}.db"
        save_to_sqlite(result.database, path)
        paths[name] = str(path)

    config = GraphVizDBConfig(cluster=ClusterConfig(
        num_workers=2, health_interval_seconds=0.1, restart_backoff_seconds=0.01
    ))
    started = time.perf_counter()
    with ClusterRuntime(paths, config=config) as runtime:
        summary["startup_ms"] = round((time.perf_counter() - started) * 1000)
        port = runtime.port

        status, body = get(port, "/datasets")
        assert status == 200 and body["datasets"] == ["smoke-a", "smoke-b"], body
        for name in paths:
            status, body = get(port, f"/window?dataset={name}&payload=1")
            assert status == 200 and body["meta"]["num_objects"] > 0, (name, body)
            status, body = get(port, f"/keyword?dataset={name}&q=patent&limit=2")
            assert status == 200, (name, body)
            status, body = get(port, f"/nearest?dataset={name}&x=0&y=0&k=2")
            assert status == 200, (name, body)
        status, _ = get(port, "/window?dataset=smoke-a&payload=1")
        assert status == 200
        assert runtime.router.metrics.window_cache_hits >= 1, "cache never hit"
        summary["queries_ok"] = True
        summary["cache_hits"] = runtime.router.metrics.window_cache_hits

        # Mid-workload observability: the merged /metrics JSON must carry
        # fleet-wide latency percentiles, and the Prometheus exposition must
        # be grammatical with every gvdb_* sample nonnegative.
        status, metrics = get(port, "/metrics")
        assert status == 200, "merged metrics fetch failed"
        latency = metrics.get("latency") or {}
        for op in ("window", "keyword", "nearest"):
            state = latency.get(op)
            assert state and state.get("count", 0) >= 1, (op, latency.keys())
            assert 0.0 <= state["p50"] <= state["p95"] <= state["p99"], state
        summary["latency_percentiles_ok"] = True
        summary["prometheus_samples"] = check_prometheus(port)

        # Fleet-wide continuous profiling: hammer cache-busting windows on
        # both shards while /debug/profile fans out to both workers, then
        # check the merged collapsed stacks attribute window-serving frames
        # to the ``window`` op and write the flamegraph-ready file CI
        # archives as an artifact.
        stop_load = threading.Event()

        def window_load(index: int) -> None:
            # Every request targets a distinct window (no two loaders, no two
            # steps repeat), so nothing is served from the router's result
            # cache and the workers actually evaluate windows under load.
            # One keep-alive connection per loader: per-request connection
            # churn would throttle the rate and starve the worker executors
            # of the very work the profile is supposed to catch.
            connection = http.client.HTTPConnection("127.0.0.1", port,
                                                    timeout=10.0)
            step = 0
            while not stop_load.is_set():
                step += 1
                name = "smoke-a" if step % 2 else "smoke-b"
                offset = (step * 0.1371 + index * 7.31) % 60.0
                target = (f"/window?dataset={name}&payload=1"
                          f"&min_x={offset:.4f}&min_y={offset:.4f}"
                          f"&max_x={offset + 40:.4f}&max_y={offset + 40:.4f}")
                try:
                    connection.request("GET", target)
                    connection.getresponse().read()
                except Exception:
                    connection.close()
                    connection = http.client.HTTPConnection(
                        "127.0.0.1", port, timeout=10.0
                    )
                    if stop_load.is_set():
                        break
                    time.sleep(0.01)
            connection.close()

        from repro.obs import format_collapsed, merge_collapsed

        loaders = [threading.Thread(target=window_load, args=(index,),
                                    daemon=True)
                   for index in range(6)]
        for loader in loaders:
            loader.start()
        stacks: dict[str, int] = {}
        window_stacks: dict[str, int] = {}
        try:
            # The window work is a thin slice of a smoke-sized fleet's time,
            # so one short collection can miss it; merge up to three
            # collections (merging collapsed stacks is the router's own
            # fan-in operation) and stop as soon as window-op samples land.
            for _ in range(3):
                status, profile = get(
                    port, "/debug/profile?seconds=2&hz=499", timeout=30.0
                )
                assert status == 200, f"fleet profile failed: {status} {profile}"
                assert len(profile["workers"]) == 2, profile["workers"]
                assert profile["samples"] > 0, "profiler collected no samples"
                stacks = merge_collapsed([stacks, {
                    str(key): int(count)
                    for key, count in profile["stacks"].items()
                }])
                window_stacks = {
                    key: count for key, count in stacks.items()
                    if key.split(";", 1)[0].startswith("window")
                }
                if window_stacks:
                    break
        finally:
            stop_load.set()
            for loader in loaders:
                loader.join(timeout=5.0)
        assert window_stacks, (
            "no samples attributed to the window op; ops seen: "
            + str(sorted({key.split(';', 1)[0] for key in stacks}))
        )
        collapsed_path = Path(__file__).resolve().parents[1] / "profile.collapsed"
        collapsed_path.write_text(format_collapsed(stacks))
        summary["profile_samples"] = sum(stacks.values())
        summary["profile_window_samples"] = sum(window_stacks.values())
        summary["profile_written"] = str(collapsed_path)

        # Fleet memory accounting: the router's /debug/memory aggregates
        # both workers' samples plus its own RSS and cache bytes.
        status, memory = get(port, "/debug/memory?n=5")
        assert status == 200, f"fleet memory debug failed: {status}"
        assert len(memory["workers"]) == 2, memory["workers"]
        assert memory["fleet"]["rss_bytes"] > 0, memory["fleet"]
        assert memory["router"]["rss_bytes"] > 0, memory["router"]
        status, merged = get(port, "/metrics")
        assert status == 200 and merged["memory"]["rss_bytes"] > 0, (
            "merged metrics missing fleet memory section"
        )
        summary["memory_fleet_rss_mb"] = round(
            memory["fleet"]["rss_bytes"] / (1024 * 1024)
        )

        # Durable write through the router: journalled ack + eager cache
        # invalidation (the cached smoke-a window from step 2 must go stale
        # *now*, not at the next health probe).
        status, ack = post(port, "/edit/add_node?dataset=smoke-a", {
            "node_id": 990001, "label": "smoke-edit-probe", "x": 3.0, "y": 3.0,
        })
        assert status == 200 and ack["seq"] >= 1, f"edit failed: {status} {ack}"
        status, body = get(port, "/keyword?dataset=smoke-a&q=smoke-edit-probe")
        assert status == 200 and body["num_matches"] == 1, (status, body)
        summary["write_ok"] = True
        summary["write_seq"] = ack["seq"]

        victim = runtime.health_summary()["assignment"]["smoke-a"]
        generation = runtime.router._handles[victim].generation
        runtime.router._handles[victim].process.kill()
        killed_at = time.perf_counter()
        # Failover must replay the journal: the acknowledged edit survives
        # the SIGKILL of the worker that held it in memory.
        status, body = get(port, "/keyword?dataset=smoke-a&q=smoke-edit-probe")
        assert status == 200, f"failover query failed: {status} {body}"
        assert body["num_matches"] == 1, f"acknowledged edit lost: {body}"
        summary["failover_ms"] = round((time.perf_counter() - killed_at) * 1000)
        summary["edit_survived_kill"] = True

        deadline = time.perf_counter() + 60.0
        while time.perf_counter() < deadline:
            handle = runtime.router._handles[victim]
            if handle.healthy and handle.generation > generation:
                break
            time.sleep(0.05)
        else:
            raise AssertionError(f"worker {victim} was never restarted")
        summary["restart_ms"] = round((time.perf_counter() - killed_at) * 1000)
        status, _ = get(port, "/window?dataset=smoke-a")
        assert status == 200, "query after restart failed"

        processes = [h.process for h in runtime.router._handles.values()]
        drain_started = time.perf_counter()
    summary["drain_ms"] = round((time.perf_counter() - drain_started) * 1000)
    assert all(not p.is_alive() for p in processes), "drain left workers running"
    summary["drained"] = True
    print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Regression gate over the ``BENCH_*.json`` trajectory files.

Every benchmark appends one JSON entry per run to a ``BENCH_<area>.json``
file at the repo root (the "trajectory" convention — see ROADMAP.md).  This
script compares, for each (dataset, kind, scale) series in each file, the
**latest** entry against the **previous** one and flags metrics that moved
in the *bad* direction by more than a threshold (default 20 %).

Directionality is keyed off naming conventions, not a hand-maintained table:

* lower-is-better: ``*_ms`` / ``*_ns`` / ``*_seconds`` timings, ``p50`` /
  ``p95`` / ``p99`` quantiles, ``*latency*``, ``*overhead*``, ``*lost*``;
* higher-is-better: ``*_per_second``, ``*speedup*``, ``*throughput*``,
  ``*qps*``, ``*cache_hits*``;
* everything else (timestamps, seeds, scales, configuration echoes) is
  ignored — configuration is part of the series key, not a metric.

Exit status is 0 with warnings printed by default (benchmarks on shared CI
runners are noisy; a hard gate on every wiggle would cry wolf), and nonzero
under ``--strict`` when any regression exceeds the threshold.  A plain-text
report is always written (``--report``, default ``bench_check_report.txt``)
so CI can archive it next to the trajectory files themselves.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Suffixes/substrings marking a metric where a *decrease* is an improvement.
_LOWER_IS_BETTER = (
    "_ms", "_ns", "_seconds", "latency", "overhead", "lost",
    "p50", "p95", "p99",
)

#: Suffixes/substrings marking a metric where an *increase* is an improvement.
_HIGHER_IS_BETTER = (
    "per_second", "speedup", "throughput", "qps", "cache_hits",
)


def metric_direction(key: str) -> int:
    """``-1`` if lower is better, ``+1`` if higher is better, ``0`` to skip.

    Higher-is-better patterns win ties: ``records_per_second`` contains no
    lower marker, but a hypothetical ``recovery_ms_per_second`` is a rate.
    """
    lowered = key.lower()
    if any(marker in lowered for marker in _HIGHER_IS_BETTER):
        return 1
    if any(lowered.endswith(marker) or marker in lowered
           for marker in _LOWER_IS_BETTER):
        return -1
    return 0


def series_key(entry: dict) -> tuple:
    """The identity of one benchmark series within a trajectory file.

    Entries at different scales (or datasets, or kinds) measure different
    workloads; comparing across them would manufacture regressions.
    """
    return (
        str(entry.get("dataset", "")),
        str(entry.get("kind", "")),
        str(entry.get("scale", "")),
    )


def compare_entries(previous: dict, latest: dict, threshold: float) -> list[dict]:
    """All directional metrics that regressed past ``threshold`` (ratio)."""
    regressions = []
    for key, new_value in latest.items():
        direction = metric_direction(key)
        if direction == 0:
            continue
        old_value = previous.get(key)
        if (
            isinstance(new_value, bool) or isinstance(old_value, bool)
            or not isinstance(new_value, (int, float))
            or not isinstance(old_value, (int, float))
            or old_value <= 0
        ):
            continue
        change = (new_value - old_value) / old_value
        # A regression is movement *against* the metric's good direction.
        regressed = change > threshold if direction < 0 else change < -threshold
        if regressed:
            regressions.append({
                "metric": key,
                "previous": old_value,
                "latest": new_value,
                "change_pct": 100.0 * change,
                "direction": "lower-is-better" if direction < 0
                else "higher-is-better",
            })
    return regressions


def check_file(path: Path, threshold: float) -> tuple[list[str], int]:
    """Check one trajectory file; returns (report lines, regression count)."""
    lines: list[str] = []
    try:
        entries = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"], 0
    if not isinstance(entries, list):
        return [f"{path.name}: not a trajectory list; skipped"], 0
    series: dict[tuple, list[dict]] = {}
    for entry in entries:
        if isinstance(entry, dict):
            series.setdefault(series_key(entry), []).append(entry)
    total = 0
    for key in sorted(series):
        history = series[key]
        label = "/".join(part for part in key if part) or "(default)"
        if len(history) < 2:
            lines.append(f"{path.name} [{label}]: only one entry; baseline only")
            continue
        previous, latest = history[-2], history[-1]
        regressions = compare_entries(previous, latest, threshold)
        if not regressions:
            lines.append(f"{path.name} [{label}]: ok "
                         f"({latest.get('recorded_at', '?')} vs "
                         f"{previous.get('recorded_at', '?')})")
            continue
        total += len(regressions)
        for item in regressions:
            lines.append(
                f"{path.name} [{label}]: REGRESSION {item['metric']} "
                f"{item['previous']:.6g} -> {item['latest']:.6g} "
                f"({item['change_pct']:+.1f} %, {item['direction']})"
            )
    return lines, total


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=str(Path(__file__).resolve().parent.parent),
                        help="directory holding the BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative regression threshold (default 0.2 = 20%%)")
    parser.add_argument("--report", default="bench_check_report.txt",
                        help="plain-text report output path")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when any regression exceeds the "
                             "threshold (default: warn only)")
    args = parser.parse_args(argv)

    root = Path(args.root)
    paths = sorted(root.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json files under {root}", file=sys.stderr)
        return 2

    all_lines: list[str] = []
    regressions = 0
    for path in paths:
        lines, count = check_file(path, args.threshold)
        all_lines.extend(lines)
        regressions += count
    verdict = (
        f"{regressions} regression(s) past {100.0 * args.threshold:.0f}% "
        f"across {len(paths)} trajectory file(s)"
    )
    all_lines.append(verdict)
    report_text = "\n".join(all_lines) + "\n"
    print(report_text, end="")
    Path(args.report).write_text(report_text)
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Seeded chaos harness: fault-plan schedules against a live cluster.

The no-pytest proof of the robustness contract (CI runs it from
``scripts/bench_smoke.sh``).  Each scenario builds a fresh two-shard cluster,
installs a deterministic :mod:`repro.faults` plan, and drives the exact
failure the write path claims to survive:

1. **retry + dedup** — a fault plan SIGKILLs the shard's rendezvous owner
   *after* it applied and journalled an edit but *before* the ack leaves
   (the ambiguous-outcome window).  The router must retry the keyed write on
   the survivor, whose journal replay already carries the idempotency key:
   the client sees one 200 ack, marked ``deduplicated``, and exactly one
   copy of the edit exists afterwards — zero acked-write loss, zero
   double-apply.
2. **acked-write durability** — several acknowledged edits, then SIGKILL the
   owner with no fault plan at all; every acknowledged edit must be present
   exactly once on the failover owner (cold open + journal replay).
3. **degraded serving** — kill a single-worker fleet's only worker; the
   router must answer the cached window from its stale archive with explicit
   ``X-GVDB-Stale`` / ``X-GVDB-Degraded`` headers instead of a blank 503.
4. **replica promotion** — a journal-streaming replica subscribed to the
   owner's feed (with a fault plan delaying its polls — the kill lands
   mid-feed), then SIGKILL the owner.  The router must promote the replica
   and serve reads *and* writes through it: every acked edit present exactly
   once, a retried idempotency key deduplicated, and a brand-new write
   accepted post-promotion.

Recovery latencies and the retry / dedup / degraded / promotion counters are
appended to ``BENCH_faults.json`` (same trajectory format as the other BENCH
files).
Prints a JSON summary and exits non-zero on any failed expectation.
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_faults.json"

#: One seed drives every fault plan below: the same binary reruns the same
#: schedule, misfire for misfire.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "11"))


def get(port: int, target: str, headers: dict | None = None,
        timeout: float = 60.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("GET", target, headers=headers or {})
        response = connection.getresponse()
        return (
            response.status,
            json.loads(response.read()),
            {key.lower(): value for key, value in response.getheaders()},
        )
    finally:
        connection.close()


def post(port: int, target: str, body: dict, timeout: float = 60.0,
         headers: dict | None = None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request(
            "POST", target, body=json.dumps(body).encode(),
            headers=headers or {},
        )
        response = connection.getresponse()
        return (
            response.status,
            json.loads(response.read()),
            {key.lower(): value for key, value in response.getheaders()},
        )
    finally:
        connection.close()


def record_trajectory(measurements: dict) -> None:
    """Append one measurement entry to the BENCH_faults.json trajectory."""
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "dataset": "patent-like",
        "cpu_count": os.cpu_count(),
        "chaos_seed": CHAOS_SEED,
        **measurements,
    }
    history: list = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def main() -> int:
    from repro import faults
    from repro.cluster.hashing import rendezvous_owner
    from repro.cluster.router import ClusterRuntime
    from repro.config import ClusterConfig, GraphVizDBConfig
    from repro.core.pipeline import PreprocessingPipeline
    from repro.faults import FaultPlan, FaultRule
    from repro.graph.generators import patent_like
    from repro.storage.sqlite_backend import save_to_sqlite

    summary: dict[str, object] = {"chaos_seed": CHAOS_SEED}
    base = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    result = PreprocessingPipeline(GraphVizDBConfig.small()).run(
        patent_like(num_patents=200, seed=7)
    )

    def fresh_shards(tag: str) -> dict[str, str]:
        """Per-scenario shard copies: edits must not leak across scenarios."""
        scenario_dir = base / tag
        scenario_dir.mkdir()
        paths: dict[str, str] = {}
        for name in ("chaos-a", "chaos-b"):
            path = scenario_dir / f"{name}.db"
            save_to_sqlite(result.database, path)
            paths[name] = str(path)
        return paths

    def cluster_config(**cluster_kwargs) -> GraphVizDBConfig:
        cluster_kwargs.setdefault("num_workers", 2)
        cluster_kwargs.setdefault("health_interval_seconds", 0.1)
        cluster_kwargs.setdefault("restart_backoff_seconds", 0.01)
        return GraphVizDBConfig(cluster=ClusterConfig(**cluster_kwargs))

    # ------------------------------------------------ 1. retry + dedup
    # Kill the owner in the ambiguous window: edit applied and journalled,
    # ack not yet written.  A naive retry double-applies; a keyed retry must
    # land exactly once.
    victim = rendezvous_owner("chaos-a", ["w0", "w1"])
    plan = FaultPlan(
        [FaultRule(
            point="worker.response", action="kill", worker=victim,
            match="/edit/", times=1, name="kill-owner-post-apply",
        )],
        seed=CHAOS_SEED, name="chaos-retry",
    )
    try:
        with ClusterRuntime(
            fresh_shards("retry"),
            config=cluster_config(fault_plan=plan.to_json()),
        ) as runtime:
            port = runtime.port
            # The client pins the trace id: both attempts of the retried
            # write (the killed owner's and the survivor's) must run under
            # this one id, and the response must echo it back.
            trace_id = "feedfacecafebeef"
            started = time.perf_counter()
            status, ack, response_headers = post(
                port,
                "/edit/add_node?dataset=chaos-a&idempotency_key=chaos-retry-1",
                {"node_id": 990001, "label": "chaos-retry-probe",
                 "x": 3.0, "y": 4.0},
                headers={"X-GVDB-Trace-Id": trace_id},
            )
            retry_latency_ms = round((time.perf_counter() - started) * 1000)
            assert status == 200, f"retried edit failed: {status} {ack}"
            assert ack.get("deduplicated") is True, (
                f"survivor did not deduplicate the retried key: {ack}"
            )
            assert response_headers.get("x-gvdb-trace-id") == trace_id, (
                f"router did not echo the client trace id: {response_headers}"
            )
            retries = runtime.router.metrics.edit_retries
            assert retries >= 1, "router never retried the killed edit"
            status, trace, _ = get(port, f"/debug/trace/{trace_id}")
            assert status == 200, f"trace {trace_id} not in the router ring"
            proxy_spans = []
            pending = [trace.get("root") or {}]
            while pending:
                span = pending.pop()
                if span.get("name") == "proxy":
                    proxy_spans.append(span)
                pending.extend(span.get("children") or [])
            assert len(proxy_spans) >= 2, (
                f"one trace id must cover both attempts of the retried "
                f"write, saw spans: {proxy_spans}"
            )
            span_statuses = {span.get("status") for span in proxy_spans}
            assert "error" in span_statuses and "ok" in span_statuses, (
                f"expected a failed and a successful attempt: {proxy_spans}"
            )
            status, body, _ = get(
                port, "/keyword?dataset=chaos-a&q=chaos-retry-probe"
            )
            assert status == 200 and body["num_matches"] == 1, (
                f"edit must exist exactly once, got {body}"
            )
            summary["retry_recovery_ms"] = retry_latency_ms
            summary["edit_retries"] = retries
            summary["deduplicated_acks"] = 1 if ack.get("deduplicated") else 0
            summary["retry_exactly_once"] = True
            summary["retry_trace_spans"] = len(proxy_spans)
            summary["retry_one_trace_id"] = True
    finally:
        faults.clear()  # the router installs the plan in this process too

    # ------------------------------------------ 2. acked-write durability
    # No fault plan: plain SIGKILL after N acknowledged writes.  Every ack
    # is a durability promise; journal replay on the failover owner must
    # honour all of them, each exactly once.
    acked = []
    with ClusterRuntime(
        fresh_shards("durability"), config=cluster_config()
    ) as runtime:
        port = runtime.port
        for index in range(5):
            label = f"chaos-durable-{index}"
            status, ack, _ = post(
                port,
                f"/edit/add_node?dataset=chaos-a&idempotency_key={label}",
                {"node_id": 991000 + index, "label": label,
                 "x": 5.0 + index, "y": 5.0},
            )
            assert status == 200, f"edit {index} failed: {status} {ack}"
            acked.append(label)
        owner = runtime.health_summary()["assignment"]["chaos-a"]
        runtime.router._handles[owner].process.kill()
        killed_at = time.perf_counter()
        lost = []
        doubled = []
        for label in acked:
            status, body, _ = get(port, f"/keyword?dataset=chaos-a&q={label}")
            assert status == 200, f"failover query failed: {status} {body}"
            if body["num_matches"] == 0:
                lost.append(label)
            elif body["num_matches"] > 1:
                doubled.append(label)
        recovery_ms = round((time.perf_counter() - killed_at) * 1000)
        assert not lost, f"acknowledged writes lost after SIGKILL: {lost}"
        assert not doubled, f"writes applied more than once: {doubled}"
        summary["acked_writes"] = len(acked)
        summary["acked_writes_lost"] = 0
        summary["double_applies"] = 0
        summary["durability_recovery_ms"] = recovery_ms

    # ----------------------------------------------- 3. degraded serving
    # Kill the only worker: the router has no healthy owner at all and must
    # serve the last-known-good window, explicitly marked stale.
    with ClusterRuntime(
        fresh_shards("degraded"),
        config=cluster_config(
            num_workers=1,
            restart_backoff_seconds=5.0,
            health_interval_seconds=30.0,
        ),
    ) as runtime:
        port = runtime.port
        window = (
            "/window?dataset=chaos-a&min_x=100&min_y=100&max_x=110&max_y=110"
        )
        status, before, _ = get(port, window)
        assert status == 200, "priming window query failed"
        status, ack, _ = post(port, "/edit/add_node?dataset=chaos-a", {
            "node_id": 992000, "label": "chaos-degraded-probe",
            "x": 105.0, "y": 105.0,
        })
        assert status == 200, f"edit failed: {status} {ack}"
        handle = runtime.router._handles["w0"]
        handle.process.kill()
        deadline = time.perf_counter() + 10.0
        while handle.process.is_alive() and time.perf_counter() < deadline:
            time.sleep(0.02)
        killed_at = time.perf_counter()
        status, body, headers = get(port, window)
        degraded_ms = round((time.perf_counter() - killed_at) * 1000)
        assert status == 200, f"degraded read failed: {status} {body}"
        assert headers.get("x-gvdb-stale") == "1", headers
        assert headers.get("x-gvdb-degraded") == "no-healthy-owner", headers
        assert body == before, "stale archive served the wrong window"
        summary["degraded_reads"] = runtime.router.metrics.degraded_reads
        summary["degraded_read_ms"] = degraded_ms
        summary["degraded_served_stale"] = True

    # --------------------------------------------- 4. replica promotion
    # A replica streams the owner's journal feed (a fault plan delays its
    # polls, so the SIGKILL lands mid-feed); killing the owner must promote
    # the replica to serve both reads and writes, with every acked edit
    # present exactly once and the idempotency dedup still honoured.
    owner = rendezvous_owner("chaos-a", ["w0", "w1"])
    replica = "w1" if owner == "w0" else "w0"
    plan = FaultPlan(
        [FaultRule(
            point="replication.feed", action="delay", delay_ms=20.0,
            worker=replica, every=2, name="lag-the-feed",
        )],
        seed=CHAOS_SEED, name="chaos-promotion",
    )
    try:
        with ClusterRuntime(
            fresh_shards("promotion"),
            config=cluster_config(
                fault_plan=plan.to_json(),
                replicas_per_dataset=1,
                restart_backoff_seconds=10.0,
            ),
        ) as runtime:
            port = runtime.port

            def watermark() -> dict | None:
                replication = runtime.health_summary()["replication"]
                return replication["watermarks"].get(replica, {}).get("chaos-a")

            deadline = time.perf_counter() + 15.0
            while watermark() is None and time.perf_counter() < deadline:
                time.sleep(0.05)
            assert watermark() is not None, "replica never subscribed to feed"
            promo = []
            for index in range(5):
                label = f"chaos-promo-{index}"
                status, ack, _ = post(
                    port,
                    f"/edit/add_node?dataset=chaos-a&idempotency_key={label}",
                    {"node_id": 993000 + index, "label": label,
                     "x": 7.0 + index, "y": 7.0},
                )
                assert status == 200, f"edit {index} failed: {status} {ack}"
                promo.append(label)
            deadline = time.perf_counter() + 15.0
            while time.perf_counter() < deadline:
                mark = watermark()
                if mark and mark.get("applied_seq", 0) >= 5:
                    break
                time.sleep(0.05)
            runtime.router._handles[owner].process.kill()
            killed_at = time.perf_counter()
            deadline = killed_at + 15.0
            status, body = 0, {}
            while time.perf_counter() < deadline:
                try:
                    status, body, _ = get(
                        port, f"/keyword?dataset=chaos-a&q={promo[0]}"
                    )
                except (OSError, json.JSONDecodeError):
                    status = 0
                if status == 200:
                    break
                time.sleep(0.02)
            promotion_recovery_ms = round((time.perf_counter() - killed_at) * 1000)
            assert status == 200, f"promoted read never recovered: {body}"
            lost = []
            doubled = []
            for label in promo:
                status, body, _ = get(port, f"/keyword?dataset=chaos-a&q={label}")
                assert status == 200, f"promoted query failed: {status} {body}"
                if body["num_matches"] == 0:
                    lost.append(label)
                elif body["num_matches"] > 1:
                    doubled.append(label)
            assert not lost, f"acked writes lost across promotion: {lost}"
            assert not doubled, f"writes double-applied across promotion: {doubled}"
            status, ack, _ = post(
                port,
                "/edit/add_node?dataset=chaos-a&idempotency_key=chaos-promo-4",
                {"node_id": 993004, "label": "chaos-promo-4",
                 "x": 11.0, "y": 7.0},
            )
            assert status == 200 and ack.get("deduplicated") is True, (
                f"promoted owner must dedup the retried key: {status} {ack}"
            )
            status, ack, _ = post(port, "/edit/add_node?dataset=chaos-a", {
                "node_id": 993100, "label": "chaos-post-promotion",
                "x": 12.0, "y": 7.0,
            })
            assert status == 200, f"post-promotion write failed: {status} {ack}"
            metrics = runtime.router.metrics
            assert metrics.promotions >= 1, "router never recorded a promotion"
            summary["promotion_recovery_ms"] = promotion_recovery_ms
            summary["promotions"] = metrics.promotions
            summary["promotion_ms"] = round(metrics.last_promotion_ms, 2)
            summary["promotion_exactly_once"] = True
    finally:
        faults.clear()

    record_trajectory({
        key: summary[key]
        for key in (
            "retry_recovery_ms", "edit_retries", "deduplicated_acks",
            "acked_writes", "acked_writes_lost", "double_applies",
            "durability_recovery_ms", "degraded_reads", "degraded_read_ms",
            "promotion_recovery_ms", "promotions", "promotion_ms",
        )
    })
    print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())

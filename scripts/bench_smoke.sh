#!/usr/bin/env bash
# Smoke-run the perf benchmarks at a small scale and record the trajectories:
#   * packed-vs-dynamic window/kNN/count queries  -> BENCH_indexes.json
#   * SQLite cold start (page restore vs rebuild) -> BENCH_coldstart.json
# so every PR has a perf baseline to compare against.
#
# Usage: scripts/bench_smoke.sh [extra pytest args]
# Scale can be overridden: REPRO_BENCH_SCALE=0.5 scripts/bench_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-0.1}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "index + cold-start smoke run at REPRO_BENCH_SCALE=$REPRO_BENCH_SCALE"
python -m pytest benchmarks/test_bench_ablation_indexes.py \
    benchmarks/test_bench_coldstart.py -q -p no:cacheprovider "$@"
echo "trajectory written to BENCH_indexes.json:"
python - <<'EOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_indexes.json").read_text())
for entry in history[-4:]:
    nearest = entry.get("packed_nearest_ms")
    nearest_text = f" knn={nearest:.1f}ms" if nearest is not None else ""
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"dynamic={entry['dynamic_rtree_ms']:.1f}ms packed={entry['packed_rtree_ms']:.1f}ms "
        f"speedup={entry['speedup']:.1f}x{nearest_text}"
    )
EOF
echo "trajectory written to BENCH_coldstart.json:"
python - <<'EOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_coldstart.json").read_text())
for entry in history[-4:]:
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"rebuild={entry['rebuild_open_ms']:.1f}ms restore={entry['restore_open_ms']:.1f}ms "
        f"speedup={entry['speedup']:.1f}x"
    )
EOF

#!/usr/bin/env bash
# Smoke-run the perf benchmarks at a small scale and record the trajectories:
#   * packed-vs-dynamic window/kNN/count queries  -> BENCH_indexes.json
#   * SQLite cold start (page restore vs rebuild) -> BENCH_coldstart.json
#   * concurrent serving (coalescing/pool/repack) -> BENCH_serving.json
#   * cluster scale-out (router/cache/failover)   -> BENCH_cluster.json
#   * durable write path (journal/replay/RAW)     -> BENCH_writes.json
#   * seeded chaos schedules (retry/replay/stale) -> BENCH_faults.json
#   * replica reads + owner promotion             -> BENCH_replication.json
#   * tracing/histogram overhead on the hot path  -> BENCH_obs.json
#   * trace-driven loadgen, fixed vs adaptive SLO -> BENCH_slo.json
# so every PR has a perf baseline to compare against, then runs the
# bench_check.py regression gate (latest vs previous entry per series,
# warn past 20%; see scripts/bench_check.py --strict).  Also runs the
# 2-worker cluster lifecycle smoke (start, query through the router, kill a
# worker, query again, drain) and the fault-injection chaos smoke (which
# includes the replication chaos scenario: owner SIGKILL mid-feed, replica
# promoted, zero lost / zero double-applied writes).
#
# Usage: scripts/bench_smoke.sh [extra pytest args]
# Scale can be overridden: REPRO_BENCH_SCALE=0.5 scripts/bench_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-0.1}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "2-worker cluster lifecycle smoke (start / query / kill / query / drain)"
python scripts/cluster_smoke.py

echo "seeded chaos smoke (owner kill mid-ack / acked-write replay / degraded stale reads / replica promotion)"
python scripts/chaos_smoke.py

echo "index + cold-start + serving + cluster + writes + replication + observability + slo smoke run at REPRO_BENCH_SCALE=$REPRO_BENCH_SCALE"
python -m pytest benchmarks/test_bench_ablation_indexes.py \
    benchmarks/test_bench_coldstart.py \
    benchmarks/test_bench_serving.py \
    benchmarks/test_bench_cluster.py \
    benchmarks/test_bench_writes.py \
    benchmarks/test_bench_replication.py \
    benchmarks/test_bench_observability.py \
    benchmarks/test_bench_slo.py -q -p no:cacheprovider "$@"
echo "trajectory written to BENCH_indexes.json:"
python - <<'EOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_indexes.json").read_text())
for entry in history[-4:]:
    nearest = entry.get("packed_nearest_ms")
    nearest_text = f" knn={nearest:.1f}ms" if nearest is not None else ""
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"dynamic={entry['dynamic_rtree_ms']:.1f}ms packed={entry['packed_rtree_ms']:.1f}ms "
        f"speedup={entry['speedup']:.1f}x{nearest_text}"
    )
EOF
echo "trajectory written to BENCH_coldstart.json:"
python - <<'EOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_coldstart.json").read_text())
for entry in history[-4:]:
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"rebuild={entry['rebuild_open_ms']:.1f}ms restore={entry['restore_open_ms']:.1f}ms "
        f"speedup={entry['speedup']:.1f}x"
    )
EOF
echo "trajectory written to BENCH_serving.json:"
python - <<'EOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_serving.json").read_text())
for entry in history[-6:]:
    kind = entry.get("kind", "?")
    if kind == "dispatch":
        detail = (
            f"serial8c={entry['serial_8c_ms']:.1f}ms "
            f"coalesced8c={entry['coalesced_8c_ms']:.1f}ms "
            f"speedup={entry['speedup_8c']:.1f}x "
            f"ratio={entry['coalesce_ratio']:.1f}"
        )
    elif kind == "pool_open":
        detail = (
            f"cold={entry['cold_open_ms']:.1f}ms warm={entry['warm_open_ms']:.3f}ms "
            f"speedup={entry['speedup']:.0f}x"
        )
    else:
        detail = f"repack_latency={entry['repack_latency_ms']:.0f}ms"
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"{kind:<17} {detail}"
    )
EOF
echo "trajectory written to BENCH_cluster.json:"
python - <<'EOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_cluster.json").read_text())
for entry in history[-4:]:
    kind = entry.get("kind", "?")
    if kind == "throughput":
        detail = (
            f"single={entry['single_process_rps']:.0f}rps "
            f"4w={entry['router_4w_rps']:.0f}rps "
            f"4w-nocache={entry['router_4w_nocache_rps']:.0f}rps "
            f"speedup={entry['speedup_4w']:.1f}x cpus={entry['cpu_count']}"
        )
    else:
        restart = entry.get("restart_ms")
        detail = (
            f"recovery={entry['recovery_ms']:.0f}ms"
            + (f" restart={restart:.0f}ms" if restart else "")
        )
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"{kind:<17} {detail}"
    )
EOF
echo "trajectory written to BENCH_writes.json:"
python - <<'PYEOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_writes.json").read_text())
for entry in history[-6:]:
    kind = entry.get("kind", "?")
    if kind == "throughput":
        detail = (
            f"nojournal={entry['no_journal_eps']:.0f}eps "
            f"batch={entry['batch_eps']:.0f}eps "
            f"always={entry['always_eps']:.0f}eps"
        )
    elif kind == "replay_recovery":
        detail = (
            f"open={entry['plain_open_ms']:.0f}ms "
            f"open+replay={entry['recovery_open_ms']:.0f}ms "
            f"({entry['replayed_records']} records)"
        )
    else:
        detail = (
            f"raw_median={entry['median_ms']:.1f}ms "
            f"raw_max={entry['max_ms']:.1f}ms"
        )
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"{kind:<17} {detail}"
    )
PYEOF
echo "trajectory written to BENCH_faults.json:"
python - <<'PYEOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_faults.json").read_text())
for entry in history[-4:]:
    promotion = entry.get("promotion_recovery_ms")
    promotion_text = (
        f" promotion={promotion}ms" if promotion is not None else ""
    )
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} "
        f"retry_recovery={entry['retry_recovery_ms']}ms "
        f"replay_recovery={entry['durability_recovery_ms']}ms "
        f"degraded_read={entry['degraded_read_ms']}ms "
        f"lost={entry['acked_writes_lost']}/{entry['acked_writes']} "
        f"double={entry['double_applies']}{promotion_text}"
    )
PYEOF
echo "trajectory written to BENCH_replication.json:"
python - <<'PYEOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_replication.json").read_text())
for entry in history[-4:]:
    kind = entry.get("kind", "?")
    if kind == "replica_read_capacity":
        detail = (
            f"owner_only={entry['owner_only_rps']:.0f}rps "
            f"assisted={entry['replica_assisted_rps']:.0f}rps "
            f"replica_reads={entry['replica_reads']} "
            f"shed={entry['owner_only_shed']}->{entry['replica_assisted_shed']}"
        )
    else:
        detail = (
            f"recovery={entry['recovery_ms']:.0f}ms "
            f"promotion={entry['promotion_ms']:.1f}ms "
            f"budget={entry['budget_ms']:.0f}ms"
        )
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"{kind:<21} {detail}"
    )
PYEOF
echo "trajectory written to BENCH_obs.json:"
python - <<'PYEOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_obs.json").read_text())
for entry in history[-4:]:
    kind = entry.get("kind", "?")
    if kind == "hot_path_overhead":
        detail = (
            f"off={entry['obs_off_ms']:.0f}ms on={entry['obs_on_ms']:.0f}ms "
            f"overhead={entry['overhead_ratio'] * 100:+.1f}% "
            f"p99={entry['window_p99_ms']:.1f}ms"
        )
    else:
        detail = (
            f"record={entry['per_record_ns']:.0f}ns "
            f"({entry['records_per_second'] / 1e6:.1f}M/s)"
        )
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"{kind:<17} {detail}"
    )
PYEOF
echo "trajectory written to BENCH_slo.json:"
python - <<'PYEOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_slo.json").read_text())
for entry in history[-4:]:
    fixed = entry.get("fixed", {})
    adaptive = entry.get("adaptive", {})
    fixed_p99 = fixed.get("per_op", {}).get("window", {}).get("p99_ms", 0.0)
    adaptive_p99 = (
        adaptive.get("per_op", {}).get("window", {}).get("p99_ms", 0.0)
    )
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"sessions={entry['sessions']} "
        f"fixed: p99={fixed_p99:.0f}ms 503s={fixed.get('errors_503', 0)} | "
        f"adaptive: p99={adaptive_p99:.0f}ms 503s={adaptive.get('errors_503', 0)} "
        f"(target {entry['window_p99_target_ms']:.0f}ms)"
    )
PYEOF
echo "regression gate (latest vs previous entry per trajectory series):"
python scripts/bench_check.py --report bench_check_report.txt

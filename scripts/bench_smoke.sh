#!/usr/bin/env bash
# Smoke-run the index ablation benchmark at a small scale and record the
# packed-vs-dynamic window-query trajectory in BENCH_indexes.json, so every PR
# has a perf baseline to compare against.
#
# Usage: scripts/bench_smoke.sh [extra pytest args]
# Scale can be overridden: REPRO_BENCH_SCALE=0.5 scripts/bench_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-0.1}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "index ablation smoke run at REPRO_BENCH_SCALE=$REPRO_BENCH_SCALE"
python -m pytest benchmarks/test_bench_ablation_indexes.py -q -p no:cacheprovider "$@"
echo "trajectory written to BENCH_indexes.json:"
python - <<'EOF'
import json
from pathlib import Path

history = json.loads(Path("BENCH_indexes.json").read_text())
for entry in history[-4:]:
    print(
        f"  {entry['recorded_at']}  {entry['dataset']:<14} scale={entry['scale']:<4} "
        f"dynamic={entry['dynamic_rtree_ms']:.1f}ms packed={entry['packed_rtree_ms']:.1f}ms "
        f"speedup={entry['speedup']:.1f}x"
    )
EOF

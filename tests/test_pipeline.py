"""Unit tests for the preprocessing pipeline (Steps 1-5)."""

from __future__ import annotations

import pytest

from repro.config import (
    AbstractionConfig,
    GraphVizDBConfig,
    LayoutConfig,
    PartitionConfig,
)
from repro.core.pipeline import PreprocessingPipeline
from repro.errors import PipelineError
from repro.graph.generators import community_graph
from repro.graph.model import Graph


class TestPipelineArtifacts:
    def test_all_five_steps_timed(self, patent_result):
        report = patent_result.report
        assert [timing.step for timing in report.steps] == [1, 2, 3, 4, 5]
        assert all(timing.seconds >= 0 for timing in report.steps)
        assert report.total_seconds == pytest.approx(
            sum(timing.seconds for timing in report.steps)
        )

    def test_report_metadata(self, patent_result):
        report = patent_result.report
        assert report.dataset == "patent-like"
        assert report.num_nodes > 0 and report.num_edges > 0
        assert report.step(5).name == "store_and_index"
        with pytest.raises(PipelineError):
            report.step(9)

    def test_database_has_one_table_per_layer(self, patent_result):
        hierarchy = patent_result.hierarchy
        database = patent_result.database
        assert database.num_layers == hierarchy.num_layers
        assert database.metadata["num_layers"] == hierarchy.num_layers

    def test_layer_zero_row_count_matches_graph(self, patent_result):
        graph = patent_result.hierarchy.layer(0).graph
        table = patent_result.database.table(0)
        isolated = sum(1 for n in graph.node_ids() if graph.degree(n) == 0)
        assert table.num_rows == graph.num_edges + isolated

    def test_partition_count_follows_config(self, patent_result, small_config):
        expected_k = small_config.partition.resolve_k(
            patent_result.hierarchy.layer(0).graph.num_nodes
        )
        assert patent_result.partition_result.num_partitions == expected_k

    def test_global_layout_covers_all_nodes(self, patent_result):
        graph = patent_result.hierarchy.layer(0).graph
        layout = patent_result.global_layout.layout
        assert set(layout.positions) == set(graph.node_ids())

    def test_layer_indexing_times_recorded(self, patent_result):
        report = patent_result.report
        assert set(report.layer_indexing_seconds) == set(
            layer.level for layer in patent_result.hierarchy
        )
        assert report.parallel_step5_seconds() == max(report.layer_indexing_seconds.values())
        # The parallel-indexing claim: parallel Step 5 <= sequential Step 5.
        assert report.parallel_step5_seconds() <= report.step(5).seconds

    def test_database_is_consistent(self, patent_result):
        patent_result.database.validate()

    def test_report_as_dict(self, patent_result):
        payload = patent_result.report.as_dict()
        assert payload["dataset"] == "patent-like"
        assert set(payload["steps"]) == {
            "partitioning", "layout", "organize_partitions",
            "abstraction_layers", "store_and_index",
        }


class TestPipelineConfigurations:
    def test_empty_graph_raises(self):
        with pytest.raises(PipelineError):
            PreprocessingPipeline().run(Graph())

    def test_single_node_graph(self):
        graph = Graph(name="one")
        graph.add_node(1, label="only")
        result = PreprocessingPipeline(GraphVizDBConfig.small()).run(graph)
        assert result.database.table(0).num_rows == 1

    @pytest.mark.parametrize("criterion", ["degree", "pagerank", "merge"])
    def test_abstraction_criteria(self, criterion):
        graph = community_graph(num_communities=3, community_size=12, seed=1)
        config = GraphVizDBConfig(
            partition=PartitionConfig(num_partitions=2),
            layout=LayoutConfig(iterations=10),
            abstraction=AbstractionConfig(num_layers=2, criterion=criterion),
        )
        result = PreprocessingPipeline(config).run(graph)
        assert result.database.num_layers >= 2

    @pytest.mark.parametrize("method", ["bfs", "random", "hash"])
    def test_alternative_partitioners(self, method):
        graph = community_graph(num_communities=2, community_size=15, seed=1)
        config = GraphVizDBConfig(
            partition=PartitionConfig(num_partitions=2, method=method),
            layout=LayoutConfig(iterations=10),
            abstraction=AbstractionConfig(num_layers=1),
        )
        result = PreprocessingPipeline(config).run(graph)
        assert result.partition_result.num_partitions == 2

    @pytest.mark.parametrize("algorithm", ["circular", "grid", "spectral", "hierarchical"])
    def test_alternative_layouts(self, algorithm):
        graph = community_graph(num_communities=2, community_size=10, seed=1)
        config = GraphVizDBConfig(
            partition=PartitionConfig(num_partitions=2),
            layout=LayoutConfig(algorithm=algorithm, iterations=10),
            abstraction=AbstractionConfig(num_layers=1),
        )
        result = PreprocessingPipeline(config).run(graph)
        assert set(result.global_layout.layout.positions) == set(graph.node_ids())

    def test_partition_cells_never_overlap(self, patent_result):
        placements = patent_result.global_layout.placements
        for i in range(len(placements)):
            for j in range(i + 1, len(placements)):
                overlap = placements[i].bounds.intersection(placements[j].bounds)
                if overlap is not None:
                    assert overlap.area == pytest.approx(0.0, abs=1e-6)

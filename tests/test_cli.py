"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_preprocess_flags(self):
        args = build_parser().parse_args([
            "preprocess", "--dataset", "acm", "--scale", "0.1",
            "--output", "out.db", "--layers", "2", "--criterion", "pagerank",
        ])
        assert args.dataset == "acm"
        assert args.criterion == "pagerank"
        assert args.handler.__name__ == "cmd_preprocess"

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["preprocess", "--dataset", "freebase", "--output", "x"])

    def test_dataset_and_input_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "preprocess", "--dataset", "acm", "--input", "graph.txt",
            ])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("acm", "dblp", "patent", "webgraph", "wikidata"):
            assert name in output

    def test_stats_dataset(self, capsys):
        assert main(["stats", "--dataset", "acm", "--scale", "0.05"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_nodes"] > 0
        assert "average_degree" in payload

    def test_preprocess_then_explore_then_stats(self, tmp_path, capsys):
        database_path = tmp_path / "acm.db"
        exit_code = main([
            "preprocess", "--dataset", "acm", "--scale", "0.05",
            "--output", str(database_path),
            "--layers", "1", "--layout-iterations", "10",
            "--max-partition-nodes", "200",
        ])
        assert exit_code == 0
        assert database_path.exists()
        preprocess_output = capsys.readouterr().out
        assert "step 5" in preprocess_output

        exit_code = main([
            "explore", "--database", str(database_path),
            "--keyword", "faloutsos", "--limit", "3",
        ])
        assert exit_code == 0
        explore_output = capsys.readouterr().out
        assert "matches" in explore_output

        exit_code = main(["stats", "--database", str(database_path)])
        assert exit_code == 0
        stats_payload = json.loads(capsys.readouterr().out)
        assert stats_payload["num_layers"] >= 1

    def test_preprocess_from_edge_list_file(self, tmp_path, capsys):
        from repro.graph.generators import community_graph
        from repro.graph.io import write_edge_list

        graph_path = tmp_path / "graph.txt"
        write_edge_list(community_graph(num_communities=2, community_size=12, seed=1), graph_path)
        database_path = tmp_path / "graph.db"
        exit_code = main([
            "preprocess", "--input", str(graph_path), "--output", str(database_path),
            "--layers", "1", "--layout-iterations", "5", "--max-partition-nodes", "50",
        ])
        assert exit_code == 0
        assert database_path.exists()
        capsys.readouterr()

    def test_preprocess_missing_input_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "preprocess", "--input", str(tmp_path / "missing.txt"),
                "--output", str(tmp_path / "out.db"),
            ])

    def test_bench_command_small(self, capsys):
        assert main(["bench", "--scale", "0.03", "--queries", "2"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "Figure 3" in output
        assert "wikidata-like" in output and "patent-like" in output

    def test_serve_smoke(self, tmp_path, capsys):
        database_path = tmp_path / "serve.db"
        assert main([
            "preprocess", "--dataset", "acm", "--scale", "0.05",
            "--output", str(database_path),
            "--layers", "1", "--layout-iterations", "5",
            "--max-partition-nodes", "200",
        ]) == 0
        capsys.readouterr()
        exit_code = main([
            "serve", "--database", str(database_path),
            "--smoke", "4", "--clients", "4", "--threads", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        summary = json.loads(output[output.index("{"):])
        assert summary["requests"]["admitted"] >= 17  # 1 probe + 4x4 clients
        assert summary["requests"]["rejected"] == 0
        assert summary["pool"]["misses"] == 1

    def test_serve_missing_database(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--database", str(tmp_path / "nope.db"), "--smoke", "1"])

    def test_serve_port_already_bound_exits_cleanly(self, tmp_path, capsys):
        import socket

        database_path = tmp_path / "busy.db"
        assert main([
            "preprocess", "--dataset", "acm", "--scale", "0.05",
            "--output", str(database_path),
            "--layers", "1", "--layout-iterations", "5",
            "--max-partition-nodes", "200",
        ]) == 0
        capsys.readouterr()
        squatter = socket.socket()
        try:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            port = squatter.getsockname()[1]
            with pytest.raises(SystemExit, match="cannot bind"):
                main([
                    "serve", "--database", str(database_path),
                    "--port", str(port),
                ])
        finally:
            squatter.close()

    def test_serve_rejects_duplicate_dataset_names(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        for sub in ("a", "b"):
            (tmp_path / sub / "same.db").touch()
        with pytest.raises(SystemExit, match="duplicate dataset name"):
            main([
                "serve",
                "--database", str(tmp_path / "a" / "same.db"),
                "--database", str(tmp_path / "b" / "same.db"),
                "--smoke", "1",
            ])


class TestJournalVerifyCommand:
    """``repro journal verify``: operator-facing journal integrity scan."""

    def _journal(self, tmp_path):
        from repro.writes.journal import WriteAheadJournal

        database = tmp_path / "ds.db"
        database.touch()
        journal = WriteAheadJournal(tmp_path / "ds.db.journal")
        for n in range(1, 4):
            journal.append("repack", {"n": n})
        journal.close()
        return database

    def test_parser_wires_the_subcommand(self):
        args = build_parser().parse_args(["journal", "verify", "ds.db"])
        assert args.handler.__name__ == "cmd_journal_verify"
        assert args.database == "ds.db"

    def test_clean_journal_exits_zero(self, tmp_path, capsys):
        database = self._journal(tmp_path)
        assert main(["journal", "verify", str(database)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["records"] == 3 and report["last_good_seq"] == 3
        assert not report["corrupt"]

    def test_journal_path_accepted_directly(self, tmp_path, capsys):
        database = self._journal(tmp_path)
        journal = database.with_name("ds.db.journal")
        assert main(["journal", "verify", str(journal)]) == 0
        assert json.loads(capsys.readouterr().out)["records"] == 3

    def test_torn_tail_is_reported_but_exits_zero(self, tmp_path, capsys):
        database = self._journal(tmp_path)
        journal = database.with_name("ds.db.journal")
        journal.write_bytes(journal.read_bytes()[:-5])
        assert main(["journal", "verify", str(database)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["torn_tail"] and report["last_good_seq"] == 2

    def test_mid_file_corruption_exits_nonzero(self, tmp_path, capsys):
        database = self._journal(tmp_path)
        journal = database.with_name("ds.db.journal")
        data = bytearray(journal.read_bytes())
        data[25] ^= 0xFF
        journal.write_bytes(bytes(data))
        assert main(["journal", "verify", str(database)]) == 1
        assert json.loads(capsys.readouterr().out)["corrupt"]

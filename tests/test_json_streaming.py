"""Unit tests for JSON payload building and chunked streaming."""

from __future__ import annotations

import json

import pytest

from repro.core.json_builder import build_payload, payload_to_json
from repro.core.streaming import chunk_count, stream_payload
from repro.graph.model import Graph
from repro.layout.base import Layout
from repro.spatial.geometry import Point
from repro.storage.schema import rows_from_graph


@pytest.fixture
def rows(small_graph):
    layout = Layout({
        1: Point(0.0, 0.0), 2: Point(10.0, 0.0), 3: Point(10.0, 10.0), 4: Point(0.0, 10.0),
    })
    return rows_from_graph(small_graph, layout)


class TestPayload:
    def test_nodes_deduplicated(self, rows):
        payload = build_payload(rows)
        assert len(payload.nodes) == 4
        assert len(payload.edges) == 4
        assert payload.num_objects == 8
        assert payload.node_ids() == {1, 2, 3, 4}

    def test_node_coordinates_come_from_geometry(self, rows):
        payload = build_payload(rows)
        node1 = next(node for node in payload.nodes if node["id"] == 1)
        assert (node1["x"], node1["y"]) == (0.0, 0.0)

    def test_edge_records_direction(self, rows):
        payload = build_payload(rows)
        assert all(edge["directed"] for edge in payload.edges)

    def test_isolated_node_row_becomes_node_only(self):
        graph = Graph()
        graph.add_node(7, label="alone")
        payload = build_payload(rows_from_graph(graph, Layout({7: Point(1, 1)})))
        assert len(payload.nodes) == 1
        assert payload.edges == []

    def test_empty_payload(self):
        payload = build_payload([])
        assert payload.num_objects == 0

    def test_payload_to_json_is_valid(self, rows):
        payload = build_payload(rows)
        parsed = json.loads(payload_to_json(payload))
        assert len(parsed["nodes"]) == 4
        assert len(parsed["edges"]) == 4


class TestStreaming:
    def test_chunk_count(self, rows):
        payload = build_payload(rows)
        assert chunk_count(payload, 3) == 3  # 8 objects in chunks of 3
        assert chunk_count(payload, 100) == 1
        assert chunk_count(build_payload([]), 10) == 1

    def test_chunk_count_invalid(self, rows):
        with pytest.raises(ValueError):
            chunk_count(build_payload(rows), 0)

    def test_chunks_cover_all_objects_once(self, rows):
        payload = build_payload(rows)
        chunks = list(stream_payload(payload, chunk_size=3))
        assert len(chunks) == 3
        total_objects = sum(chunk.num_objects for chunk in chunks)
        assert total_objects == payload.num_objects
        assert chunks[-1].is_last
        assert [chunk.index for chunk in chunks] == [0, 1, 2]

    def test_nodes_stream_before_edges(self, rows):
        payload = build_payload(rows)
        chunks = list(stream_payload(payload, chunk_size=4))
        assert len(chunks[0].nodes) == 4
        assert len(chunks[0].edges) == 0
        assert len(chunks[1].edges) == 4

    def test_empty_payload_yields_one_empty_chunk(self):
        chunks = list(stream_payload(build_payload([]), chunk_size=10))
        assert len(chunks) == 1
        assert chunks[0].num_objects == 0
        assert chunks[0].is_last

    def test_chunk_json_and_bytes(self, rows):
        payload = build_payload(rows)
        chunk = next(stream_payload(payload, chunk_size=100))
        parsed = json.loads(chunk.to_json())
        assert parsed["chunk"] == 0
        assert chunk.byte_size == len(chunk.to_json().encode("utf-8"))
        assert chunk.byte_size > 0

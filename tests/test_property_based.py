"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.model import Graph
from repro.layout.base import Layout
from repro.partition.simple import BFSPartitioner
from repro.spatial.btree import BPlusTree
from repro.spatial.geometry import LineSegment, Point, Rect, decode_segment, encode_segment
from repro.spatial.rtree import RTree
from repro.spatial.trie import FullTextIndex, tokenize
from repro.storage.schema import EdgeRow, rows_from_graph
from repro.storage.serialization import decode_row, encode_row

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

coordinates = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


@st.composite
def rects(draw):
    x1 = draw(coordinates)
    y1 = draw(coordinates)
    x2 = draw(coordinates)
    y2 = draw(coordinates)
    return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


@st.composite
def segments(draw):
    return LineSegment(
        Point(draw(coordinates), draw(coordinates)),
        Point(draw(coordinates), draw(coordinates)),
        directed=draw(st.booleans()),
    )


@st.composite
def edge_rows(draw):
    segment = draw(segments())
    return EdgeRow(
        row_id=draw(st.integers(min_value=0, max_value=2**40)),
        node1_id=draw(st.integers(min_value=-2**31, max_value=2**31)),
        node1_label=draw(st.text(max_size=40)),
        edge_geometry=encode_segment(segment),
        edge_label=draw(st.text(max_size=20)),
        node2_id=draw(st.integers(min_value=-2**31, max_value=2**31)),
        node2_label=draw(st.text(max_size=40)),
    )


@st.composite
def random_graphs(draw):
    """Small random graphs with contiguous node ids."""
    num_nodes = draw(st.integers(min_value=1, max_value=25))
    graph = Graph(directed=draw(st.booleans()), name="hyp")
    for node_id in range(num_nodes):
        graph.add_node(node_id, label=f"n{node_id}")
    num_edges = draw(st.integers(min_value=0, max_value=40))
    for _ in range(num_edges):
        source = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        target = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        graph.add_edge(source, target, label="e")
    return graph


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------


class TestGeometryProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_rect(a)
        assert union.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_symmetric_and_contained(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_rect(overlap)
            assert b.contains_rect(overlap)

    @given(rects())
    def test_enlargement_of_self_is_zero(self, rect):
        assert rect.enlargement(rect) == 0.0

    @given(segments())
    def test_segment_binary_roundtrip(self, segment):
        assert decode_segment(encode_segment(segment)) == segment

    @given(segments())
    def test_segment_intersects_own_bounding_rect(self, segment):
        assert segment.intersects_rect(segment.bounding_rect())

    @given(segments(), rects())
    def test_segment_intersection_implies_bbox_intersection(self, segment, rect):
        if segment.intersects_rect(rect):
            assert segment.bounding_rect().intersects(rect)


# ---------------------------------------------------------------------------
# R-tree
# ---------------------------------------------------------------------------


class TestRTreeProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(rects(), min_size=0, max_size=80), rects())
    def test_window_query_matches_linear_scan(self, entry_rects, window):
        tree = RTree(max_entries=5)
        for index, rect in enumerate(entry_rects):
            tree.insert(rect, index)
        expected = {i for i, rect in enumerate(entry_rects) if rect.intersects(window)}
        assert set(tree.window_query(window)) == expected
        tree.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(rects(), min_size=1, max_size=80))
    def test_bulk_load_equivalent_to_insert(self, entry_rects):
        entries = [(rect, index) for index, rect in enumerate(entry_rects)]
        bulk = RTree.bulk_load(entries, max_entries=6)
        assert len(bulk) == len(entries)
        bulk.check_invariants()
        window = entry_rects[0]
        expected = {i for i, rect in enumerate(entry_rects) if rect.intersects(window)}
        assert set(bulk.window_query(window)) == expected


# ---------------------------------------------------------------------------
# B+-tree
# ---------------------------------------------------------------------------


class TestBPlusTreeProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=300))
    def test_keys_sorted_and_search_consistent(self, keys):
        tree = BPlusTree(order=8)
        for key in keys:
            tree.insert(key, key)
        assert list(tree.keys()) == sorted(set(keys))
        tree.check_invariants()
        for key in set(keys):
            values = tree.search(key)
            assert len(values) == keys.count(key)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=500), max_size=200),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    def test_range_search_matches_filter(self, keys, low, high):
        tree = BPlusTree(order=6)
        for key in keys:
            tree.insert(key, key)
        expected = sorted(key for key in keys if low <= key <= high)
        assert [key for key, _ in tree.range_search(low, high)] == expected


# ---------------------------------------------------------------------------
# Full-text index
# ---------------------------------------------------------------------------


class TestFullTextProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(0, 200), st.text(min_size=1, max_size=30), max_size=40))
    def test_every_token_of_every_label_is_findable(self, labels):
        index = FullTextIndex()
        for document, label in labels.items():
            index.add(document, label)
        for document, label in labels.items():
            for token in tokenize(label):
                assert document in index.search(token, mode="exact")

    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(0, 100), st.text(min_size=1, max_size=20), max_size=20))
    def test_remove_makes_documents_unfindable(self, labels):
        index = FullTextIndex()
        for document, label in labels.items():
            index.add(document, label)
        for document in labels:
            index.remove(document)
        assert len(index) == 0
        for label in labels.values():
            for token in tokenize(label):
                assert index.search(token, mode="exact") == []


# ---------------------------------------------------------------------------
# Storage rows
# ---------------------------------------------------------------------------


class TestRowProperties:
    @settings(max_examples=80, deadline=None)
    @given(edge_rows())
    def test_row_binary_roundtrip(self, row):
        assert decode_row(encode_row(row)) == row


# ---------------------------------------------------------------------------
# Partitioning and storage invariants on random graphs
# ---------------------------------------------------------------------------


class TestGraphLevelInvariants:
    @settings(max_examples=25, deadline=None)
    @given(random_graphs(), st.integers(min_value=1, max_value=5))
    def test_partition_is_total_and_nonempty(self, graph, k):
        result = BFSPartitioner(seed=1).partition(graph, k)
        assert set(result.assignment) == set(graph.node_ids())
        assert all(size > 0 for size in result.partition_sizes())
        assert sum(result.partition_sizes()) == graph.num_nodes

    @settings(max_examples=25, deadline=None)
    @given(random_graphs())
    def test_rows_cover_all_nodes_and_edges(self, graph):
        layout = Layout({
            node_id: Point(float(node_id * 13 % 97), float(node_id * 7 % 89))
            for node_id in graph.node_ids()
        })
        rows = rows_from_graph(graph, layout)
        edge_rows_count = sum(1 for row in rows if not row.is_node_row())
        assert edge_rows_count == graph.num_edges
        covered_nodes = set()
        for row in rows:
            covered_nodes.add(row.node1_id)
            covered_nodes.add(row.node2_id)
        assert covered_nodes == set(graph.node_ids())
        # Row ids are unique.
        assert len({row.row_id for row in rows}) == len(rows)

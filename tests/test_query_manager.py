"""Unit tests for the query manager (window queries, keyword search, focus-on-node)."""

from __future__ import annotations

import pytest

from repro.core.filters import FilterSpec
from repro.core.query_manager import QueryManager
from repro.core.viewport import Viewport
from repro.errors import QueryError
from repro.spatial.geometry import Point, Rect


class TestWindowQuery:
    def test_whole_plane_returns_every_row(self, patent_result):
        manager = QueryManager(patent_result.database)
        bounds = patent_result.database.bounds(0)
        result = manager.window_query(bounds.expanded(10), layer=0)
        assert len(result.rows) == patent_result.database.table(0).num_rows
        assert result.num_objects == len(result.payload.nodes) + len(result.payload.edges)

    def test_small_window_returns_subset(self, patent_result):
        manager = QueryManager(patent_result.database)
        bounds = patent_result.database.bounds(0)
        small = Rect.from_center(bounds.center, bounds.width / 10, bounds.height / 10)
        full = manager.window_query(bounds, layer=0)
        subset = manager.window_query(small, layer=0)
        assert len(subset.rows) < len(full.rows)

    def test_timings_are_recorded(self, patent_result):
        manager = QueryManager(patent_result.database)
        result = manager.window_query(patent_result.database.bounds(0), layer=0)
        assert result.db_query_seconds > 0
        assert result.json_build_seconds > 0
        assert result.filter_seconds >= 0
        assert result.server_seconds == pytest.approx(
            result.db_query_seconds + result.filter_seconds + result.json_build_seconds
        )
        assert result.total_bytes > 0

    def test_unknown_layer_raises(self, patent_result):
        manager = QueryManager(patent_result.database)
        with pytest.raises(QueryError):
            manager.window_query(Rect(0, 0, 1, 1), layer=77)

    def test_filters_applied_before_payload(self, patent_result):
        manager = QueryManager(patent_result.database)
        bounds = patent_result.database.bounds(0)
        unfiltered = manager.window_query(bounds, layer=0)
        filtered = manager.window_query(
            bounds, layer=0, filters=FilterSpec(hidden_edge_labels={"cites"})
        )
        assert len(filtered.rows) < len(unfiltered.rows)
        assert all(row.edge_label != "cites" for row in filtered.rows)

    def test_viewport_query_equivalent_to_window(self, patent_result):
        manager = QueryManager(patent_result.database)
        viewport = manager.default_viewport(layer=0)
        from_viewport = manager.viewport_query(viewport, layer=0)
        from_window = manager.window_query(viewport.window(), layer=0)
        assert len(from_viewport.rows) == len(from_window.rows)


class TestLayerSwitch:
    def test_change_layer_uses_same_window(self, patent_result):
        manager = QueryManager(patent_result.database)
        viewport = manager.default_viewport(layer=0)
        upper = manager.change_layer(viewport, new_layer=1)
        lower = manager.window_query(viewport.window(), layer=0)
        assert upper.layer == 1
        assert len(upper.rows) <= len(lower.rows)

    def test_change_to_unknown_layer_raises(self, patent_result):
        manager = QueryManager(patent_result.database)
        viewport = manager.default_viewport()
        with pytest.raises(QueryError):
            manager.change_layer(viewport, new_layer=99)


class TestKeywordSearch:
    def test_search_finds_labels_containing_keyword(self, patent_result):
        manager = QueryManager(patent_result.database)
        result = manager.keyword_search("patent", layer=0, limit=10)
        assert 0 < result.num_matches <= 10
        assert all("patent" in match["label"].lower() for match in result.matches)
        assert all(match["x"] is not None for match in result.matches)
        assert result.search_seconds > 0

    def test_empty_keyword_raises(self, patent_result):
        manager = QueryManager(patent_result.database)
        with pytest.raises(QueryError):
            manager.keyword_search("   ")

    def test_no_match_returns_empty(self, patent_result):
        manager = QueryManager(patent_result.database)
        assert manager.keyword_search("zzzzqqqq").num_matches == 0

    def test_limit_bounds_position_lookups(self, patent_result, monkeypatch):
        """``limit=k`` must trigger exactly ``k`` node-position lookups."""
        manager = QueryManager(patent_result.database)
        table = patent_result.database.table(0)
        unlimited = manager.keyword_search("patent", layer=0)
        assert unlimited.num_matches > 3

        calls = []
        original = type(table).node_position

        def counting_node_position(self, node_id):
            calls.append(node_id)
            return original(self, node_id)

        monkeypatch.setattr(type(table), "node_position", counting_node_position)
        limited = manager.keyword_search("patent", layer=0, limit=3)
        assert limited.num_matches == 3
        assert len(calls) == 3

    def test_focus_on_node_centers_viewport(self, patent_result):
        manager = QueryManager(patent_result.database)
        viewport = manager.default_viewport()
        node_id = next(iter(patent_result.hierarchy.layer(0).graph.node_ids()))
        centered, result = manager.focus_on_node(node_id, viewport)
        position = patent_result.database.table(0).node_position(node_id)
        assert centered.center == position
        assert any(
            row.node1_id == node_id or row.node2_id == node_id for row in result.rows
        )

    def test_focus_on_unknown_node_raises(self, patent_result):
        manager = QueryManager(patent_result.database)
        with pytest.raises(QueryError):
            manager.focus_on_node(10**9, manager.default_viewport())


class TestNodeOperations:
    def test_neighborhood_returns_incident_rows(self, patent_result):
        manager = QueryManager(patent_result.database)
        graph = patent_result.hierarchy.layer(0).graph
        node_id = max(graph.node_ids(), key=graph.degree)
        rows = manager.neighborhood(node_id)
        assert len(rows) == len(patent_result.database.rows_for_node(0, node_id))
        assert all(node_id in (row.node1_id, row.node2_id) for row in rows)

    def test_neighborhood_unknown_node_raises(self, patent_result):
        manager = QueryManager(patent_result.database)
        with pytest.raises(QueryError):
            manager.neighborhood(10**9)

    def test_node_info(self, patent_result):
        manager = QueryManager(patent_result.database)
        graph = patent_result.hierarchy.layer(0).graph
        node_id = max(graph.node_ids(), key=graph.degree)
        info = manager.node_info(node_id)
        assert info["node_id"] == node_id
        assert info["degree"] == len(info["neighbours"])
        assert info["degree"] > 0
        assert info["label"]

    def test_default_viewport_centered_on_drawing(self, patent_result):
        manager = QueryManager(patent_result.database)
        viewport = manager.default_viewport()
        bounds = patent_result.database.bounds(0)
        assert bounds.contains_point(viewport.center)

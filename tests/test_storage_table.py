"""Unit tests for layer tables and row stores."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.graph.model import Graph
from repro.layout.base import Layout
from repro.spatial.geometry import Point, Rect
from repro.storage.schema import rows_from_graph
from repro.storage.table import FileRowStore, LayerTable, MemoryRowStore


@pytest.fixture
def rows(small_graph):
    layout = Layout({
        1: Point(0.0, 0.0),
        2: Point(100.0, 0.0),
        3: Point(100.0, 100.0),
        4: Point(0.0, 100.0),
    })
    return rows_from_graph(small_graph, layout)


class TestMemoryRowStore:
    def test_put_get_delete(self, rows):
        store = MemoryRowStore()
        store.put(rows[0])
        assert store.get(rows[0].row_id) == rows[0]
        store.delete(rows[0].row_id)
        assert len(store) == 0
        with pytest.raises(StorageError):
            store.get(rows[0].row_id)
        with pytest.raises(StorageError):
            store.delete(rows[0].row_id)

    def test_scan_in_row_id_order(self, rows):
        store = MemoryRowStore()
        for row in reversed(rows):
            store.put(row)
        scanned = list(store.scan())
        assert [row.row_id for row in scanned] == sorted(row.row_id for row in rows)


class TestFileRowStore:
    def test_rows_survive_reopen(self, rows, tmp_path):
        path = tmp_path / "layer.rows"
        store = FileRowStore(path)
        for row in rows:
            store.put(row)
        reopened = FileRowStore(path)
        assert len(reopened) == len(rows)
        assert reopened.get(rows[1].row_id) == rows[1]
        assert list(reopened.scan()) == rows

    def test_delete_and_compact(self, rows, tmp_path):
        path = tmp_path / "layer.rows"
        store = FileRowStore(path)
        for row in rows:
            store.put(row)
        store.delete(rows[0].row_id)
        assert len(store) == len(rows) - 1
        size_before = path.stat().st_size
        store.compact()
        assert path.stat().st_size < size_before
        assert len(list(store.scan())) == len(rows) - 1

    def test_get_missing_raises(self, tmp_path):
        store = FileRowStore(tmp_path / "x.rows")
        with pytest.raises(StorageError):
            store.get(0)

    def test_load_all(self, rows, tmp_path):
        store = FileRowStore(tmp_path / "layer.rows")
        for row in rows:
            store.put(row)
        assert store.load_all() == rows


class TestLayerTable:
    @pytest.fixture
    def table(self, rows):
        table = LayerTable(layer=0)
        table.bulk_load(rows)
        return table

    def test_bulk_load_counts(self, rows, table):
        assert table.num_rows == len(rows)
        assert len(table) == len(rows)

    def test_window_query_returns_overlapping_edges(self, table):
        # Window around node 1 (0,0) should return its two incident edges.
        result = table.window_query(Rect(-10, -10, 10, 10))
        assert {(row.node1_id, row.node2_id) for row in result} == {(1, 2), (1, 4)}

    def test_window_query_whole_plane(self, rows, table):
        assert len(table.window_query(Rect(-1000, -1000, 1000, 1000))) == len(rows)

    def test_window_query_empty_region(self, table):
        assert table.window_query(Rect(500, 500, 600, 600)) == []

    def test_window_query_exact_segment_filtering(self, table):
        # The diagonal-free small graph: a window in the middle of the square but
        # away from all four edges returns nothing even though edge bounding
        # boxes cover the whole square boundary.
        assert table.window_query(Rect(40, 40, 60, 60)) == []

    def test_count_window_matches_query(self, table):
        window = Rect(-10, -10, 110, 10)
        assert table.count_window(window) == len(table.window_query(window))

    def test_rows_for_node_via_btrees(self, table):
        rows_for_1 = table.rows_for_node(1)
        assert {row.edge_label for row in rows_for_1} == {"knows", "likes"}
        assert table.rows_for_node(999) == []

    def test_node_position(self, table):
        assert table.node_position(3) == Point(100.0, 100.0)
        assert table.node_position(999) is None

    def test_keyword_search_contains(self, table):
        matches = table.keyword_search("ali")
        assert matches == [(1, "Alice")]

    def test_keyword_search_exact_mode(self, table):
        assert table.keyword_search("alice", mode="exact") == [(1, "Alice")]
        assert table.keyword_search("ali", mode="exact") == []

    def test_edge_keyword_search(self, table):
        rows = table.edge_keyword_search("knows")
        assert len(rows) == 2

    def test_insert_single_row_updates_indexes(self, rows):
        table = LayerTable(layer=0)
        table.insert(rows[0])
        assert table.num_rows == 1
        assert table.rows_for_node(rows[0].node1_id) == [rows[0]]
        assert len(table.window_query(rows[0].bounding_rect().expanded(1))) == 1

    def test_delete_row_removes_from_all_indexes(self, table, rows):
        victim = rows[0]
        table.delete_row(victim.row_id)
        assert table.num_rows == len(rows) - 1
        assert victim.row_id not in [r.row_id for r in table.rows_for_node(victim.node1_id)]
        window_ids = {r.row_id for r in table.window_query(Rect(-1000, -1000, 1000, 1000))}
        assert victim.row_id not in window_ids

    def test_update_row_changes_label(self, table, rows):
        original = rows[0]
        from repro.storage.schema import EdgeRow

        updated = EdgeRow(
            row_id=original.row_id,
            node1_id=original.node1_id,
            node1_label="Renamed",
            edge_geometry=original.edge_geometry,
            edge_label=original.edge_label,
            node2_id=original.node2_id,
            node2_label=original.node2_label,
        )
        table.update_row(updated)
        assert table.get(original.row_id).node1_label == "Renamed"
        assert (original.node1_id, "Renamed") in table.keyword_search("renamed")

    def test_next_row_id(self, table, rows):
        assert table.next_row_id() == max(row.row_id for row in rows) + 1

    def test_distinct_node_ids(self, table):
        assert table.distinct_node_ids() == {1, 2, 3, 4}

    def test_bounds(self, table):
        bounds = table.bounds()
        assert bounds is not None
        assert bounds.contains_point(Point(50, 50))

    def test_file_backed_table(self, rows, tmp_path):
        table = LayerTable(layer=0, store=FileRowStore(tmp_path / "t.rows"))
        table.bulk_load(rows)
        assert len(table.window_query(Rect(-10, -10, 110, 110))) == len(rows)


class TestLRUCache:
    def test_unbounded_behaves_like_dict(self):
        from repro.storage.table import LRUCache

        cache = LRUCache(0)
        for key in range(1000):
            cache[key] = key * 2
        assert len(cache) == 1000
        assert cache.get(17) == 34
        assert cache[999] == 1998
        assert isinstance(cache, dict)  # the payload builder's fast-path check

    def test_capacity_holds_and_evicts_in_write_order(self):
        from repro.storage.table import LRUCache

        cache = LRUCache(3)
        cache["a"], cache["b"], cache["c"] = 1, 2, 3
        # Reads are C-level dict reads: no recency bookkeeping on the hot path.
        assert cache.get("a") == 1
        cache["d"] = 4  # evicts the oldest *written* entry ("a")
        assert len(cache) == 3
        assert "a" not in cache
        assert set(cache) == {"b", "c", "d"}
        # Overwriting an existing key refreshes its recency, never evicts.
        cache["b"] = 20
        cache["e"] = 5  # "c" is now the oldest write
        assert set(cache) == {"b", "d", "e"}
        assert cache["b"] == 20
        # pop/clear (inherited) keep working.
        assert cache.pop("d", None) == 4
        cache.clear()
        assert len(cache) == 0

    def test_table_caches_respect_capacity_and_results_unchanged(self, rows):
        unbounded = LayerTable(layer=0, index_kind="packed")
        unbounded.bulk_load(rows)
        bounded = LayerTable(layer=0, index_kind="packed", cache_capacity=2)
        bounded.bulk_load(rows)
        window = Rect(-1000, -1000, 1000, 1000)
        assert [row.row_id for row in bounded.window_query(window)] == [
            row.row_id for row in unbounded.window_query(window)
        ]
        # The exact filter touched every row, but the cap held.
        assert len(bounded._segment_cache) <= 2
        assert len(bounded._coord_cache) <= 2
        assert len(unbounded._segment_cache) == len(rows)
        # Repeated (cache-hitting and cache-missing) queries agree too.
        for _ in range(3):
            assert [row.row_id for row in bounded.window_query(window)] == [
                row.row_id for row in unbounded.window_query(window)
            ]


class TestLazySecondaryIndexes:
    def test_lazy_table_defers_and_builds_on_first_use(self, rows):
        table = LayerTable(layer=0, index_kind="packed", lazy_secondary_indexes=True)
        table.bulk_load(rows)
        assert not table.node_indexes_built
        assert not table.label_indexes_built
        # Window queries never touch the secondary indexes.
        assert table.window_query(Rect(-1000, -1000, 1000, 1000))
        assert not table.node_indexes_built
        # First node lookup builds the B+-trees (and only those).
        eager = LayerTable(layer=0)
        eager.bulk_load(rows)
        assert [r.row_id for r in table.rows_for_node(1)] == [
            r.row_id for r in eager.rows_for_node(1)
        ]
        assert table.node_indexes_built
        assert not table.label_indexes_built
        # First keyword search builds the tries.
        assert table.keyword_search("alice") == eager.keyword_search("alice")
        assert table.label_indexes_built
        assert table.distinct_node_ids() == eager.distinct_node_ids()

    def test_mutations_while_unbuilt_are_absorbed_by_the_build(self, rows):
        table = LayerTable(layer=0, index_kind="packed", lazy_secondary_indexes=True)
        table.bulk_load(rows)
        victim = rows[0]
        table.delete_row(victim.row_id)
        assert not table.node_indexes_built
        replacement = type(victim)(
            row_id=table.next_row_id(),
            node1_id=77,
            node1_label="Grace",
            edge_geometry=victim.edge_geometry,
            edge_label="mentors",
            node2_id=2,
            node2_label="Bob",
        )
        table.insert(replacement)
        # The late build sees exactly the post-mutation store.
        assert {r.row_id for r in table.rows_for_node(77)} == {replacement.row_id}
        assert victim.row_id not in table.node1_index.search(victim.node1_id)
        assert table.keyword_search("grace") == [(77, "Grace")]
        assert table.edge_keyword_search("mentors")[0].row_id == replacement.row_id
        # Once built, further mutations maintain the indexes incrementally.
        table.delete_row(replacement.row_id)
        assert table.rows_for_node(77) == []
        assert table.keyword_search("grace") == []

    def test_attach_packed_index_round_trip(self, rows):
        from repro.spatial.packed_rtree import PackedRTree

        source = LayerTable(layer=0, index_kind="packed")
        source.bulk_load(rows)
        page = source.rtree.to_bytes()

        restored = LayerTable(layer=0, index_kind="packed", lazy_secondary_indexes=True)
        restored.attach_packed_index(PackedRTree.from_bytes(page), rows=rows)
        assert restored.num_rows == len(rows)
        assert restored.next_row_id() == source.next_row_id()
        window = Rect(-1000, -1000, 1000, 1000)
        assert [r.row_id for r in restored.window_query(window)] == [
            r.row_id for r in source.window_query(window)
        ]
        assert restored.keyword_search("alice") == source.keyword_search("alice")

    def test_attach_packed_index_count_mismatch_raises(self, rows):
        from repro.spatial.packed_rtree import PackedRTree

        source = LayerTable(layer=0, index_kind="packed")
        source.bulk_load(rows)
        table = LayerTable(layer=0)
        with pytest.raises(StorageError):
            table.attach_packed_index(source.rtree, rows=rows[:2])

    def test_attach_packed_index_on_eager_table_rebuilds_secondary(self, rows):
        from repro.spatial.packed_rtree import PackedRTree

        source = LayerTable(layer=0, index_kind="packed")
        source.bulk_load(rows)
        table = LayerTable(layer=0)  # eager
        table.attach_packed_index(
            PackedRTree.from_bytes(source.rtree.to_bytes()), rows=rows
        )
        assert table.node_indexes_built and table.label_indexes_built
        assert table.distinct_node_ids() == source.distinct_node_ids()

    def test_bounded_caches_divergence_regression(self, rows):
        """Segment/coord caches evict independently; a segment hit must not be
        assumed to imply a coord entry (regression: KeyError in _exact_rows)."""
        table = LayerTable(layer=0, index_kind="packed", cache_capacity=3)
        table.bulk_load(rows)
        whole = Rect(-1000, -1000, 1000, 1000)
        # Alternate between small windows (touching different row subsets) and
        # the whole plane so the two caches churn out of lockstep.
        small_windows = [
            Rect(-10, -10, 10, 10),
            Rect(90, -10, 110, 10),
            Rect(90, 90, 110, 110),
            Rect(-10, 90, 10, 110),
        ]
        for _ in range(4):
            for window in small_windows:
                table.window_query(window)
            assert len(table.window_query(whole)) == len(rows)
        assert len(table._coord_cache) <= 3
        assert len(table._segment_cache) <= 3

    def test_attach_mismatch_leaves_table_untouched(self, rows):
        from repro.spatial.packed_rtree import PackedRTree

        source = LayerTable(layer=0, index_kind="packed")
        source.bulk_load(rows)
        table = LayerTable(layer=0)
        with pytest.raises(StorageError):
            table.attach_packed_index(source.rtree, rows=rows[:2])
        # Nothing was half-installed: empty store, original (dynamic) index.
        assert table.num_rows == 0
        assert table.next_row_id() == 0
        assert len(table.rtree) == 0

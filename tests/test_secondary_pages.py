"""Tests for persisted secondary-index pages (``repro.storage.secondary_pages``).

The node-id B+-trees and label tries ride the same ``layer_index_pages``
versioning/fingerprint scheme as the packed spatial index: built indexes are
serialised at save time and restored — instead of lazily rebuilt from a full
store scan — on the next open.  Coverage: bulk-build equivalence for both
index types, page encode/decode round trips, corrupt-page fallback, and the
SQLite save/load integration including staleness invalidation.
"""

from __future__ import annotations

import random
import sqlite3

import pytest

from repro.config import StorageConfig
from repro.errors import StorageError
from repro.spatial.btree import BPlusTree
from repro.spatial.trie import FullTextIndex
from repro.storage.secondary_pages import (
    LABEL_TRIE_KIND,
    NODE_BTREE_KIND,
    decode_label_tries,
    decode_node_btrees,
    encode_label_tries,
    encode_node_btrees,
)
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite


class TestBPlusTreeBulkBuild:
    def test_equivalence_with_incremental_inserts(self):
        rng = random.Random(7)
        pairs = [(key, rng.randrange(1000)) for key in range(200) for _ in range(rng.randrange(1, 4))]
        incremental = BPlusTree(order=8)
        for key, value in pairs:
            incremental.insert(key, value)
        grouped: dict[int, list[object]] = {}
        for key, value in pairs:
            grouped.setdefault(key, []).append(value)
        bulk = BPlusTree.bulk_build(sorted(grouped.items()), order=8)
        assert len(bulk) == len(incremental)
        assert bulk.num_keys == incremental.num_keys
        assert list(bulk.items()) == list(incremental.items())
        assert bulk.range_search(50, 70) == incremental.range_search(50, 70)
        bulk.check_invariants()

    def test_empty_and_single_key(self):
        assert list(BPlusTree.bulk_build([], order=4).keys()) == []
        tree = BPlusTree.bulk_build([(5, ["a", "b"])], order=4)
        assert tree.search(5) == ["a", "b"]
        tree.check_invariants()

    def test_bulk_built_tree_accepts_further_mutations(self):
        tree = BPlusTree.bulk_build([(k, [k]) for k in range(100)], order=6)
        tree.insert(1000, "late")
        assert tree.search(1000) == ["late"]
        assert tree.remove(50) == 1
        assert tree.search(50) == []
        tree.check_invariants()


class TestFullTextBulkBuild:
    ENTRIES = [
        (("n1", 1), "Christos Faloutsos"),
        (("n2", 1), "Graph Mining"),
        (("n1", 2), "Christos Faloutsos"),  # repeated label, distinct doc
        (("n1", 3), "Patent 42"),
    ]

    def test_equivalence_with_per_document_adds(self):
        incremental = FullTextIndex()
        for document, label in self.ENTRIES:
            incremental.add(document, label)
        bulk = FullTextIndex.bulk_build(list(self.ENTRIES))
        for keyword in ("christos", "falo", "graph", "42", "patent"):
            for mode in ("exact", "prefix", "contains"):
                assert bulk.search(keyword, mode=mode) == incremental.search(
                    keyword, mode=mode
                ), (keyword, mode)
        assert len(bulk) == len(incremental)

    def test_bulk_built_index_accepts_mutations(self):
        bulk = FullTextIndex.bulk_build(list(self.ENTRIES))
        bulk.add(("n1", 9), "Novelty")
        assert ("n1", 9) in bulk.search("novelty")
        assert bulk.remove(("n1", 1)) is True
        assert ("n1", 1) not in bulk.search("christos")


class TestPageRoundTrips:
    def test_node_btrees_round_trip(self):
        node1 = BPlusTree(order=8)
        node2 = BPlusTree(order=8)
        for row_id in range(50):
            node1.insert(row_id % 10, row_id)
            node2.insert(row_id % 7, row_id)
        payload = encode_node_btrees(node1, node2)
        restored1, restored2 = decode_node_btrees(payload, order=8)
        assert list(restored1.items()) == list(node1.items())
        assert list(restored2.items()) == list(node2.items())

    def test_node_btrees_rejects_garbage(self):
        with pytest.raises(StorageError):
            decode_node_btrees(b"not a page at all", order=8)
        good = encode_node_btrees(BPlusTree(), BPlusTree())
        with pytest.raises(StorageError):
            decode_node_btrees(good[:-3], order=8)  # truncated int64 array

    def test_label_tries_round_trip(self):
        node_labels = FullTextIndex()
        node_labels.add(("n1", 1), "Alpha Beta")
        node_labels.add(("n2", 2), "Gamma")
        edge_labels = FullTextIndex()
        edge_labels.add(7, "cites")
        payload = encode_label_tries(node_labels, edge_labels)
        restored_nodes, restored_edges = decode_label_tries(payload)
        assert restored_nodes.search("alpha") == node_labels.search("alpha")
        assert restored_edges.search("cites") == edge_labels.search("cites")
        assert restored_nodes.label_of(("n2", 2)) == "Gamma"

    def test_label_tries_rejects_garbage(self):
        with pytest.raises(StorageError):
            decode_label_tries(b"\xff\xfe not json")
        with pytest.raises(StorageError):
            decode_label_tries(b'{"node_labels": 17}')


class TestSqliteIntegration:
    def _page_kinds(self, path) -> set[str]:
        with sqlite3.connect(path) as connection:
            return {
                kind for (kind,) in connection.execute(
                    "SELECT DISTINCT kind FROM layer_index_pages"
                )
            }

    def test_built_indexes_are_persisted_and_restored(self, patent_result, tmp_path):
        path = tmp_path / "paged.db"
        database = patent_result.database
        save_to_sqlite(database, path)
        # First open: lazy rebuild (initial save had nothing built), then the
        # indexes materialise and an incremental re-save persists them.
        first = load_from_sqlite(path)
        reference_kw = first.table(0).keyword_search("patent")
        reference_rows = [r.row_id for r in first.table(0).rows_for_node(
            next(iter(first.table(0).distinct_node_ids()))
        )]
        save_to_sqlite(first, path)
        assert {NODE_BTREE_KIND, LABEL_TRIE_KIND} <= self._page_kinds(path)

        second = load_from_sqlite(path)
        table = second.table(0)
        assert table.has_pending_secondary_pages
        assert second.storage_summary()["layers"][0]["secondary_indexes"] == "paged"
        # First use consumes the page instead of scanning the store...
        assert table.keyword_search("patent") == reference_kw
        node_id = next(iter(first.table(0).distinct_node_ids()))
        assert [r.row_id for r in table.rows_for_node(node_id)] == reference_rows
        assert table.node_indexes_built and table.label_indexes_built

    def test_mutation_drops_staged_pages(self, patent_result, tmp_path):
        path = tmp_path / "stale.db"
        database = patent_result.database
        save_to_sqlite(database, path)
        warmed = load_from_sqlite(path)
        warmed.table(0).keyword_search("patent")
        warmed.table(0).rows_for_node(next(iter(warmed.table(0).distinct_node_ids())))
        save_to_sqlite(warmed, path)

        loaded = load_from_sqlite(path)
        table = loaded.table(0)
        assert table.has_pending_secondary_pages
        victim = next(iter(table.scan()))
        table.delete_row(victim.row_id)
        # The staged pages describe pre-delete rows: they must be gone, and
        # the eventual lazy build must reflect the mutation.
        assert not table.has_pending_secondary_pages
        assert victim.row_id not in set(table.node1_index.search(victim.node1_id))

    def test_unbuilt_indexes_are_not_persisted(self, small_graph, tmp_path):
        # A pristine database (other tests may have built the shared
        # fixture's indexes): lazy secondary indexes exist only as gates.
        from repro.layout.base import Layout
        from repro.spatial.geometry import Point
        from repro.storage.database import GraphVizDatabase
        from repro.storage.schema import rows_from_graph

        layout = Layout({
            node_id: Point(float(node_id), 0.0)
            for node_id in small_graph.node_ids()
        })
        database = GraphVizDatabase(name="pristine")
        database.load_layer(0, rows_from_graph(small_graph, layout))
        assert not database.table(0).node_indexes_built
        path = tmp_path / "unbuilt.db"
        save_to_sqlite(database, path)
        loaded = load_from_sqlite(path)  # never touches secondary indexes
        save_to_sqlite(loaded, path)
        assert NODE_BTREE_KIND not in self._page_kinds(path)
        assert LABEL_TRIE_KIND not in self._page_kinds(path)

    def test_opt_out_disables_pages(self, patent_result, tmp_path):
        base = tmp_path / "base.db"
        save_to_sqlite(patent_result.database, base)
        optout = StorageConfig(secondary_index_pages=False)
        # Save side: a database running the opt-out config writes no
        # secondary pages to a fresh file, even with its indexes built.
        warmed = load_from_sqlite(base, config=optout)
        warmed.table(0).keyword_search("patent")
        warmed.table(0).rows_for_node(
            next(iter(warmed.table(0).distinct_node_ids()))
        )
        target = tmp_path / "optout.db"
        save_to_sqlite(warmed, target)
        assert LABEL_TRIE_KIND not in self._page_kinds(target)
        assert NODE_BTREE_KIND not in self._page_kinds(target)
        # Load side: pages present in a file are ignored under the opt-out.
        opted_in = load_from_sqlite(base)
        opted_in.table(0).keyword_search("patent")
        opted_in.table(0).rows_for_node(
            next(iter(opted_in.table(0).distinct_node_ids()))
        )
        paged = tmp_path / "paged.db"
        save_to_sqlite(opted_in, paged)
        assert LABEL_TRIE_KIND in self._page_kinds(paged)
        reloaded = load_from_sqlite(paged, config=optout)
        assert not reloaded.table(0).has_pending_secondary_pages

    def test_corrupt_page_falls_back_to_rebuild(self, patent_result, tmp_path):
        path = tmp_path / "corrupt.db"
        database = patent_result.database
        save_to_sqlite(database, path)
        warmed = load_from_sqlite(path)
        reference = warmed.table(0).keyword_search("patent")
        warmed.table(0).rows_for_node(next(iter(warmed.table(0).distinct_node_ids())))
        save_to_sqlite(warmed, path)
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE layer_index_pages SET payload = x'deadbeef' WHERE kind = ?",
                (LABEL_TRIE_KIND,),
            )
        loaded = load_from_sqlite(path)
        assert loaded.table(0).keyword_search("patent") == reference

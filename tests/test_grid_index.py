"""Unit tests for the uniform-grid spatial index (ablation alternative)."""

from __future__ import annotations

import random

import pytest

from repro.errors import SpatialIndexError
from repro.spatial.geometry import Point, Rect
from repro.spatial.grid_index import GridIndex


def random_rects(count: int, seed: int = 0) -> list[Rect]:
    rng = random.Random(seed)
    rects = []
    for _ in range(count):
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        rects.append(Rect(x, y, x + rng.uniform(0, 40), y + rng.uniform(0, 40)))
    return rects


class TestGridIndex:
    def test_invalid_cell_size(self):
        with pytest.raises(SpatialIndexError):
            GridIndex(cell_size=0)

    def test_insert_and_query(self):
        index = GridIndex(cell_size=100)
        index.insert(Rect(10, 10, 20, 20), "a")
        index.insert(Rect(500, 500, 520, 520), "b")
        assert index.window_query(Rect(0, 0, 50, 50)) == ["a"]
        assert set(index.window_query(Rect(0, 0, 1000, 1000))) == {"a", "b"}
        assert len(index) == 2

    def test_matches_brute_force(self):
        rects = random_rects(200, seed=4)
        index = GridIndex.bulk_load([(rect, i) for i, rect in enumerate(rects)], cell_size=120)
        window = Rect(200, 200, 600, 600)
        expected = {i for i, rect in enumerate(rects) if rect.intersects(window)}
        assert set(index.window_query(window)) == expected

    def test_entry_spanning_cells_is_not_duplicated(self):
        index = GridIndex(cell_size=10)
        index.insert(Rect(0, 0, 35, 5), "wide")
        assert index.window_query(Rect(-5, -5, 50, 50)) == ["wide"]
        assert index.num_cells() == 4

    def test_point_query(self):
        index = GridIndex(cell_size=50)
        index.insert(Rect(0, 0, 10, 10), "a")
        assert index.point_query(Point(5, 5)) == ["a"]
        assert index.point_query(Point(30, 30)) == []

    def test_negative_coordinates(self):
        index = GridIndex(cell_size=50)
        index.insert(Rect(-120, -80, -100, -60), "neg")
        assert index.window_query(Rect(-150, -100, -90, -50)) == ["neg"]

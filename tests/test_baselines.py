"""Unit tests for the holistic and hierarchical baselines."""

from __future__ import annotations

import pytest

from repro.baselines.hierarchical import HierarchicalExplorer
from repro.baselines.holistic import HolisticVisualizer
from repro.errors import GraphVizDBError
from repro.graph.generators import community_graph, path_graph
from repro.graph.traversal import shortest_path
from repro.layout.base import Layout
from repro.spatial.geometry import Point, Rect


class TestHolistic:
    @pytest.fixture
    def visualizer(self):
        graph = path_graph(10)
        layout = Layout({i: Point(float(i * 10), 0.0) for i in range(10)})
        return HolisticVisualizer(graph, layout=layout)

    def test_window_query_by_linear_scan(self, visualizer):
        result = visualizer.window_query(Rect(-5, -5, 35, 5))
        assert set(result.nodes) == {0, 1, 2, 3, 4}
        assert (0, 1) in result.edges and (3, 4) in result.edges
        assert result.scan_seconds >= 0

    def test_edges_crossing_window_included(self, visualizer):
        # Window strictly between node 4 (x=40) and node 5 (x=50).
        result = visualizer.window_query(Rect(42, -1, 48, 1))
        assert result.edges == [(4, 5)]

    def test_num_objects(self, visualizer):
        result = visualizer.window_query(Rect(-100, -100, 200, 100))
        assert result.num_objects == 10 + 9

    def test_memory_estimate_grows_with_graph(self):
        small = HolisticVisualizer(path_graph(20), layout_iterations=5)
        large = HolisticVisualizer(path_graph(200), layout_iterations=5)
        assert large.estimated_memory_bytes() > small.estimated_memory_bytes()

    def test_layout_computed_when_missing(self):
        visualizer = HolisticVisualizer(path_graph(15), layout_iterations=5)
        assert len(visualizer.layout.positions) == 15


class TestHierarchicalExplorer:
    @pytest.fixture
    def explorer(self):
        graph = community_graph(num_communities=4, community_size=20, inter_edges=2, seed=3)
        return HierarchicalExplorer(graph, max_cluster_size=25, seed=1)

    def test_root_contains_everything(self, explorer):
        assert len(explorer.clusters[explorer.root].members) == 80
        assert set(explorer.visible_nodes()) == set(range(80))

    def test_tree_statistics(self, explorer):
        stats = explorer.tree_statistics()
        assert stats["num_clusters"] > 1
        assert stats["num_leaves"] >= 2
        assert stats["max_depth"] >= 1

    def test_expand_and_collapse(self, explorer):
        child = explorer.clusters[explorer.root].children[0]
        visible = explorer.expand(child)
        assert set(visible) < set(range(80))
        explorer.collapse()
        assert explorer.expanded == explorer.root
        assert explorer.vertical_operations == 2

    def test_expand_unknown_cluster_raises(self, explorer):
        with pytest.raises(GraphVizDBError):
            explorer.expand(10**6)

    def test_cluster_of_every_node(self, explorer):
        for node_id in range(80):
            cluster = explorer.cluster_of(node_id)
            assert node_id in explorer.clusters[cluster].members

    def test_leaf_clusters_respect_size_bound(self, explorer):
        for cluster in explorer.clusters.values():
            if cluster.is_leaf and cluster.depth < explorer.max_depth:
                assert len(cluster.members) <= explorer.max_cluster_size

    def test_path_within_one_cluster_costs_nothing(self, explorer):
        leaf = next(c for c in explorer.clusters.values() if c.is_leaf and len(c.members) >= 2)
        path = leaf.members[:2]
        assert explorer.operations_to_follow_path(path) == 0

    def test_cross_community_path_costs_vertical_operations(self, explorer):
        graph = explorer.graph
        # A path from community 0 to community 3 necessarily crosses clusters.
        path = shortest_path(graph, 0, 75)
        if path is not None:
            assert explorer.operations_to_follow_path(path) > 0

    def test_invalid_cluster_size(self):
        with pytest.raises(GraphVizDBError):
            HierarchicalExplorer(path_graph(5), max_cluster_size=1)

    def test_empty_path(self, explorer):
        assert explorer.operations_to_follow_path([]) == 0

"""End-to-end integration tests crossing every subsystem."""

from __future__ import annotations

import pytest

from repro.client.simulator import ClientSimulator
from repro.config import (
    AbstractionConfig,
    GraphVizDBConfig,
    LayoutConfig,
    PartitionConfig,
    StorageConfig,
)
from repro.core.pipeline import PreprocessingPipeline
from repro.core.query_manager import QueryManager
from repro.core.server import GraphVizDBServer
from repro.graph.generators import wikidata_like
from repro.graph.io import write_edge_list, read_edge_list
from repro.spatial.geometry import Rect
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite


class TestEndToEnd:
    def test_window_queries_consistent_with_ground_truth(self, patent_result):
        """Window queries through the indexes return exactly the geometry-overlapping rows."""
        table = patent_result.database.table(0)
        bounds = patent_result.database.bounds(0)
        window = Rect.from_center(bounds.center, bounds.width / 4, bounds.height / 4)
        via_index = {row.row_id for row in table.window_query(window)}
        via_scan = {
            row.row_id for row in table.scan() if row.segment().intersects_rect(window)
        }
        assert via_index == via_scan

    def test_layer_zero_matches_original_graph(self, patent_result):
        graph = patent_result.hierarchy.layer(0).graph
        table = patent_result.database.table(0)
        stored_edges = {
            (row.node1_id, row.node2_id) for row in table.scan() if not row.is_node_row()
        }
        original_edges = {(edge.source, edge.target) for edge in graph.edges()}
        assert stored_edges == original_edges

    def test_keyword_search_then_focus_then_pan_workflow(self, wikidata_result):
        """The demo scenario: search for an entity, focus on it, explore horizontally."""
        server_manager = QueryManager(wikidata_result.database)
        from repro.core.session import ExplorationSession

        session = ExplorationSession(server_manager)
        matches = session.search("faloutsos", limit=5)
        if matches.num_matches == 0:
            matches = session.search("on", limit=5)
        assert matches.num_matches > 0
        node_id = matches.matches[0]["node_id"]
        focus_result = session.focus_on(node_id)
        assert any(node_id in (r.node1_id, r.node2_id) for r in focus_result.rows)
        pan_result = session.pan(session.viewport.width_px / 2, 0)
        assert pan_result.num_objects >= 0

    def test_vertical_navigation_reduces_detail(self, wikidata_result):
        manager = QueryManager(wikidata_result.database)
        viewport = manager.default_viewport().zoomed(0.2)
        layer0 = manager.window_query(viewport.window(), layer=0)
        top_layer = wikidata_result.database.layers()[-1]
        abstract = manager.change_layer(viewport, top_layer)
        assert abstract.num_objects <= layer0.num_objects

    def test_full_round_trip_through_files_and_sqlite(self, tmp_path, small_config):
        # Graph -> edge list file -> preprocess -> SQLite -> reload -> query.
        graph = wikidata_like(num_entities=80, seed=12)
        path = tmp_path / "wiki.edges"
        write_edge_list(graph, path)
        loaded_graph = read_edge_list(path, name="wiki")
        assert loaded_graph.num_edges == graph.num_edges

        result = PreprocessingPipeline(small_config).run(loaded_graph)
        db_path = tmp_path / "wiki.db"
        save_to_sqlite(result.database, db_path)
        reloaded = load_from_sqlite(db_path)

        manager = QueryManager(reloaded)
        viewport = manager.default_viewport()
        assert manager.viewport_query(viewport).num_objects > 0

    def test_file_backend_pipeline(self, tmp_path):
        config = GraphVizDBConfig(
            partition=PartitionConfig(max_partition_nodes=60),
            layout=LayoutConfig(iterations=10),
            abstraction=AbstractionConfig(num_layers=1),
            storage=StorageConfig(backend="file", path=str(tmp_path)),
        )
        graph = wikidata_like(num_entities=60, seed=5)
        result = PreprocessingPipeline(config).run(graph)
        result.database.validate()
        manager = QueryManager(result.database)
        assert manager.viewport_query(manager.default_viewport()).num_objects > 0

    def test_editing_visible_through_queries(self, small_config):
        server = GraphVizDBServer(small_config)
        graph = wikidata_like(num_entities=60, seed=8)
        graph.name = "editable"
        server.load_dataset(graph)
        editor = server.create_editor("editable")
        node_id = next(iter(graph.node_ids()))
        editor.rename_node(node_id, "A Completely Unique Label")
        session = server.create_session("editable")
        assert session.search("completely unique").num_matches == 1
        server.dataset("editable").database.validate()

    def test_client_breakdown_dominated_by_rendering(self, patent_result):
        """The Fig. 3 shape holds on the integration dataset."""
        simulator = ClientSimulator(QueryManager(patent_result.database))
        bounds = patent_result.database.bounds(0)
        sizes = [bounds.width / 8, bounds.width / 4, bounds.width / 2]
        previous_objects = -1
        for size in sizes:
            window = Rect.from_center(bounds.center, size, size)
            timing = simulator.execute_window(window)
            assert timing.communication_rendering_seconds >= timing.db_query_seconds
            assert timing.num_objects >= previous_objects
            previous_objects = timing.num_objects

    def test_abstraction_layers_preserve_mental_map(self, patent_result):
        """Nodes surviving to layer 1 keep their layer-0 coordinates (filter criteria)."""
        database = patent_result.database
        if patent_result.hierarchy.num_layers < 2:
            pytest.skip("hierarchy has a single layer")
        layer1 = patent_result.hierarchy.layer(1)
        layer0_layout = patent_result.hierarchy.layer(0).layout
        if not layer1.criterion.startswith("filter"):
            pytest.skip("merge-based layers move nodes to centroids")
        for node_id in list(layer1.graph.node_ids())[:20]:
            assert layer1.layout.position(node_id) == layer0_layout.position(node_id)
        # And the stored tables agree with the layouts.
        table1 = database.table(1)
        for node_id in list(layer1.graph.node_ids())[:10]:
            stored = table1.node_position(node_id)
            assert stored is not None

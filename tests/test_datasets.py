"""Unit tests for the named demo datasets (ACM-like, web-graph-like, registry)."""

from __future__ import annotations

import pytest

from repro.abstraction.ranking import pagerank_scores
from repro.graph.datasets import (
    acm_like,
    available_datasets,
    load_dataset,
    web_graph_like,
)


class TestAcmLike:
    @pytest.fixture(scope="class")
    def graph(self):
        return acm_like(num_articles=200, num_authors=40, seed=2)

    def test_node_types(self, graph):
        assert graph.node_types() == {"article", "author", "venue", "title"}

    def test_edge_labels(self, graph):
        labels = {edge.label for edge in graph.edges()}
        assert labels == {"has-author", "cites", "published-in", "has-title"}

    def test_every_article_has_title_venue_and_author(self, graph):
        articles = [n.node_id for n in graph.nodes() if n.node_type == "article"]
        for article in articles[:50]:
            out_labels = [
                graph.edge(article, target).label for target in graph.successors(article)
            ]
            assert "has-title" in out_labels
            assert "published-in" in out_labels
            assert "has-author" in out_labels

    def test_citations_target_articles_only(self, graph):
        for edge in graph.edges():
            if edge.label == "cites":
                assert graph.node(edge.target).node_type == "article"

    def test_faloutsos_scenario_possible(self, graph):
        """The demo's 'explore an author's collaborations' scenario needs a
        well-known author with several articles."""
        faloutsos = [
            node for node in graph.nodes()
            if node.node_type == "author" and "Faloutsos" in node.label
        ]
        assert faloutsos
        degrees = [graph.in_degree(node.node_id) for node in faloutsos]
        assert max(degrees) >= 2

    def test_deterministic(self):
        first = acm_like(num_articles=50, seed=9)
        second = acm_like(num_articles=50, seed=9)
        assert first.num_edges == second.num_edges


class TestWebGraphLike:
    @pytest.fixture(scope="class")
    def graph(self):
        return web_graph_like(num_pages=600, seed=3)

    def test_sizes(self, graph):
        assert graph.num_nodes == 600
        assert graph.num_edges > 600

    def test_heavy_tailed_in_degree(self, graph):
        degrees = sorted((graph.in_degree(n) for n in graph.node_ids()), reverse=True)
        top_share = sum(degrees[:30]) / max(sum(degrees), 1)
        assert top_share > 0.3, "hubs should attract a large share of the links"

    def test_pagerank_identifies_hubs(self, graph):
        """The Notre Dame demo filters by PageRank; hubs must rank highly."""
        scores = pagerank_scores(graph)
        top10 = sorted(scores, key=scores.get, reverse=True)[:10]
        hub_hits = sum(1 for node_id in top10 if graph.node(node_id).node_type == "hub")
        assert hub_hits >= 5


class TestRegistry:
    def test_available_datasets(self):
        assert set(available_datasets()) == {"acm", "dblp", "patent", "webgraph", "wikidata"}

    @pytest.mark.parametrize("name", ["acm", "dblp", "patent", "webgraph", "wikidata"])
    def test_load_each_dataset(self, name):
        graph = load_dataset(name, scale=0.05, seed=1)
        assert graph.num_nodes > 0
        assert graph.num_edges > 0
        assert graph.name == name

    def test_scale_changes_size(self):
        small = load_dataset("patent", scale=0.05)
        large = load_dataset("patent", scale=0.2)
        assert large.num_nodes > small.num_nodes

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            load_dataset("freebase")

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("acm", scale=0)

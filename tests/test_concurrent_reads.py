"""Concurrent-read safety: threads hammering one dataset must match serial results.

Guards the mutation-prone read paths the serving subsystem exposes to
concurrency: the lazily built secondary indexes (first keyword search / node
lookup triggers a build-from-store) and the LRU-bounded per-row caches
(segment / coordinate / JSON-fragment caches evict while other threads read).
The database under test is loaded fresh from SQLite with a tiny cache
capacity so both paths are exercised under real contention.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import StorageConfig
from repro.core.query_manager import QueryManager
from repro.spatial.geometry import Point
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite

NUM_THREADS = 8
ROUNDS = 6
KEYWORDS = ["patent", "node", "a", "e"]


@pytest.fixture(scope="module")
def sqlite_path(request, tmp_path_factory):
    patent_result = request.getfixturevalue("patent_result")
    path = tmp_path_factory.mktemp("concurrent") / "patent.db"
    save_to_sqlite(patent_result.database, path)
    return path


def _workload_windows(manager: QueryManager) -> list:
    base = manager.default_viewport().window()
    step = base.width / 2
    return [base.translated(i * step, (i % 3) * step) for i in range(6)]


def _serial_baseline(path):
    """Expected results, computed on a private instance with lazy paths forced."""
    database = load_from_sqlite(path)
    manager = QueryManager(database)
    windows = _workload_windows(manager)
    window_rows = [manager.window_query(window).rows for window in windows]
    searches = {
        keyword: manager.keyword_search(keyword, limit=10).matches
        for keyword in KEYWORDS
    }
    table = database.table(0)
    centers = [window.center for window in windows]
    nearest = [table.rtree.nearest(center, k=5) for center in centers]
    return windows, window_rows, searches, nearest


def test_threaded_reads_match_serial_baseline(sqlite_path):
    windows, expected_rows, expected_searches, expected_nearest = _serial_baseline(
        sqlite_path
    )
    # Tiny cache capacity: every window query churns the per-row caches, so
    # eviction races with concurrent readers instead of hiding behind an
    # unbounded dict.
    database = load_from_sqlite(
        sqlite_path, config=StorageConfig(cache_capacity=64)
    )
    manager = QueryManager(database)
    table = database.table(0)
    assert not table.node_indexes_built  # the threads themselves trigger the build

    failures: list[str] = []
    barrier = threading.Barrier(NUM_THREADS)

    def hammer(thread_index: int) -> None:
        barrier.wait()
        try:
            for round_index in range(ROUNDS):
                offset = thread_index + round_index
                window = windows[offset % len(windows)]
                rows = manager.window_query(window).rows
                if rows != expected_rows[offset % len(windows)]:
                    failures.append(f"window mismatch (thread {thread_index})")
                keyword = KEYWORDS[offset % len(KEYWORDS)]
                matches = manager.keyword_search(keyword, limit=10).matches
                if matches != expected_searches[keyword]:
                    failures.append(f"keyword mismatch (thread {thread_index})")
                center = windows[offset % len(windows)].center
                found = table.rtree.nearest(center, k=5)
                if found != expected_nearest[offset % len(windows)]:
                    failures.append(f"nearest mismatch (thread {thread_index})")
        except Exception as exc:  # noqa: BLE001 - report, don't hang the join
            failures.append(f"thread {thread_index} raised {exc!r}")

    threads = [
        threading.Thread(target=hammer, args=(index,))
        for index in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not failures, failures
    assert table.node_indexes_built  # built exactly once, under contention


def test_reads_tolerate_rows_deleted_behind_the_index(sqlite_path):
    """A row deleted between index lookup and row fetch is skipped, not fatal.

    Simulates the lock-free reader race deterministically: the row leaves the
    store while the spatial/secondary indexes still reference it (exactly the
    window a concurrent ``delete_row`` opens for readers holding an index
    snapshot).
    """
    database = load_from_sqlite(sqlite_path)
    table = database.table(0)
    bounds = table.bounds()
    all_rows = table.window_query(bounds)
    victim = all_rows[len(all_rows) // 2]
    table.keyword_search("patent")  # force the label trie before the removal
    table.rows_for_node(victim.node1_id)  # force the B+-trees too
    table.store.delete(victim.row_id)  # store-only removal: indexes still point

    survivors = table.window_query(bounds)
    assert victim not in survivors
    assert len(survivors) == len(all_rows) - 1
    assert all(
        row.row_id != victim.row_id
        for row in table.rows_for_node(victim.node1_id)
    )
    table.keyword_search("patent")  # must not raise either
    assert table.live_rows([victim.row_id]) == []


def test_cache_fills_dropped_after_concurrent_invalidation(sqlite_path):
    """A fill computed from a pre-mutation row must not land after invalidation.

    Replays the reader/writer interleaving deterministically: the reader
    captures its fill guard (as every payload-build path does before
    fetching rows), the writer then updates the row — invalidating the
    caches — and only afterwards does the reader's fill arrive.  It must be
    dropped, or the pre-edit fragment would be served forever.
    """
    from repro.core.json_builder import row_fragments
    from repro.storage.schema import EdgeRow

    database = load_from_sqlite(sqlite_path)
    table = database.table(0)
    row = next(iter(table.scan()))

    guard = table.fragment_fill_guard()  # reader starts: guard captured
    stale_piece = row_fragments(row)     # reader derives content from old row

    updated = EdgeRow(                   # writer commits an update meanwhile
        row_id=row.row_id,
        node1_id=row.node1_id,
        node1_label="PostEditLabel",
        edge_geometry=row.edge_geometry,
        edge_label=row.edge_label,
        node2_id=row.node2_id,
        node2_label=row.node2_label,
    )
    table.update_row(updated)

    guard[row.row_id] = stale_piece      # reader's late fill must be dropped
    assert row.row_id not in table.fragment_cache

    # A fill guarded by a *fresh* generation still lands (warm path intact).
    fresh_guard = table.fragment_fill_guard()
    fresh_piece = row_fragments(table.get(row.row_id))
    fresh_guard[row.row_id] = fresh_piece
    assert table.fragment_cache[row.row_id].node1_obj["label"] == "PostEditLabel"


def test_concurrent_lazy_build_single_flight(sqlite_path):
    """All threads racing the first keyword search see one consistent index."""
    database = load_from_sqlite(sqlite_path)
    table = database.table(0)
    results = []
    barrier = threading.Barrier(NUM_THREADS)

    def search():
        barrier.wait()
        results.append(table.keyword_search("patent"))

    threads = [threading.Thread(target=search) for _ in range(NUM_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == NUM_THREADS
    assert all(result == results[0] for result in results)


def test_concurrent_node_lookup_vs_serial(sqlite_path):
    """rows_for_node through the lazily built B+-trees agrees across threads."""
    baseline_db = load_from_sqlite(sqlite_path)
    node_ids = sorted(baseline_db.table(0).distinct_node_ids())[:16]
    expected = {
        node_id: baseline_db.rows_for_node(0, node_id) for node_id in node_ids
    }

    database = load_from_sqlite(sqlite_path)
    failures = []
    barrier = threading.Barrier(NUM_THREADS)

    def lookup(thread_index: int) -> None:
        barrier.wait()
        for node_id in node_ids[thread_index::NUM_THREADS] or node_ids:
            if database.rows_for_node(0, node_id) != expected[node_id]:
                failures.append(node_id)

    threads = [
        threading.Thread(target=lookup, args=(index,))
        for index in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures

"""Unit tests for the multi-layer database and the SQLite backend."""

from __future__ import annotations

import pytest

from repro.abstraction.hierarchy import build_hierarchy
from repro.config import AbstractionConfig, StorageConfig
from repro.errors import ConfigurationError, LayerNotFoundError, StorageError
from repro.graph.generators import community_graph
from repro.layout.circular import CircularLayout
from repro.spatial.geometry import Rect
from repro.storage.database import GraphVizDatabase
from repro.storage.schema import rows_from_graph
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite


@pytest.fixture
def hierarchy():
    graph = community_graph(num_communities=3, community_size=12, seed=2)
    layout = CircularLayout(area_per_node=400.0).layout(graph)
    return build_hierarchy(graph, layout, AbstractionConfig(num_layers=2))


@pytest.fixture
def database(hierarchy):
    database = GraphVizDatabase(name="communities")
    database.load_hierarchy(hierarchy)
    return database


class TestDatabase:
    def test_layers_created(self, database, hierarchy):
        assert database.num_layers == hierarchy.num_layers
        assert database.layers() == list(range(hierarchy.num_layers))
        assert database.has_layer(0)
        assert not database.has_layer(99)

    def test_unknown_layer_raises(self, database):
        with pytest.raises(LayerNotFoundError):
            database.table(42)

    def test_window_query_per_layer(self, database):
        bounds0 = database.bounds(0)
        everything = database.window_query(0, bounds0.expanded(10))
        assert len(everything) == database.table(0).num_rows
        # Higher layers contain fewer rows.
        higher = database.window_query(1, database.bounds(1).expanded(10))
        assert len(higher) < len(everything)

    def test_keyword_search(self, database):
        matches = database.keyword_search(0, "c0")
        assert matches
        assert all("c0" in label for _, label in matches)

    def test_rows_for_node(self, database, hierarchy):
        node = next(iter(hierarchy.layer(0).graph.node_ids()))
        rows = database.rows_for_node(0, node)
        assert rows
        assert all(node in (row.node1_id, row.node2_id) for row in rows)

    def test_validate_passes_on_consistent_database(self, database):
        database.validate()

    def test_validate_detects_missing_rtree_entry(self, database):
        table = database.table(0)
        row = next(table.scan())
        table.ensure_dynamic_index()
        table.rtree.delete(row.bounding_rect(), row.row_id)
        with pytest.raises(StorageError):
            database.validate()

    def test_storage_summary(self, database):
        summary = database.storage_summary()
        assert summary["num_layers"] == database.num_layers
        assert len(summary["layers"]) == database.num_layers
        assert all("rtree_height" in entry for entry in summary["layers"])

    def test_create_layer_idempotent(self, database):
        table = database.create_layer(0)
        assert table is database.table(0)

    def test_file_backend(self, hierarchy, tmp_path):
        config = StorageConfig(backend="file", path=str(tmp_path))
        database = GraphVizDatabase(name="ondisk", config=config)
        database.load_hierarchy(hierarchy)
        assert database.table(0).num_rows > 0
        assert (tmp_path / "ondisk-layer0.rows").exists()
        database.validate()

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageConfig(backend="mysql")


class TestSQLiteBackend:
    def test_roundtrip(self, database, tmp_path):
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        loaded = load_from_sqlite(path)
        assert loaded.name == database.name
        assert loaded.layers() == database.layers()
        for layer in database.layers():
            assert loaded.table(layer).num_rows == database.table(layer).num_rows
        loaded.validate()

    def test_queries_work_after_reload(self, database, tmp_path):
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        loaded = load_from_sqlite(path)
        bounds = loaded.bounds(0)
        assert len(loaded.window_query(0, bounds)) == loaded.table(0).num_rows
        assert loaded.keyword_search(0, "c1")

    def test_save_overwrites_existing_layer_rows(self, database, tmp_path):
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        save_to_sqlite(database, path)  # second save must not duplicate rows
        loaded = load_from_sqlite(path)
        assert loaded.table(0).num_rows == database.table(0).num_rows

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_from_sqlite(tmp_path / "missing.db")

    def test_non_graphvizdb_file_raises(self, tmp_path):
        import sqlite3

        path = tmp_path / "other.db"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(StorageError):
            load_from_sqlite(path)

    def test_empty_database_roundtrip(self, tmp_path):
        empty = GraphVizDatabase(name="empty")
        path = tmp_path / "empty.db"
        save_to_sqlite(empty, path)
        loaded = load_from_sqlite(path)
        assert loaded.num_layers == 0

"""Unit tests for the multi-layer database and the SQLite backend."""

from __future__ import annotations

import pytest

from repro.abstraction.hierarchy import build_hierarchy
from repro.config import AbstractionConfig, StorageConfig
from repro.errors import ConfigurationError, LayerNotFoundError, StorageError
from repro.graph.generators import community_graph
from repro.layout.circular import CircularLayout
from repro.spatial.geometry import Rect
from repro.storage.database import GraphVizDatabase
from repro.storage.schema import rows_from_graph
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite


@pytest.fixture
def hierarchy():
    graph = community_graph(num_communities=3, community_size=12, seed=2)
    layout = CircularLayout(area_per_node=400.0).layout(graph)
    return build_hierarchy(graph, layout, AbstractionConfig(num_layers=2))


@pytest.fixture
def database(hierarchy):
    database = GraphVizDatabase(name="communities")
    database.load_hierarchy(hierarchy)
    return database


class TestDatabase:
    def test_layers_created(self, database, hierarchy):
        assert database.num_layers == hierarchy.num_layers
        assert database.layers() == list(range(hierarchy.num_layers))
        assert database.has_layer(0)
        assert not database.has_layer(99)

    def test_unknown_layer_raises(self, database):
        with pytest.raises(LayerNotFoundError):
            database.table(42)

    def test_window_query_per_layer(self, database):
        bounds0 = database.bounds(0)
        everything = database.window_query(0, bounds0.expanded(10))
        assert len(everything) == database.table(0).num_rows
        # Higher layers contain fewer rows.
        higher = database.window_query(1, database.bounds(1).expanded(10))
        assert len(higher) < len(everything)

    def test_keyword_search(self, database):
        matches = database.keyword_search(0, "c0")
        assert matches
        assert all("c0" in label for _, label in matches)

    def test_rows_for_node(self, database, hierarchy):
        node = next(iter(hierarchy.layer(0).graph.node_ids()))
        rows = database.rows_for_node(0, node)
        assert rows
        assert all(node in (row.node1_id, row.node2_id) for row in rows)

    def test_validate_passes_on_consistent_database(self, database):
        database.validate()

    def test_validate_detects_missing_rtree_entry(self, database):
        table = database.table(0)
        row = next(table.scan())
        table.ensure_dynamic_index()
        table.rtree.delete(row.bounding_rect(), row.row_id)
        with pytest.raises(StorageError):
            database.validate()

    def test_storage_summary(self, database):
        summary = database.storage_summary()
        assert summary["num_layers"] == database.num_layers
        assert len(summary["layers"]) == database.num_layers
        assert all("rtree_height" in entry for entry in summary["layers"])

    def test_create_layer_idempotent(self, database):
        table = database.create_layer(0)
        assert table is database.table(0)

    def test_file_backend(self, hierarchy, tmp_path):
        config = StorageConfig(backend="file", path=str(tmp_path))
        database = GraphVizDatabase(name="ondisk", config=config)
        database.load_hierarchy(hierarchy)
        assert database.table(0).num_rows > 0
        assert (tmp_path / "ondisk-layer0.rows").exists()
        database.validate()

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageConfig(backend="mysql")


class TestSQLiteBackend:
    def test_roundtrip(self, database, tmp_path):
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        loaded = load_from_sqlite(path)
        assert loaded.name == database.name
        assert loaded.layers() == database.layers()
        for layer in database.layers():
            assert loaded.table(layer).num_rows == database.table(layer).num_rows
        loaded.validate()

    def test_queries_work_after_reload(self, database, tmp_path):
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        loaded = load_from_sqlite(path)
        bounds = loaded.bounds(0)
        assert len(loaded.window_query(0, bounds)) == loaded.table(0).num_rows
        assert loaded.keyword_search(0, "c1")

    def test_save_overwrites_existing_layer_rows(self, database, tmp_path):
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        save_to_sqlite(database, path)  # second save must not duplicate rows
        loaded = load_from_sqlite(path)
        assert loaded.table(0).num_rows == database.table(0).num_rows

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_from_sqlite(tmp_path / "missing.db")

    def test_non_graphvizdb_file_raises(self, tmp_path):
        import sqlite3

        path = tmp_path / "other.db"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(StorageError):
            load_from_sqlite(path)

    def test_empty_database_roundtrip(self, tmp_path):
        empty = GraphVizDatabase(name="empty")
        path = tmp_path / "empty.db"
        save_to_sqlite(empty, path)
        loaded = load_from_sqlite(path)
        assert loaded.num_layers == 0


class TestIndexPages:
    """Persistent packed-index pages: zero-rebuild restore plus every fallback."""

    def _save(self, database, tmp_path):
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        return path

    def test_pages_written_and_restored(self, database, tmp_path):
        import sqlite3

        from repro.spatial.packed_rtree import PackedRTree

        path = self._save(database, tmp_path)
        with sqlite3.connect(path) as connection:
            kinds = connection.execute(
                "SELECT layer, kind FROM layer_index_pages ORDER BY layer"
            ).fetchall()
        assert kinds == [(layer, "packed_rtree") for layer in database.layers()]

        loaded = load_from_sqlite(path)
        for layer in loaded.layers():
            table = loaded.table(layer)
            assert isinstance(table.rtree, PackedRTree)
            # The restore path defers secondary indexes entirely.
            assert not table.node_indexes_built
            assert not table.label_indexes_built
        loaded.validate()

    def test_restored_queries_byte_identical_to_fresh(self, database, tmp_path):
        from repro.core.json_builder import build_payload, payload_to_json
        from repro.spatial.geometry import Point

        path = self._save(database, tmp_path)
        restored = load_from_sqlite(path)
        rebuilt = load_from_sqlite(
            path, config=StorageConfig(index_pages=False, lazy_secondary_indexes=False)
        )
        for layer in database.layers():
            fresh_table = database.table(layer)
            bounds = fresh_table.bounds().expanded(5)
            for other in (restored, rebuilt):
                table = other.table(layer)
                fresh_rows = fresh_table.window_query(bounds)
                other_rows = table.window_query(bounds)
                assert other_rows == fresh_rows  # EdgeRow equality is per-field
                assert payload_to_json(build_payload(other_rows)) == payload_to_json(
                    build_payload(fresh_rows)
                )
                assert table.count_window(bounds) == fresh_table.count_window(bounds)
                center = Point(
                    (bounds.min_x + bounds.max_x) / 2, (bounds.min_y + bounds.max_y) / 2
                )
                assert table.rtree.nearest(center, k=5) == fresh_table.rtree.nearest(
                    center, k=5
                )

    def test_stale_page_falls_back_to_rebuild(self, database, tmp_path):
        import sqlite3

        path = self._save(database, tmp_path)
        # Mutate a row behind the page's back: the fingerprint no longer matches,
        # so the loader must rebuild instead of trusting the stale page.
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE layer_0 SET node1_label = 'tampered' "
                "WHERE row_id = (SELECT MIN(row_id) FROM layer_0)"
            )
        loaded = load_from_sqlite(path)
        loaded.validate()
        labels = {row.node1_label for row in loaded.table(0).scan()}
        assert "tampered" in labels
        # The rebuilt index covers the updated rows exactly.
        assert len(loaded.table(0).rtree) == loaded.table(0).num_rows

    def test_missing_page_falls_back_to_rebuild(self, database, tmp_path):
        import sqlite3

        from repro.spatial.packed_rtree import PackedRTree

        path = self._save(database, tmp_path)
        with sqlite3.connect(path) as connection:
            connection.execute("DELETE FROM layer_index_pages")
        loaded = load_from_sqlite(path)
        loaded.validate()
        assert isinstance(loaded.table(0).rtree, PackedRTree)  # rebuilt, still packed
        assert loaded.table(0).num_rows == database.table(0).num_rows

    def test_version_mismatch_falls_back_to_rebuild(self, database, tmp_path):
        import sqlite3

        path = self._save(database, tmp_path)
        with sqlite3.connect(path) as connection:
            connection.execute("UPDATE layer_index_pages SET version = 999")
        loaded = load_from_sqlite(path)
        loaded.validate()
        assert loaded.table(0).num_rows == database.table(0).num_rows

    def test_corrupt_page_payload_falls_back_to_rebuild(self, database, tmp_path):
        import sqlite3

        path = self._save(database, tmp_path)
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE layer_index_pages SET payload = ?", (b"garbage-page",)
            )
        loaded = load_from_sqlite(path)
        loaded.validate()
        assert loaded.table(0).num_rows == database.table(0).num_rows

    def test_bitflipped_page_payload_falls_back_to_rebuild(self, database, tmp_path):
        """Same-length corruption (a flipped byte mid-payload) must be caught
        by the page checksum and fall back, never crash a later query."""
        import sqlite3

        path = self._save(database, tmp_path)
        with sqlite3.connect(path) as connection:
            payload = bytearray(connection.execute(
                "SELECT payload FROM layer_index_pages WHERE layer = 0"
            ).fetchone()[0])
            payload[len(payload) // 2] ^= 0xFF
            connection.execute(
                "UPDATE layer_index_pages SET payload = ? WHERE layer = 0",
                (bytes(payload),),
            )
        loaded = load_from_sqlite(path)
        loaded.validate()
        bounds = loaded.bounds(0)
        assert len(loaded.window_query(0, bounds.expanded(5))) == loaded.table(0).num_rows

    def test_pages_opt_out_config(self, database, tmp_path):
        import sqlite3

        config = StorageConfig(index_pages=False)
        no_pages = GraphVizDatabase(name=database.name, config=config)
        for layer in database.layers():
            no_pages.load_layer(layer, list(database.table(layer).scan()))
        path = tmp_path / "nopages.db"
        save_to_sqlite(no_pages, path)
        with sqlite3.connect(path) as connection:
            count = connection.execute(
                "SELECT COUNT(*) FROM layer_index_pages"
            ).fetchone()[0]
        assert count == 0
        load_from_sqlite(path).validate()

    def test_dynamic_index_kind_ignores_pages(self, database, tmp_path):
        from repro.spatial.rtree import RTree

        path = self._save(database, tmp_path)
        loaded = load_from_sqlite(path, config=StorageConfig(index_kind="rtree"))
        assert isinstance(loaded.table(0).rtree, RTree)
        loaded.validate()

    def test_demoted_table_saves_without_page_and_reloads(self, database, tmp_path):
        import sqlite3

        from repro.spatial.packed_rtree import PackedRTree

        edited = GraphVizDatabase(name="edited")
        edited.load_layer(0, list(database.table(0).scan()))
        table = edited.table(0)
        victim = next(table.scan())
        table.delete_row(victim.row_id)  # demotes layer 0 to the dynamic tree
        path = tmp_path / "edited.db"
        save_to_sqlite(edited, path)
        with sqlite3.connect(path) as connection:
            count = connection.execute(
                "SELECT COUNT(*) FROM layer_index_pages WHERE layer = 0"
            ).fetchone()[0]
        assert count == 0
        loaded = load_from_sqlite(path)  # rebuild path
        loaded.validate()
        assert loaded.table(0).num_rows == table.num_rows
        # After an explicit repack, the page is written again.
        table.repack()
        save_to_sqlite(edited, path)
        with sqlite3.connect(path) as connection:
            count = connection.execute(
                "SELECT COUNT(*) FROM layer_index_pages WHERE layer = 0"
            ).fetchone()[0]
        assert count == 1
        reloaded = load_from_sqlite(path)
        assert isinstance(reloaded.table(0).rtree, PackedRTree)
        assert not reloaded.table(0).node_indexes_built

    def test_empty_layer_round_trip(self, tmp_path):
        database = GraphVizDatabase(name="sparse")
        database.load_layer(0, [])
        path = self._save(database, tmp_path)
        loaded = load_from_sqlite(path)
        assert loaded.layers() == [0]
        assert loaded.table(0).num_rows == 0
        assert loaded.table(0).bounds() is None
        assert loaded.window_query(0, Rect(-1, -1, 1, 1)) == []
        loaded.validate()

    def test_storage_summary_reports_active_index(self, database, tmp_path):
        path = self._save(database, tmp_path)
        loaded = load_from_sqlite(path)
        summary = loaded.storage_summary()
        assert all(entry["index"] == "packed" for entry in summary["layers"])
        assert all(
            entry["secondary_indexes"] == "lazy" for entry in summary["layers"]
        )
        table = loaded.table(0)
        victim = next(table.scan())
        table.delete_row(victim.row_id)  # demote layer 0
        summary = loaded.storage_summary()
        by_layer = {entry["layer"]: entry for entry in summary["layers"]}
        assert by_layer[0]["index"] == "rtree"
        assert by_layer[1]["index"] == "packed"

"""Unit tests for the R*-style split option of the R-tree."""

from __future__ import annotations

import random

import pytest

from repro.errors import SpatialIndexError
from repro.spatial.geometry import Rect
from repro.spatial.rtree import RTree


def clustered_rects(count: int, seed: int = 0) -> list[Rect]:
    """Rectangles drawn from a few dense clusters (stresses split quality)."""
    rng = random.Random(seed)
    centers = [(rng.uniform(0, 5000), rng.uniform(0, 5000)) for _ in range(6)]
    rects = []
    for _ in range(count):
        cx, cy = rng.choice(centers)
        x = cx + rng.gauss(0, 120)
        y = cy + rng.gauss(0, 120)
        rects.append(Rect(x, y, x + rng.uniform(1, 30), y + rng.uniform(1, 30)))
    return rects


class TestRStarSplit:
    def test_unknown_split_method_rejected(self):
        with pytest.raises(SpatialIndexError):
            RTree(split_method="linear")

    def test_invariants_hold(self):
        tree = RTree(max_entries=6, split_method="rstar")
        for index, rect in enumerate(clustered_rects(300, seed=2)):
            tree.insert(rect, index)
        tree.check_invariants()
        assert len(tree) == 300

    def test_queries_match_brute_force(self):
        rects = clustered_rects(250, seed=3)
        tree = RTree(max_entries=8, split_method="rstar")
        for index, rect in enumerate(rects):
            tree.insert(rect, index)
        for seed in range(8):
            rng = random.Random(seed)
            x, y = rng.uniform(0, 4500), rng.uniform(0, 4500)
            window = Rect(x, y, x + 600, y + 600)
            expected = {i for i, rect in enumerate(rects) if rect.intersects(window)}
            assert set(tree.window_query(window)) == expected

    def test_rstar_and_quadratic_return_identical_results(self):
        rects = clustered_rects(200, seed=5)
        quadratic = RTree(max_entries=8, split_method="quadratic")
        rstar = RTree(max_entries=8, split_method="rstar")
        for index, rect in enumerate(rects):
            quadratic.insert(rect, index)
            rstar.insert(rect, index)
        window = Rect(1000, 1000, 3000, 3000)
        assert set(quadratic.window_query(window)) == set(rstar.window_query(window))

    def test_deletion_still_works(self):
        rects = clustered_rects(80, seed=7)
        tree = RTree(max_entries=5, split_method="rstar")
        for index, rect in enumerate(rects):
            tree.insert(rect, index)
        for index in range(0, 80, 2):
            assert tree.delete(rects[index], index)
        remaining = set(tree.window_query(Rect(-1e6, -1e6, 1e6, 1e6)))
        assert remaining == set(range(1, 80, 2))

    def test_min_fan_out_configuration(self):
        tree = RTree(max_entries=4, split_method="rstar")
        for index, rect in enumerate(clustered_rects(60, seed=9)):
            tree.insert(rect, index)
        tree.check_invariants()

"""Tests for the durable write subsystem (``repro.writes``).

Unit coverage for the write-ahead journal (record framing, checksums, torn
tails, truncation, fsync policies), the edit-op registry, and the write
coordinator driven through a real :class:`GraphVizDBService` — including the
crash contract: an acknowledged edit survives losing the worker's memory,
because the next open replays the journal tail.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.config import GraphVizDBConfig, WriteConfig
from repro.core.editing import GraphEditor
from repro.errors import (
    ConfigurationError,
    DatasetReadOnlyError,
    JournalError,
    QueryError,
    UnknownEditError,
)
from repro.faults import FaultInjected, FaultPlan, FaultRule
from repro.graph.model import Graph
from repro.layout.base import Layout
from repro.service.frontend import GraphVizDBService, ServiceRuntime
from repro.spatial.geometry import Point
from repro.storage.database import GraphVizDatabase
from repro.storage.schema import rows_from_graph
from repro.storage.sqlite_backend import (
    load_from_sqlite,
    read_meta_value,
    save_to_sqlite,
)
from repro.writes.journal import (
    CHECKPOINT_META_KEY,
    WriteAheadJournal,
    encode_journal_frame,
    journal_path_for,
    read_journal_records,
    read_journal_tail,
    replay_journal,
    unreplayed_count,
    verify_journal,
)
from repro.writes.ops import EDIT_OPS, apply_edit


def _square_database(name: str = "editable") -> GraphVizDatabase:
    """A 4-node square graph database, layer 0 only (freshly built per call)."""
    graph = Graph(directed=True, name=name)
    for node_id, label in ((1, "Alice"), (2, "Bob"), (3, "Carol"), (4, "Dave")):
        graph.add_node(node_id, label=label)
    graph.add_edge(1, 2, label="knows")
    graph.add_edge(2, 3, label="knows")
    graph.add_edge(3, 4, label="likes")
    layout = Layout({
        1: Point(0.0, 0.0), 2: Point(10.0, 0.0),
        3: Point(10.0, 10.0), 4: Point(0.0, 10.0),
    })
    database = GraphVizDatabase(name=name)
    database.load_layer(0, rows_from_graph(graph, layout))
    return database


class TestWriteConfig:
    def test_defaults_valid(self):
        config = WriteConfig()
        assert config.journal_enabled and config.journal_fsync == "batch"

    @pytest.mark.parametrize("kwargs", [
        {"journal_fsync": "sometimes"},
        {"journal_fsync_batch": 0},
        {"checkpoint_every_records": -1},
        {"max_record_bytes": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WriteConfig(**kwargs)


class TestJournal:
    def test_append_and_read_round_trip(self, tmp_path):
        journal = WriteAheadJournal(tmp_path / "j.journal")
        seq1, _ = journal.append("add_node", {"node_id": 9, "x": 1.0, "y": 2.0})
        seq2, _ = journal.append("delete_edge", {"source": 1, "target": 2})
        assert (seq1, seq2) == (1, 2)
        journal.close()
        records = read_journal_records(tmp_path / "j.journal")
        assert [record.seq for record in records] == [1, 2]
        assert records[0].op == "add_node"
        assert records[0].args == {"node_id": 9, "x": 1.0, "y": 2.0}

    def test_sequence_resumes_after_reopen(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = WriteAheadJournal(path)
        journal.append("repack", {})
        journal.close()
        reopened = WriteAheadJournal(path)
        seq, _ = reopened.append("repack", {})
        assert seq == 2
        assert len(reopened) == 2

    def test_torn_tail_is_discarded_silently(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = WriteAheadJournal(path)
        journal.append("repack", {"n": 1})
        journal.append("repack", {"n": 2})
        journal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # crash mid-append of the final record
        records = read_journal_records(path)
        assert [record.args["n"] for record in records] == [1]
        # And a journal opened over the torn file resumes after the last
        # *complete* record.
        reopened = WriteAheadJournal(path)
        assert reopened.next_seq == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = WriteAheadJournal(path)
        journal.append("repack", {"n": 1})
        journal.append("repack", {"n": 2})
        journal.close()
        data = bytearray(path.read_bytes())
        data[25] ^= 0xFF  # flip a byte inside the first record's payload
        path.write_bytes(bytes(data))
        with pytest.raises(JournalError):
            read_journal_records(path)

    def test_truncate_through_keeps_later_records(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = WriteAheadJournal(path)
        for n in range(1, 5):
            journal.append("repack", {"n": n})
        assert journal.truncate_through(2) == 2
        records = read_journal_records(path)
        assert [record.seq for record in records] == [3, 4]
        # Appends continue with the original sequence.
        seq, _ = journal.append("repack", {"n": 5})
        assert seq == 5
        journal.close()

    def test_fsync_policies(self, tmp_path):
        always = WriteAheadJournal(tmp_path / "a.journal", fsync="always")
        assert always.append("repack", {})[1] is True
        always.close()
        batch = WriteAheadJournal(
            tmp_path / "b.journal", fsync="batch", fsync_batch=2
        )
        assert batch.append("repack", {})[1] is False
        assert batch.append("repack", {})[1] is True  # batch boundary
        batch.close()
        never = WriteAheadJournal(tmp_path / "n.journal", fsync="never")
        assert never.append("repack", {})[1] is False
        never.close()
        with pytest.raises(JournalError):
            WriteAheadJournal(tmp_path / "x.journal", fsync="sometimes")

    def test_oversized_record_rejected_before_write(self, tmp_path):
        journal = WriteAheadJournal(tmp_path / "j.journal", max_record_bytes=64)
        with pytest.raises(JournalError):
            journal.append("relabel", {"label": "x" * 1000})
        assert len(journal) == 0
        journal.close()

    def test_journal_path_sits_next_to_dataset(self, tmp_path):
        assert journal_path_for(tmp_path / "ds.db") == tmp_path / "ds.db.journal"


class TestEditOps:
    def test_add_and_delete_node(self):
        database = _square_database()
        editor = GraphEditor(database)
        ack = apply_edit(editor, "add_node", {
            "node_id": 99, "label": "Newcomer", "x": 5.0, "y": 5.0,
        })
        row = database.table(0).get(ack["row_id"])
        assert row.is_node_row() and row.node1_label == "Newcomer"
        assert apply_edit(editor, "delete_node", {"node_id": 99}) == {
            "rows_removed": 1
        }
        assert database.table(0).rows_for_node(99) == []

    def test_add_node_rejects_existing_id(self):
        editor = GraphEditor(_square_database())
        with pytest.raises(QueryError):
            apply_edit(editor, "add_node", {"node_id": 1, "x": 0.0, "y": 0.0})

    def test_delete_node_removes_incident_edges(self):
        database = _square_database()
        editor = GraphEditor(database)
        removed = apply_edit(editor, "delete_node", {"node_id": 2})
        assert removed["rows_removed"] == 2  # 1->2 and 2->3
        assert database.table(0).rows_for_node(2) == []

    def test_move_relabel_add_delete_edge(self):
        database = _square_database()
        editor = GraphEditor(database)
        assert apply_edit(editor, "move_node", {
            "node_id": 2, "x": -5.0, "y": -5.0,
        })["rows_updated"] == 2  # edges 1->2 and 2->3
        assert database.table(0).node_position(2) == Point(-5.0, -5.0)
        assert apply_edit(editor, "relabel", {
            "node_id": 2, "label": "Roberto",
        })["rows_updated"] == 2
        ack = apply_edit(editor, "add_edge", {
            "source": 1, "target": 4, "label": "mentors",
        })
        assert database.table(0).get(ack["row_id"]).edge_label == "mentors"
        assert apply_edit(editor, "delete_edge", {
            "source": 1, "target": 4,
        })["rows_removed"] == 1
        assert apply_edit(editor, "repack", {})["changed"] is True

    def test_unknown_op_raises_with_catalogue(self):
        editor = GraphEditor(_square_database())
        with pytest.raises(UnknownEditError) as excinfo:
            apply_edit(editor, "frobnicate", {})
        assert set(excinfo.value.available) == set(EDIT_OPS)

    def test_string_arguments_are_coerced(self):
        """The HTTP layer hands JSON scalars through; strings must coerce."""
        editor = GraphEditor(_square_database())
        ack = apply_edit(editor, "add_node", {
            "node_id": "77", "label": "S", "x": "1.5", "y": "2.5",
        })
        assert editor.database.table(0).get(ack["row_id"]).node1_id == 77


@pytest.fixture
def served_sqlite(tmp_path):
    """A SQLite copy of the square dataset plus a service runtime over it."""
    path = tmp_path / "editable.db"
    save_to_sqlite(_square_database(), path)
    return path


def _service_runtime(path, **write_kwargs):
    config = GraphVizDBConfig(write=WriteConfig(**write_kwargs))
    service = GraphVizDBService(config)
    service.attach_sqlite("editable", str(path))
    return service, ServiceRuntime(service)


class TestWriteCoordinator:
    def test_ack_carries_seq_and_edit_counter(self, served_sqlite):
        service, runtime = _service_runtime(served_sqlite)
        try:
            ack = runtime.edit("editable", "add_node", {
                "node_id": 50, "label": "Journaled", "x": 3.0, "y": 3.0,
            })
            assert ack["seq"] == 1 and ack["edit_counter"] >= 1
            ack2 = runtime.edit("editable", "add_edge", {
                "source": 50, "target": 1,
            })
            assert ack2["seq"] == 2
            assert ack2["edit_counter"] > ack["edit_counter"]
            assert service.metrics.writes_applied == 2
            assert service.metrics.journal_appends == 2
        finally:
            runtime.close()
        assert len(read_journal_records(journal_path_for(served_sqlite))) == 2

    def test_acknowledged_edit_survives_losing_worker_memory(self, served_sqlite):
        _, runtime = _service_runtime(served_sqlite)
        try:
            runtime.edit("editable", "add_node", {
                "node_id": 60, "label": "survivor-probe", "x": 1.0, "y": 1.0,
            })
        finally:
            runtime.close()  # the in-memory tables die with the runtime
        # A brand new open (as after SIGKILL: only disk survives) must show
        # the acknowledged edit once the journal tail replays.
        database = load_from_sqlite(served_sqlite)
        assert database.table(0).rows_for_node(60) == []  # not in the save...
        assert replay_journal(database, served_sqlite) == 1
        rows = database.table(0).rows_for_node(60)
        assert rows and rows[0].node1_label == "survivor-probe"

    def test_pool_open_replays_automatically(self, served_sqlite):
        _, runtime = _service_runtime(served_sqlite)
        try:
            runtime.edit("editable", "relabel", {"node_id": 1, "label": "Replayed"})
        finally:
            runtime.close()
        service2, runtime2 = _service_runtime(served_sqlite)
        try:
            result = runtime2.keyword_search("editable", "Replayed")
            assert result.num_matches == 1
            assert service2.metrics.journal_replayed_records == 1
        finally:
            runtime2.close()

    def test_failed_edit_is_skipped_on_replay(self, served_sqlite):
        _, runtime = _service_runtime(served_sqlite)
        try:
            with pytest.raises(QueryError):
                runtime.edit("editable", "delete_node", {"node_id": 424242})
            runtime.edit("editable", "add_node", {
                "node_id": 61, "label": "after-failure", "x": 0.0, "y": 0.0,
            })
        finally:
            runtime.close()
        # The failed op was journalled (journal-before-validate) but replay
        # skips it the same deterministic way the live apply failed.
        assert len(read_journal_records(journal_path_for(served_sqlite))) == 2
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 1
        assert database.table(0).rows_for_node(61)

    def test_checkpoint_truncates_and_sets_watermark(self, served_sqlite):
        service, runtime = _service_runtime(
            served_sqlite, checkpoint_every_records=3
        )
        try:
            for index in range(3):
                runtime.edit("editable", "add_node", {
                    "node_id": 70 + index, "label": f"cp{index}",
                    "x": float(index), "y": 20.0,
                })
            deadline = 100
            while service.metrics.checkpoint_runs == 0 and deadline:
                import time

                time.sleep(0.02)
                deadline -= 1
            assert service.metrics.checkpoint_runs >= 1
        finally:
            runtime.close()
        assert read_meta_value(served_sqlite, CHECKPOINT_META_KEY) == "3"
        assert unreplayed_count(served_sqlite) == 0
        # The checkpointed save carries the edits; replay must not double-apply.
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 0
        for index in range(3):
            assert len(database.table(0).rows_for_node(70 + index)) == 1

    def test_replay_skips_records_at_or_below_watermark(self, served_sqlite):
        """A crash between checkpoint-save and truncation cannot double-apply."""
        _, runtime = _service_runtime(served_sqlite)
        try:
            runtime.edit("editable", "add_node", {
                "node_id": 80, "label": "pre-watermark", "x": 0.0, "y": 30.0,
            })
        finally:
            runtime.close()
        # Simulate the torn checkpoint: the save (with watermark) committed,
        # but the journal truncation never ran.
        database = load_from_sqlite(served_sqlite)
        replay_journal(database, served_sqlite)
        save_to_sqlite(database, served_sqlite, extra_meta={CHECKPOINT_META_KEY: "1"})
        assert len(read_journal_records(journal_path_for(served_sqlite))) == 1
        fresh = load_from_sqlite(served_sqlite)
        assert replay_journal(fresh, served_sqlite) == 0  # skipped, not re-applied
        assert len(fresh.table(0).rows_for_node(80)) == 1

    def test_journal_disabled_applies_in_memory_only(self, served_sqlite):
        _, runtime = _service_runtime(served_sqlite, journal_enabled=False)
        try:
            ack = runtime.edit("editable", "add_node", {
                "node_id": 90, "label": "volatile", "x": 0.0, "y": 40.0,
            })
            assert ack["seq"] == 0  # unjournalled
        finally:
            runtime.close()
        assert not journal_path_for(served_sqlite).exists()

    def test_memory_dataset_edits_without_journal(self):
        database = _square_database()
        service = GraphVizDBService(GraphVizDBConfig())
        service.register_dataset("mem", database)
        with ServiceRuntime(service) as runtime:
            ack = runtime.edit("mem", "add_node", {
                "node_id": 95, "label": "in-memory", "x": 2.0, "y": 2.0,
            })
            assert ack["seq"] == 0 and ack["edit_counter"] == 1
        assert database.table(0).rows_for_node(95)

    def test_concurrent_edits_serialise_per_dataset(self, served_sqlite):
        import threading

        _, runtime = _service_runtime(served_sqlite)
        errors: list[Exception] = []
        try:
            def writer(base: int) -> None:
                try:
                    for offset in range(5):
                        runtime.edit("editable", "add_node", {
                            "node_id": base + offset, "label": f"c{base + offset}",
                            "x": float(base), "y": float(offset),
                        })
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=writer, args=(1000 * (i + 1),))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors[:2]
        finally:
            runtime.close()
        records = read_journal_records(journal_path_for(served_sqlite))
        assert len(records) == 20
        # Strictly increasing sequence: the per-dataset lock serialised them.
        assert [record.seq for record in records] == list(range(1, 21))
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 20


class TestReplayRecordFormat:
    def test_replay_respects_layer_argument(self, tmp_path):
        database = _square_database()
        path = tmp_path / "layered.db"
        save_to_sqlite(database, path)
        journal = WriteAheadJournal(journal_path_for(path))
        journal.append("add_node", {"node_id": 88, "label": "L0", "x": 1.0, "y": 1.0})
        journal.close()
        loaded = load_from_sqlite(path)
        assert replay_journal(loaded, path) == 1
        assert loaded.table(0).rows_for_node(88)

    def test_replay_disabled_by_config(self, tmp_path):
        database = _square_database()
        path = tmp_path / "off.db"
        save_to_sqlite(database, path)
        journal = WriteAheadJournal(journal_path_for(path))
        journal.append("add_node", {"node_id": 88, "label": "L0", "x": 1.0, "y": 1.0})
        journal.close()
        loaded = load_from_sqlite(path)
        config = WriteConfig(journal_enabled=False)
        assert replay_journal(loaded, path, write_config=config) == 0
        assert loaded.table(0).rows_for_node(88) == []

    def test_record_payload_is_json(self, tmp_path):
        """The on-disk payload stays human-debuggable JSON."""
        path = tmp_path / "j.journal"
        journal = WriteAheadJournal(path)
        journal.append("add_edge", {"source": 1, "target": 2})
        journal.close()
        raw = path.read_bytes()
        payload = raw[20:]  # 4-byte length + 16-byte digest
        decoded = json.loads(payload)
        assert decoded == {
            "seq": 1, "op": "add_edge", "args": {"source": 1, "target": 2},
        }


@pytest.fixture
def inject_faults():
    """Install a fault plan for one test; always cleared afterwards."""

    def _install(*rules: FaultRule, seed: int = 0) -> FaultPlan:
        return faults.install(FaultPlan(list(rules), seed=seed))

    yield _install
    faults.clear()


class TestCrashConsistency:
    """Registry-injected crash windows: torn appends, dead fsyncs, checkpoint
    crashes.  The invariants under test: an *acknowledged* edit always
    replays, an *unacknowledged* one never does, and a checkpoint crash can
    neither lose nor double-apply records."""

    def test_torn_append_enters_read_only_and_keeps_acked_records(
        self, served_sqlite, inject_faults
    ):
        inject_faults(FaultRule(point="journal.append", action="torn", nth=3))
        service, runtime = _service_runtime(served_sqlite)
        try:
            for index in (1, 2):
                runtime.edit("editable", "add_node", {
                    "node_id": 100 + index, "label": f"t{index}",
                    "x": float(index), "y": 60.0,
                })
            with pytest.raises(DatasetReadOnlyError):
                runtime.edit("editable", "add_node", {
                    "node_id": 103, "label": "t3", "x": 3.0, "y": 60.0,
                })
            # Fail-stop: the dataset stops accepting writes entirely...
            with pytest.raises(DatasetReadOnlyError):
                runtime.edit("editable", "relabel", {
                    "node_id": 101, "label": "nope",
                })
            # ...but reads keep serving, and health reports the degradation.
            assert runtime.keyword_search("editable", "t1").num_matches == 1
            assert service.writes.read_only_datasets() == ["editable"]
            assert service.health_snapshot()["read_only"] == ["editable"]
            assert service.metrics.read_only_transitions == 1
            assert service.metrics.read_only_rejections == 2
        finally:
            runtime.close()
        # The torn half-frame is a discarded tail, exactly like a real crash
        # mid-write; both acknowledged records replay, the torn one never.
        records = read_journal_records(journal_path_for(served_sqlite))
        assert [record.args["node_id"] for record in records] == [101, 102]
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 2
        assert database.table(0).rows_for_node(103) == []

    def test_failed_fsync_rolls_back_the_unacked_record(
        self, served_sqlite, inject_faults
    ):
        inject_faults(FaultRule(point="journal.fsync", nth=2))
        _, runtime = _service_runtime(served_sqlite, journal_fsync="always")
        try:
            runtime.edit("editable", "add_node", {
                "node_id": 110, "label": "synced", "x": 0.0, "y": 61.0,
            })
            with pytest.raises(DatasetReadOnlyError):
                runtime.edit("editable", "add_node", {
                    "node_id": 111, "label": "unsynced", "x": 1.0, "y": 61.0,
                })
        finally:
            runtime.close()
        # The record whose fsync failed was never acknowledged; it must be
        # rolled back from the file so replay cannot resurrect it.
        records = read_journal_records(journal_path_for(served_sqlite))
        assert [record.args["node_id"] for record in records] == [110]
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 1
        assert database.table(0).rows_for_node(111) == []

    def test_crash_before_checkpoint_save_keeps_full_replay(
        self, served_sqlite, inject_faults
    ):
        service, runtime = _service_runtime(served_sqlite)
        try:
            for index in range(3):
                runtime.edit("editable", "add_node", {
                    "node_id": 120 + index, "label": f"cs{index}",
                    "x": float(index), "y": 62.0,
                })
            entry = service.pool.peek(served_sqlite)
            inject_faults(FaultRule(point="checkpoint.save", times=1))
            with pytest.raises(FaultInjected):
                service.writes.checkpoint_sync(
                    "editable", entry.database, served_sqlite
                )
            # No watermark, nothing truncated: the journal still carries
            # every acknowledged edit for the next open to replay.
            assert read_meta_value(served_sqlite, CHECKPOINT_META_KEY) is None
            assert unreplayed_count(served_sqlite) == 3
            # The crash consumed the one-shot rule; the retried checkpoint
            # succeeds.
            assert service.writes.checkpoint_sync(
                "editable", entry.database, served_sqlite
            ) == 0
            assert read_meta_value(served_sqlite, CHECKPOINT_META_KEY) == "3"
        finally:
            runtime.close()
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 0
        for index in range(3):
            assert len(database.table(0).rows_for_node(120 + index)) == 1

    def test_crash_between_save_and_truncate_cannot_double_apply(
        self, served_sqlite, inject_faults
    ):
        service, runtime = _service_runtime(served_sqlite)
        try:
            for index in range(2):
                runtime.edit("editable", "add_node", {
                    "node_id": 130 + index, "label": f"ct{index}",
                    "x": float(index), "y": 63.0,
                })
            entry = service.pool.peek(served_sqlite)
            inject_faults(FaultRule(point="checkpoint.truncate", times=1))
            with pytest.raises(FaultInjected):
                service.writes.checkpoint_sync(
                    "editable", entry.database, served_sqlite
                )
        finally:
            runtime.close()
        # The save (watermark included) committed, the truncation never ran —
        # the classic double-apply window.  Replay must skip everything at or
        # below the watermark.
        assert read_meta_value(served_sqlite, CHECKPOINT_META_KEY) == "2"
        assert len(read_journal_records(journal_path_for(served_sqlite))) == 2
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 0
        for index in range(2):
            assert len(database.table(0).rows_for_node(130 + index)) == 1

    def test_sigkill_during_checkpoint_save_in_live_worker(
        self, served_sqlite, inject_faults
    ):
        """End-to-end: a checkpoint that dies mid-save loses nothing.

        The background checkpoint hits an injected ``checkpoint.save`` fault
        (the in-process stand-in for dying there); the journal keeps every
        acknowledged record and the failure is counted, not raised into the
        edit path.
        """
        inject_faults(FaultRule(point="checkpoint.save", times=1))
        service, runtime = _service_runtime(
            served_sqlite, checkpoint_every_records=2
        )
        try:
            for index in range(2):
                runtime.edit("editable", "add_node", {
                    "node_id": 140 + index, "label": f"kc{index}",
                    "x": float(index), "y": 64.0,
                })
            deadline = 100
            import time as time_module

            while service.metrics.checkpoint_failures == 0 and deadline:
                time_module.sleep(0.02)
                deadline -= 1
            assert service.metrics.checkpoint_failures == 1
        finally:
            runtime.close()
        assert read_meta_value(served_sqlite, CHECKPOINT_META_KEY) is None
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 2


class TestIdempotency:
    def test_duplicate_key_applies_once_and_returns_original_ack(
        self, served_sqlite
    ):
        service, runtime = _service_runtime(served_sqlite)
        try:
            ack = runtime.edit(
                "editable", "add_node",
                {"node_id": 150, "label": "once", "x": 0.0, "y": 65.0},
                idempotency_key="edit-150",
            )
            assert "deduplicated" not in ack
            duplicate = runtime.edit(
                "editable", "add_node",
                {"node_id": 150, "label": "once", "x": 0.0, "y": 65.0},
                idempotency_key="edit-150",
            )
            assert duplicate["deduplicated"] is True
            assert duplicate["seq"] == ack["seq"]
            assert service.metrics.writes_deduplicated == 1
            assert service.metrics.writes_applied == 1
        finally:
            runtime.close()
        # Exactly one journal record; exactly one applied row.
        records = read_journal_records(journal_path_for(served_sqlite))
        assert len(records) == 1 and records[0].args["idem"] == "edit-150"
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 1
        assert len(database.table(0).rows_for_node(150)) == 1

    def test_dedup_survives_process_restart_via_journal(self, served_sqlite):
        """The failover shape: the retry lands on a *fresh* coordinator."""
        _, runtime = _service_runtime(served_sqlite)
        try:
            runtime.edit(
                "editable", "add_node",
                {"node_id": 160, "label": "failover-once", "x": 0.0, "y": 66.0},
                idempotency_key="edit-160",
            )
        finally:
            runtime.close()
        # A new process (as after an owner crash + failover) replays the
        # journal on open and seeds its dedup map from the records — the
        # retried edit must be suppressed even though this coordinator never
        # applied it live.
        service2, runtime2 = _service_runtime(served_sqlite)
        try:
            retried = runtime2.edit(
                "editable", "add_node",
                {"node_id": 160, "label": "failover-once", "x": 0.0, "y": 66.0},
                idempotency_key="edit-160",
            )
            assert retried["deduplicated"] is True
            assert service2.metrics.writes_deduplicated == 1
            assert runtime2.keyword_search(
                "editable", "failover-once"
            ).num_matches == 1
        finally:
            runtime2.close()
        assert len(read_journal_records(journal_path_for(served_sqlite))) == 1

    def test_distinct_keys_do_not_dedup(self, served_sqlite):
        _, runtime = _service_runtime(served_sqlite)
        try:
            first = runtime.edit(
                "editable", "add_node",
                {"node_id": 170, "label": "a", "x": 0.0, "y": 67.0},
                idempotency_key="key-a",
            )
            second = runtime.edit(
                "editable", "add_node",
                {"node_id": 171, "label": "b", "x": 1.0, "y": 67.0},
                idempotency_key="key-b",
            )
            assert "deduplicated" not in second
            assert second["seq"] == first["seq"] + 1
        finally:
            runtime.close()

    def test_replay_strips_idem_key_from_op_args(self, served_sqlite):
        """The persisted ``idem`` marker must never reach the edit op."""
        _, runtime = _service_runtime(served_sqlite)
        try:
            runtime.edit(
                "editable", "add_node",
                {"node_id": 180, "label": "strip", "x": 0.0, "y": 68.0},
                idempotency_key="edit-180",
            )
        finally:
            runtime.close()
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 1  # no TypeError
        assert len(database.table(0).rows_for_node(180)) == 1


class TestReplayRobustness:
    """Regressions: journalled-but-rejected edits must never brick an open."""

    def test_malformed_record_is_skipped_not_fatal(self, served_sqlite):
        _, runtime = _service_runtime(served_sqlite)
        try:
            # Each of these was journalled (journal-before-validate) and then
            # rejected by the live apply with a client-error status.
            with pytest.raises(KeyError):
                runtime.edit("editable", "add_node", {})  # missing args
            with pytest.raises(Exception):
                runtime.edit("editable", "frobnicate", {})  # unknown op
            with pytest.raises(ValueError):
                runtime.edit("editable", "add_node", {
                    "node_id": "nope", "x": "a", "y": "b",
                })  # uncoercible args
            runtime.edit("editable", "add_node", {
                "node_id": 64, "label": "after-garbage", "x": 0.0, "y": 0.0,
            })
        finally:
            runtime.close()
        assert len(read_journal_records(journal_path_for(served_sqlite))) == 4
        # Replay skips every rejected record exactly as the live apply did,
        # and the open (the pool path) survives.
        database = load_from_sqlite(served_sqlite)
        assert replay_journal(database, served_sqlite) == 1
        assert database.table(0).rows_for_node(64)
        service2, runtime2 = _service_runtime(served_sqlite)
        try:
            assert runtime2.keyword_search("editable", "after-garbage").num_matches == 1
        finally:
            runtime2.close()

    def test_sequence_resumes_above_checkpoint_watermark(self, served_sqlite):
        """A post-checkpoint fresh process must not reuse checkpointed seqs."""
        # Process 1: three edits, then a checkpoint (watermark 3, journal
        # truncated to empty).
        service, runtime = _service_runtime(served_sqlite)
        try:
            for index in range(3):
                runtime.edit("editable", "add_node", {
                    "node_id": 40 + index, "label": f"w{index}",
                    "x": float(index), "y": 50.0,
                })
            database = load_from_sqlite(served_sqlite)  # peek is irrelevant:
            # run the checkpoint through the coordinator directly.
            entry = service.pool.peek(served_sqlite)
            assert service.writes.checkpoint_sync(
                "editable", entry.database, served_sqlite
            ) == 0
        finally:
            runtime.close()
        assert read_meta_value(served_sqlite, CHECKPOINT_META_KEY) == "3"
        assert len(read_journal_records(journal_path_for(served_sqlite))) == 0

        # Process 2 (fresh coordinator, fresh journal object over the empty
        # file): its acknowledged edit must get seq 4, not seq 1.
        _, runtime2 = _service_runtime(served_sqlite)
        try:
            ack = runtime2.edit("editable", "add_node", {
                "node_id": 49, "label": "post-checkpoint", "x": 9.0, "y": 50.0,
            })
            assert ack["seq"] == 4
        finally:
            runtime2.close()
        # Process 3 (the SIGKILL survivor): replay must apply it.
        fresh = load_from_sqlite(served_sqlite)
        assert replay_journal(fresh, served_sqlite) == 1
        assert fresh.table(0).rows_for_node(49)


class TestJournalTailAndVerify:
    """The replication feed frame and the operator-facing integrity scan."""

    def _journal(self, tmp_path, count: int = 4):
        path = tmp_path / "feed.journal"
        journal = WriteAheadJournal(path)
        for n in range(1, count + 1):
            journal.append("repack", {"n": n})
        journal.close()
        return path

    def test_tail_pages_past_a_cursor_and_reports_the_head(self, tmp_path):
        path = self._journal(tmp_path, count=5)
        frame = read_journal_tail(path, from_seq=2, max_records=2)
        assert [r["seq"] for r in frame["records"]] == [3, 4]
        assert frame["last_seq"] == 5  # the head, even though the frame is capped
        assert frame["floor_seq"] == 1
        # An up-to-date cursor gets an empty frame, same head.
        drained = read_journal_tail(path, from_seq=5)
        assert drained["records"] == [] and drained["last_seq"] == 5

    def test_tail_digests_match_the_canonical_frame_encoding(self, tmp_path):
        path = self._journal(tmp_path, count=2)
        for entry in read_journal_tail(path)["records"]:
            frame = encode_journal_frame(entry["seq"], entry["op"], entry["args"])
            # frame = [length:4][digest:16][payload]
            assert frame[4:20].hex() == entry["digest"]

    def test_tail_floor_rises_after_truncation(self, tmp_path):
        path = self._journal(tmp_path, count=4)
        journal = WriteAheadJournal(path)
        journal.truncate_through(2)
        journal.close()
        frame = read_journal_tail(path, from_seq=0)
        assert frame["floor_seq"] == 3  # a cursor below this must resync

    def test_verify_clean_journal(self, tmp_path):
        report = verify_journal(self._journal(tmp_path, count=3))
        assert report["records"] == 3
        assert (report["first_seq"], report["last_good_seq"]) == (1, 3)
        assert not report["torn_tail"] and not report["corrupt"]
        assert report["error"] is None

    def test_verify_reports_torn_tail_as_benign(self, tmp_path):
        path = self._journal(tmp_path, count=3)
        path.write_bytes(path.read_bytes()[:-5])  # crash mid-append
        report = verify_journal(path)
        assert report["torn_tail"] and not report["corrupt"]
        assert report["last_good_seq"] == 2
        assert report["torn_bytes"] > 0

    def test_verify_reports_mid_file_corruption(self, tmp_path):
        path = self._journal(tmp_path, count=3)
        data = bytearray(path.read_bytes())
        data[25] ^= 0xFF  # flip a byte inside the first record's payload
        path.write_bytes(bytes(data))
        report = verify_journal(path)
        assert report["corrupt"] and not report["torn_tail"]
        assert "corruption" in report["error"] or "checksum" in report["error"]

    def test_verify_missing_journal(self, tmp_path):
        report = verify_journal(tmp_path / "never.journal")
        assert report["exists"] is False and report["records"] == 0
        assert not report["corrupt"]

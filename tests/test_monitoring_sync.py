"""Unit tests for query monitoring and cross-layer edit synchronisation."""

from __future__ import annotations

import pytest

from repro.core.monitoring import QueryLog
from repro.core.pipeline import PreprocessingPipeline
from repro.core.query_manager import QueryManager
from repro.core.session import ExplorationSession
from repro.core.sync import LayerSynchronizer
from repro.graph.generators import patent_like
from repro.spatial.geometry import Point


@pytest.fixture(scope="module")
def patent_result(request):
    """A private preprocessed dataset: the sync tests mutate the database, so the
    shared session-scoped fixture must not be used here."""
    config = request.getfixturevalue("small_config")
    graph = patent_like(num_patents=250, seed=9)
    return PreprocessingPipeline(config).run(graph)


class TestQueryLog:
    def test_empty_log_summary(self):
        log = QueryLog()
        summary = log.summary()
        assert summary["num_window_queries"] == 0
        assert summary["average_objects_per_window"] == 0.0
        assert summary["server_latency_seconds"]["p50"] == 0.0

    def test_records_window_queries(self, patent_result):
        manager = QueryManager(patent_result.database)
        log = QueryLog()
        result = manager.viewport_query(manager.default_viewport())
        record = log.record_window(result)
        assert record.num_objects == result.num_objects
        assert record.layer == 0
        assert log.num_window_queries == 1
        assert log.queries_per_layer() == {0: 1}

    def test_session_integration(self, patent_result):
        log = QueryLog()
        session = ExplorationSession(QueryManager(patent_result.database), query_log=log)
        session.refresh()
        session.pan(200, 0)
        session.change_layer(session.available_layers()[-1])
        session.search("patent", limit=3)
        assert log.num_window_queries == 3
        assert log.num_keyword_queries == 1
        per_layer = log.queries_per_layer()
        assert per_layer[0] == 2
        assert sum(per_layer.values()) == 3

    def test_latency_percentiles_ordering(self, patent_result):
        log = QueryLog()
        session = ExplorationSession(QueryManager(patent_result.database), query_log=log)
        for _ in range(5):
            session.pan(150, 50)
        percentiles = log.latency_percentiles((0.5, 0.9, 0.99))
        assert percentiles[0.5] <= percentiles[0.9] <= percentiles[0.99]
        assert all(value >= 0 for value in percentiles.values())

    def test_invalid_percentile_raises(self, patent_result):
        log = QueryLog()
        session = ExplorationSession(QueryManager(patent_result.database), query_log=log)
        session.refresh()
        with pytest.raises(ValueError):
            log.latency_percentiles((1.5,))

    def test_summary_and_clear(self, patent_result):
        log = QueryLog()
        session = ExplorationSession(QueryManager(patent_result.database), query_log=log)
        session.refresh()
        summary = log.summary()
        assert summary["num_window_queries"] == 1
        assert summary["average_objects_per_window"] > 0
        log.clear()
        assert log.num_window_queries == 0


class TestLayerSynchronizer:
    @pytest.fixture
    def sync_setup(self, patent_result):
        database = patent_result.database
        hierarchy = patent_result.hierarchy
        # A node that survives to the top layer (filter layers keep ids).
        top_layer = hierarchy.num_layers - 1
        surviving = next(iter(hierarchy.layer(top_layer).graph.node_ids()))
        return database, hierarchy, surviving, top_layer

    def test_rename_propagates_to_all_layers_containing_node(self, sync_setup):
        database, hierarchy, node_id, top_layer = sync_setup
        synchronizer = LayerSynchronizer(database)
        report = synchronizer.rename_node(node_id, "renamed-everywhere")
        assert 0 in report.layers_touched
        assert top_layer in report.layers_touched
        for layer in report.layers_touched:
            matches = dict(database.table(layer).keyword_search("renamed everywhere"))
            assert node_id in matches

    def test_move_keeps_layers_spatially_consistent(self, sync_setup):
        database, hierarchy, node_id, top_layer = sync_setup
        synchronizer = LayerSynchronizer(database)
        target = Point(123456.0, 654321.0)
        report = synchronizer.move_node(node_id, target)
        assert report.total_rows > 0
        for layer in report.layers_touched:
            assert database.table(layer).node_position(node_id) == target

    def test_add_edge_only_where_both_endpoints_exist(self, sync_setup, patent_result):
        database, hierarchy, node_id, top_layer = sync_setup
        # Find a second node surviving at the top layer.
        other = next(
            n for n in hierarchy.layer(top_layer).graph.node_ids() if n != node_id
        )
        # And a node that exists only at layer 0 (filtered out of every layer above).
        upper_layers = [layer for layer in database.layers() if layer > 0]
        layer0_only = next(
            n for n in hierarchy.layer(0).graph.node_ids()
            if all(database.table(layer).node_position(n) is None for layer in upper_layers)
        )
        synchronizer = LayerSynchronizer(database)
        both_layers = synchronizer.add_edge(node_id, other, label="sync-link")
        assert top_layer in both_layers.layers_touched
        only_base = synchronizer.add_edge(node_id, layer0_only, label="base-link")
        assert only_base.layers_touched == [0]

    def test_delete_edge_across_layers(self, sync_setup):
        database, hierarchy, node_id, top_layer = sync_setup
        other = next(
            n for n in hierarchy.layer(top_layer).graph.node_ids() if n != node_id
        )
        synchronizer = LayerSynchronizer(database)
        synchronizer.add_edge(node_id, other, label="temporary")
        report = synchronizer.delete_edge(node_id, other)
        assert report.total_rows >= len(report.layers_touched)
        assert set(report.layers_touched) <= set(database.layers())

    def test_reports_accumulate(self, sync_setup):
        database, _, node_id, _ = sync_setup
        synchronizer = LayerSynchronizer(database)
        synchronizer.rename_node(node_id, "x")
        synchronizer.move_node(node_id, Point(1.0, 2.0))
        assert [report.operation for report in synchronizer.reports] == [
            "rename_node", "move_node",
        ]

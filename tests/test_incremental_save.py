"""Incremental ``save_to_sqlite``: unchanged layers are not rewritten."""

from __future__ import annotations

import pytest

from repro.core.editing import GraphEditor
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite


def _first_node_id(database, layer=0):
    return next(iter(database.table(layer).scan())).node1_id


class TestIncrementalSave:
    def test_first_save_writes_everything(self, patent_result, tmp_path):
        path = tmp_path / "fresh.db"
        summary = save_to_sqlite(patent_result.database, path)
        assert summary["written"] == patent_result.database.layers()
        assert summary["skipped"] == []

    def test_resave_unchanged_skips_every_layer(self, patent_result, tmp_path):
        path = tmp_path / "resave.db"
        save_to_sqlite(patent_result.database, path)
        summary = save_to_sqlite(patent_result.database, path)
        assert summary["written"] == []
        assert summary["skipped"] == patent_result.database.layers()

    def test_edit_rewrites_only_the_touched_layer(self, patent_result, tmp_path):
        path = tmp_path / "partial.db"
        save_to_sqlite(patent_result.database, path)
        database = load_from_sqlite(path)
        layers = database.layers()
        assert len(layers) >= 2
        editor = GraphEditor(database, layer=0)
        editor.rename_node(_first_node_id(database), "IncrementallyRenamed")
        summary = save_to_sqlite(database, path)
        assert summary["written"] == [0]
        assert summary["skipped"] == layers[1:]

    def test_round_trip_after_incremental_save(self, patent_result, tmp_path):
        path = tmp_path / "roundtrip.db"
        save_to_sqlite(patent_result.database, path)
        database = load_from_sqlite(path)
        editor = GraphEditor(database, layer=0)
        node_id = _first_node_id(database)
        editor.rename_node(node_id, "RoundTripped")
        save_to_sqlite(database, path)

        restored = load_from_sqlite(path)
        for layer in database.layers():
            assert list(restored.table(layer).scan()) == list(
                database.table(layer).scan()
            )
        # The rename is visible through the restored secondary indexes too.
        assert any(
            node == node_id for node, _ in restored.keyword_search(0, "RoundTripped")
        )

    def test_skip_requires_existing_table(self, patent_result, tmp_path):
        """A stale fingerprint without its table must not suppress the write."""
        import sqlite3

        path = tmp_path / "dropped.db"
        save_to_sqlite(patent_result.database, path)
        with sqlite3.connect(path) as connection:
            connection.execute("DROP TABLE layer_0")
        summary = save_to_sqlite(patent_result.database, path)
        assert 0 in summary["written"]
        restored = load_from_sqlite(path)
        assert restored.table(0).num_rows == patent_result.database.table(0).num_rows

    def test_skipped_layer_gets_page_after_repack(self, patent_result, tmp_path):
        """Save-while-demoted leaves no page; the next save tops it up.

        Regression for the incremental path: content-identical rows mean the
        layer is skipped, but a page that could not be written last time (the
        table was demoted) must still be written once the index is packed
        again.
        """
        import sqlite3

        from repro.spatial.packed_rtree import PackedRTree

        path = tmp_path / "toppedup.db"
        database = patent_result.database
        table = database.table(0)
        # Demote without changing content: insert + delete a probe row pair is
        # content-changing, so force the demotion directly instead.
        table.ensure_dynamic_index()
        save_to_sqlite(database, path)
        with sqlite3.connect(path) as connection:
            pages = connection.execute(
                "SELECT layer FROM layer_index_pages WHERE kind = 'packed_rtree'"
            ).fetchall()
        assert (0,) not in pages  # demoted layer saved without a spatial page

        assert table.repack() is True
        summary = save_to_sqlite(database, path)
        assert 0 in summary["skipped"]  # content unchanged...
        with sqlite3.connect(path) as connection:
            pages = connection.execute(
                "SELECT layer FROM layer_index_pages WHERE kind = 'packed_rtree'"
            ).fetchall()
        assert (0,) in pages  # ...but the page was still topped up

        restored = load_from_sqlite(path)
        assert isinstance(restored.table(0).rtree, PackedRTree)
        assert restored.table(0).window_query(
            table.bounds()
        ) == table.window_query(table.bounds())

"""Unit tests for coarsening, refinement and the multilevel partitioner."""

from __future__ import annotations

import pytest

from repro.errors import PartitioningError
from repro.graph.generators import community_graph, path_graph, star_graph
from repro.partition.coarsening import coarsen, contract, heavy_edge_matching
from repro.partition.multilevel import MultilevelPartitioner, create_partitioner
from repro.partition.quality import balance
from repro.partition.refinement import refine, refine_assignment
from repro.partition.simple import RandomPartitioner


class TestCoarsening:
    def test_matching_is_symmetric(self, communities):
        matching = heavy_edge_matching(communities, seed=1)
        for node, partner in matching.items():
            assert matching[partner] == node

    def test_matching_covers_all_nodes(self, communities):
        matching = heavy_edge_matching(communities, seed=1)
        assert set(matching) == set(communities.node_ids())

    def test_contract_halves_graph_roughly(self, communities):
        matching = heavy_edge_matching(communities, seed=1)
        level = contract(communities, matching)
        assert level.graph.num_nodes < communities.num_nodes
        assert level.graph.num_nodes >= communities.num_nodes / 2
        # Total node weight is conserved.
        total_weight = sum(
            level.graph.node(n).properties["weight"] for n in level.graph.node_ids()
        )
        assert total_weight == communities.num_nodes

    def test_contract_mapping_is_total(self, communities):
        matching = heavy_edge_matching(communities, seed=2)
        level = contract(communities, matching)
        assert set(level.fine_to_coarse) == set(communities.node_ids())
        assert set(level.fine_to_coarse.values()) == set(level.graph.node_ids())

    def test_coarsen_reaches_target(self):
        graph = community_graph(num_communities=4, community_size=40, seed=2)
        levels = coarsen(graph, target_nodes=30, seed=1)
        assert levels
        assert levels[-1].graph.num_nodes <= max(30, graph.num_nodes // 2)

    def test_coarsen_star_terminates(self):
        # A star has almost no matching structure; coarsening must still stop.
        graph = star_graph(50)
        levels = coarsen(graph, target_nodes=5, max_levels=30, seed=0)
        assert len(levels) <= 30


class TestRefinement:
    def test_refinement_never_increases_cut(self, communities):
        initial = RandomPartitioner(seed=3).partition(communities, 4)
        refined = refine(initial)
        assert refined.edge_cut() <= initial.edge_cut()

    def test_refinement_improves_random_partition_on_communities(self, communities):
        initial = RandomPartitioner(seed=3).partition(communities, 4)
        refined = refine(initial, max_passes=6)
        assert refined.edge_cut() < initial.edge_cut()

    def test_refine_assignment_respects_balance(self, communities):
        assignment = {node_id: node_id % 4 for node_id in communities.node_ids()}
        refined = refine_assignment(communities, assignment, 4, balance_factor=1.1)
        sizes = [0, 0, 0, 0]
        for part in refined.values():
            sizes[part] += 1
        ideal = communities.num_nodes / 4
        assert max(sizes) <= 1.1 * ideal + 1

    def test_refine_assignment_never_empties_partition(self):
        graph = path_graph(10)
        assignment = {node_id: (0 if node_id < 9 else 1) for node_id in graph.node_ids()}
        refined = refine_assignment(graph, assignment, 2, balance_factor=10.0)
        assert set(refined.values()) == {0, 1}


class TestMultilevelPartitioner:
    def test_produces_valid_partition(self, communities):
        result = MultilevelPartitioner(seed=1).partition(communities, 4)
        assert result.num_partitions == 4
        assert set(result.assignment) == set(communities.node_ids())
        assert all(size > 0 for size in result.partition_sizes())

    def test_beats_random_on_community_graph(self):
        graph = community_graph(num_communities=6, community_size=30, inter_edges=4, seed=9)
        multilevel_cut = MultilevelPartitioner(seed=1).partition(graph, 6).edge_cut()
        random_cut = RandomPartitioner(seed=1).partition(graph, 6).edge_cut()
        assert multilevel_cut < random_cut / 2

    def test_respects_balance(self, communities):
        result = MultilevelPartitioner(seed=1, balance_factor=1.1).partition(communities, 4)
        assert balance(result) <= 1.6  # generous bound; includes projection slack

    def test_k_equals_one(self, communities):
        result = MultilevelPartitioner().partition(communities, 1)
        assert result.edge_cut() == 0
        assert result.partition_sizes() == [communities.num_nodes]

    def test_k_larger_than_nodes_is_clamped(self):
        graph = path_graph(3)
        result = MultilevelPartitioner().partition(graph, 8)
        assert result.num_partitions == 3

    def test_deterministic_given_seed(self, communities):
        first = MultilevelPartitioner(seed=5).partition(communities, 3)
        second = MultilevelPartitioner(seed=5).partition(communities, 3)
        assert first.assignment == second.assignment

    def test_small_graph_directly_partitioned(self):
        graph = path_graph(6)
        result = MultilevelPartitioner(coarsen_target=100).partition(graph, 2)
        assert result.num_partitions == 2
        assert all(size > 0 for size in result.partition_sizes())


class TestFactory:
    def test_create_each_method(self):
        for method in ["multilevel", "bfs", "random", "hash"]:
            assert create_partitioner(method).name == method

    def test_unknown_method_raises(self):
        with pytest.raises(PartitioningError):
            create_partitioner("metis")

"""Unit tests for the benchmark harness (workloads, aggregation, runners, reports)."""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_comparison, format_figure3, format_table1
from repro.bench.runner import (
    Figure3Series,
    Table1Result,
    build_benchmark_datasets,
    run_figure3,
    run_table1,
)
from repro.bench.timing import aggregate_timings
from repro.bench.workloads import PAPER_WINDOW_SIZES, random_windows, window_size_sweep
from repro.client.simulator import InteractionTiming
from repro.config import AbstractionConfig, GraphVizDBConfig, LayoutConfig, PartitionConfig
from repro.spatial.geometry import Rect


@pytest.fixture(scope="module")
def tiny_config() -> GraphVizDBConfig:
    return GraphVizDBConfig(
        partition=PartitionConfig(max_partition_nodes=100),
        layout=LayoutConfig(iterations=10),
        abstraction=AbstractionConfig(num_layers=1),
    )


class TestWorkloads:
    def test_paper_window_sizes(self):
        assert PAPER_WINDOW_SIZES == (200, 1500, 2000, 2500, 3000)

    def test_random_windows_within_bounds(self):
        bounds = Rect(0, 0, 10_000, 10_000)
        windows = random_windows(bounds, 500, count=50, seed=1)
        assert len(windows) == 50
        for window in windows:
            assert window.width == pytest.approx(500)
            assert bounds.contains_rect(window)

    def test_random_windows_deterministic(self):
        bounds = Rect(0, 0, 5000, 5000)
        assert random_windows(bounds, 300, count=5, seed=9) == random_windows(
            bounds, 300, count=5, seed=9
        )

    def test_window_larger_than_drawing_centers_on_it(self):
        bounds = Rect(0, 0, 100, 100)
        windows = random_windows(bounds, 1000, count=3, seed=2)
        for window in windows:
            assert window.center.x == pytest.approx(50)
            assert window.center.y == pytest.approx(50)

    def test_window_size_sweep(self, patent_result):
        workloads = window_size_sweep(
            patent_result.database, window_sizes=(200, 1000), queries_per_size=10
        )
        assert [w.window_size for w in workloads] == [200, 1000]
        assert all(w.num_queries == 10 for w in workloads)


class TestAggregation:
    def test_aggregate_timings_means(self):
        timings = [
            InteractionTiming(0.010, 0.002, 0.1, 50, 30, 20, 1000),
            InteractionTiming(0.020, 0.004, 0.3, 150, 90, 60, 3000),
        ]
        aggregate = aggregate_timings(2500, timings)
        assert aggregate.window_size == 2500
        assert aggregate.num_queries == 2
        assert aggregate.db_query_ms == pytest.approx(15.0)
        assert aggregate.json_build_ms == pytest.approx(3.0)
        assert aggregate.communication_rendering_ms == pytest.approx(200.0)
        assert aggregate.total_ms == pytest.approx(218.0)
        assert aggregate.avg_objects == pytest.approx(100.0)

    def test_aggregate_empty_list(self):
        aggregate = aggregate_timings(200, [])
        assert aggregate.num_queries == 0
        assert aggregate.total_ms == 0.0


class TestRunners:
    def test_build_benchmark_datasets(self):
        datasets = build_benchmark_datasets(scale=0.1)
        assert set(datasets) == {"wikidata-like", "patent-like"}
        assert all(graph.num_nodes > 0 for graph in datasets.values())

    def test_run_table1_produces_rows(self, tiny_config):
        datasets = {
            name: graph for name, graph in build_benchmark_datasets(scale=0.08).items()
        }
        result = run_table1(datasets=datasets, config=tiny_config)
        rows = result.rows()
        assert len(rows) == 2
        for row in rows:
            assert all(row[f"step{step}_s"] >= 0 for step in range(1, 6))
            assert row["total_s"] > 0
            assert row["parallel_step5_s"] <= row["step5_s"] + 1e-9

    def test_run_figure3_series_shape(self, patent_result):
        series = run_figure3(
            patent_result,
            "patent-like",
            window_sizes=(400, 1200),
            queries_per_size=5,
        )
        assert series.window_sizes() == [400, 1200]
        totals = series.series("total_ms")
        objects = series.series("avg_objects")
        assert len(totals) == 2
        # Larger windows contain at least as many objects on average.
        assert objects[1] >= objects[0]

    def test_reports_formatting(self, patent_result):
        series = run_figure3(
            patent_result, "patent-like", window_sizes=(500,), queries_per_size=3
        )
        text = format_figure3(series)
        assert "patent-like" in text
        assert "500^2" in text

        table = Table1Result(reports={"patent-like": patent_result.report})
        table_text = format_table1(table)
        assert "Step 5" in table_text
        assert "patent-like" in table_text
        table_text_min = format_table1(table, unit="min")
        assert "(min)" in table_text_min

    def test_format_comparison(self):
        line = format_comparison("rendering dominates", "yes", "yes", True)
        assert line.startswith("[OK]")
        assert "DIFFERS" in format_comparison("x", "1", "2", False)

"""Unit tests for graph traversals."""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.generators import path_graph, star_graph
from repro.graph.model import Graph
from repro.graph.traversal import (
    bfs_layers,
    bfs_order,
    connected_components,
    dfs_order,
    ego_network,
    k_hop_neighbourhood,
    largest_component,
    shortest_path,
)


class TestBFS:
    def test_bfs_order_visits_everything_reachable(self, small_graph):
        order = bfs_order(small_graph, 1)
        assert set(order) == {1, 2, 3, 4}
        assert order[0] == 1

    def test_bfs_respects_direction_when_asked(self, small_graph):
        order = bfs_order(small_graph, 3, directed=True)
        assert set(order) == {3, 4}

    def test_bfs_layers_depths(self):
        graph = path_graph(5)
        layers = bfs_layers(graph, 0)
        assert layers == [[0], [1], [2], [3], [4]]

    def test_bfs_unknown_start_raises(self, small_graph):
        with pytest.raises(NodeNotFoundError):
            bfs_order(small_graph, 99)


class TestDFS:
    def test_dfs_visits_everything(self, small_graph):
        assert set(dfs_order(small_graph, 1)) == {1, 2, 3, 4}

    def test_dfs_on_path_is_linear(self):
        graph = path_graph(4)
        assert dfs_order(graph, 0) == [0, 1, 2, 3]


class TestComponents:
    def test_single_component(self, small_graph):
        components = connected_components(small_graph)
        assert len(components) == 1
        assert set(components[0]) == {1, 2, 3, 4}

    def test_multiple_components_sorted_by_size(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(10, 11)
        graph.add_node(99)
        components = connected_components(graph)
        assert [len(c) for c in components] == [3, 2, 1]
        assert set(largest_component(graph)) == {1, 2, 3}

    def test_empty_graph_has_no_components(self):
        assert connected_components(Graph()) == []
        assert largest_component(Graph()) == []


class TestShortestPath:
    def test_trivial_path(self, small_graph):
        assert shortest_path(small_graph, 1, 1) == [1]

    def test_path_found(self):
        graph = path_graph(5)
        assert shortest_path(graph, 0, 4) == [0, 1, 2, 3, 4]

    def test_no_path_returns_none(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(2)
        assert shortest_path(graph, 1, 2) is None

    def test_directed_path_respects_orientation(self):
        graph = Graph(directed=True)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert shortest_path(graph, 3, 1, directed=True) is None
        assert shortest_path(graph, 3, 1, directed=False) == [3, 2, 1]

    def test_unknown_endpoint_raises(self, small_graph):
        with pytest.raises(NodeNotFoundError):
            shortest_path(small_graph, 1, 99)


class TestNeighbourhoods:
    def test_ego_network_is_focus_on_node(self):
        graph = star_graph(6)
        ego = ego_network(graph, 0)
        assert ego.num_nodes == 7
        leaf_ego = ego_network(graph, 3)
        assert set(leaf_ego.node_ids()) == {0, 3}

    def test_k_hop_neighbourhood(self):
        graph = path_graph(7)
        assert k_hop_neighbourhood(graph, 3, 0) == {3}
        assert k_hop_neighbourhood(graph, 3, 1) == {2, 3, 4}
        assert k_hop_neighbourhood(graph, 3, 2) == {1, 2, 3, 4, 5}

    def test_k_hop_negative_raises(self, small_graph):
        with pytest.raises(ValueError):
            k_hop_neighbourhood(small_graph, 1, -1)

"""Unit tests for canvas filters and the graph editor."""

from __future__ import annotations

import pytest

from repro.core.editing import GraphEditor
from repro.core.filters import FilterSpec, apply_filters
from repro.errors import QueryError
from repro.graph.model import Graph
from repro.layout.base import Layout
from repro.spatial.geometry import Point, Rect
from repro.storage.database import GraphVizDatabase
from repro.storage.schema import rows_from_graph


@pytest.fixture
def rows(small_graph):
    layout = Layout({
        1: Point(0.0, 0.0), 2: Point(10.0, 0.0), 3: Point(10.0, 10.0), 4: Point(0.0, 10.0),
    })
    return rows_from_graph(small_graph, layout)


@pytest.fixture
def database(rows):
    database = GraphVizDatabase(name="small")
    database.load_layer(0, rows)
    return database


class TestFilterSpec:
    def test_empty_spec_keeps_everything(self, rows):
        assert apply_filters(rows, FilterSpec()) == rows
        assert apply_filters(rows, None) == rows

    def test_hide_edge_label(self, rows):
        spec = FilterSpec(hidden_edge_labels={"knows"})
        filtered = apply_filters(rows, spec)
        assert all(row.edge_label != "knows" for row in filtered)
        assert len(filtered) == 2

    def test_hide_edge_label_case_insensitive(self, rows):
        spec = FilterSpec(hidden_edge_labels={"KNOWS"})
        assert len(apply_filters(rows, spec)) == 2

    def test_only_edge_labels_allowlist(self, rows):
        spec = FilterSpec(only_edge_labels={"likes"})
        filtered = apply_filters(rows, spec)
        assert {row.edge_label for row in filtered} == {"likes"}

    def test_hide_node_label_drops_incident_edges(self, rows):
        spec = FilterSpec(hidden_node_labels={"alice"})
        filtered = apply_filters(rows, spec)
        assert all("Alice" not in (row.node1_label, row.node2_label) for row in filtered)

    def test_hide_isolated_nodes(self):
        graph = Graph()
        graph.add_node(5, label="solo")
        graph.add_edge(1, 2)
        layout = Layout({5: Point(0, 0), 1: Point(1, 1), 2: Point(2, 2)})
        rows = rows_from_graph(graph, layout)
        spec = FilterSpec(hide_isolated_nodes=True)
        filtered = apply_filters(rows, spec)
        assert all(not row.is_node_row() for row in filtered)

    def test_mutators_and_clear(self, rows):
        spec = FilterSpec()
        spec.hide_edge_label("Knows")
        spec.hide_node_label("Alice")
        spec.show_only_edge_labels({"likes"})
        assert not spec.is_empty()
        spec.clear()
        assert spec.is_empty()
        assert apply_filters(rows, spec) == rows


class TestGraphEditor:
    def test_rename_node_updates_all_rows_and_index(self, database):
        editor = GraphEditor(database)
        touched = editor.rename_node(1, "Alicia")
        assert touched == 2
        assert database.keyword_search(0, "alicia")
        assert not database.keyword_search(0, "alice")
        assert editor.journal[-1].kind == "rename_node"

    def test_move_node_updates_geometry(self, database):
        editor = GraphEditor(database)
        editor.move_node(1, Point(500.0, 500.0))
        table = database.table(0)
        assert table.node_position(1) == Point(500.0, 500.0)
        # The moved node's edges are now found by a window query at the new spot.
        rows = table.window_query(Rect(490, 490, 510, 510))
        assert any(row.node1_id == 1 for row in rows)

    def test_add_edge_between_existing_nodes(self, database):
        editor = GraphEditor(database)
        row = editor.add_edge(2, 4, label="new-link")
        assert row.node1_label == "Bob"
        assert row.node2_label == "Databases"
        assert database.table(0).get(row.row_id).edge_label == "new-link"

    def test_add_edge_unknown_node_raises(self, database):
        editor = GraphEditor(database)
        with pytest.raises(QueryError):
            editor.add_edge(1, 999)
        with pytest.raises(QueryError):
            editor.add_edge(999, 1)

    def test_delete_edge(self, database):
        editor = GraphEditor(database)
        removed = editor.delete_edge(1, 2)
        assert removed == 1
        remaining = {(r.node1_id, r.node2_id) for r in database.table(0).scan()}
        assert (1, 2) not in remaining

    def test_delete_missing_edge_is_noop(self, database):
        editor = GraphEditor(database)
        assert editor.delete_edge(2, 4) == 0

    def test_rename_unknown_node_raises(self, database):
        with pytest.raises(QueryError):
            GraphEditor(database).rename_node(999, "x")

    def test_journal_records_every_edit(self, database):
        editor = GraphEditor(database)
        editor.rename_node(1, "A")
        editor.move_node(2, Point(1, 1))
        editor.add_edge(1, 3)
        editor.delete_edge(1, 3)
        assert [op.kind for op in editor.journal] == [
            "rename_node", "move_node", "add_edge", "delete_edge",
        ]

    def test_database_stays_consistent_after_edits(self, database):
        editor = GraphEditor(database)
        editor.rename_node(1, "A")
        editor.move_node(3, Point(-50, -50))
        editor.add_edge(1, 3, label="x")
        database.validate()

"""Unit tests for layout post-processing helpers."""

from __future__ import annotations

import pytest

from repro.graph.generators import path_graph
from repro.layout.base import Layout
from repro.layout.scale import (
    average_edge_length,
    count_node_overlaps,
    fit_to_area,
    normalize_layout,
    spread_coincident_nodes,
)
from repro.spatial.geometry import Point


class TestNormalize:
    def test_normalized_layout_starts_at_origin(self):
        layout = Layout({1: Point(-5, 10), 2: Point(5, 20)})
        normalized = normalize_layout(layout)
        rect = normalized.bounding_rect()
        assert rect.min_x == 0 and rect.min_y == 0
        assert rect.width == 10 and rect.height == 10

    def test_empty_layout(self):
        assert len(normalize_layout(Layout({}))) == 0


class TestFitToArea:
    def test_density_matches_target(self):
        layout = Layout({i: Point(i * 1.0, 0.0) for i in range(16)})
        fitted = fit_to_area(layout, area_per_node=100.0)
        rect = fitted.bounding_rect()
        target_side = (100.0 * 16) ** 0.5
        assert max(rect.width, rect.height) == pytest.approx(target_side)

    def test_degenerate_single_point_layout(self):
        layout = Layout({1: Point(5, 5), 2: Point(5, 5), 3: Point(5, 5)})
        fitted = fit_to_area(layout, area_per_node=100.0)
        rect = fitted.bounding_rect()
        assert rect.width > 0 or rect.height > 0

    def test_empty_layout(self):
        assert len(fit_to_area(Layout({}), 100.0)) == 0


class TestSpreadCoincident:
    def test_coincident_nodes_are_separated(self):
        layout = Layout({i: Point(0, 0) for i in range(5)})
        spread = spread_coincident_nodes(layout, spacing=10.0)
        distinct = {(round(p.x, 6), round(p.y, 6)) for p in spread.positions.values()}
        assert len(distinct) == 5

    def test_distinct_nodes_untouched(self):
        layout = Layout({1: Point(0, 0), 2: Point(50, 50)})
        spread = spread_coincident_nodes(layout)
        assert spread.positions == layout.positions


class TestQualityMeasures:
    def test_average_edge_length(self):
        graph = path_graph(3)
        layout = Layout({0: Point(0, 0), 1: Point(3, 4), 2: Point(3, 4)})
        assert average_edge_length(graph, layout) == pytest.approx(2.5)

    def test_average_edge_length_no_edges(self):
        from repro.graph.model import Graph

        graph = Graph()
        graph.add_node(1)
        assert average_edge_length(graph, Layout({1: Point(0, 0)})) == 0.0

    def test_count_node_overlaps(self):
        layout = Layout({1: Point(0, 0), 2: Point(0.1, 0.1), 3: Point(100, 100)})
        assert count_node_overlaps(layout, radius=1.0) == 1
        assert count_node_overlaps(layout, radius=0.01) == 0

    def test_count_node_overlaps_zero_radius(self):
        layout = Layout({1: Point(0, 0), 2: Point(0, 0)})
        assert count_node_overlaps(layout, radius=0) == 0

"""Unit tests for exploration sessions and the server façade."""

from __future__ import annotations

import pytest

from repro.config import GraphVizDBConfig
from repro.core.query_manager import QueryManager
from repro.core.server import GraphVizDBServer
from repro.core.session import ExplorationSession
from repro.errors import QueryError
from repro.graph.generators import community_graph
from repro.spatial.geometry import Point


@pytest.fixture(scope="module")
def server(request):
    config = request.getfixturevalue("small_config")
    server = GraphVizDBServer(config)
    graph = community_graph(num_communities=3, community_size=20, seed=4)
    graph.name = "communities"
    server.load_dataset(graph)
    return server


class TestSession:
    def test_refresh_returns_objects(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        result = session.refresh()
        assert result.num_objects > 0
        assert session.last_result is result

    def test_pan_changes_viewport_and_history(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        before = session.viewport.center
        session.pan(300, 0)
        assert session.viewport.center != before
        assert session.history[-1].kind == "pan"

    def test_zoom_out_fetches_at_least_as_many_objects(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        zoomed_in = session.zoom(2.0)
        zoomed_out = session.zoom(0.25)
        assert zoomed_out.num_objects >= zoomed_in.num_objects

    def test_change_layer(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        layers = session.available_layers()
        assert 0 in layers and len(layers) >= 2
        result = session.change_layer(layers[-1])
        assert result.layer == layers[-1]
        assert session.layer == layers[-1]

    def test_change_to_missing_layer_raises(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        with pytest.raises(QueryError):
            session.change_layer(42)

    def test_search_and_focus(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        matches = session.search("patent", limit=5)
        assert matches.num_matches > 0
        node_id = matches.matches[0]["node_id"]
        result = session.focus_on(node_id)
        assert session.viewport.center == Point(
            matches.matches[0]["x"], matches.matches[0]["y"]
        )
        assert any(node_id in (row.node1_id, row.node2_id) for row in result.rows)

    def test_filters_through_session(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        unfiltered = session.refresh().num_objects
        filtered = session.hide_edge_label("cites").num_objects
        assert filtered < unfiltered
        restored = session.clear_filters().num_objects
        assert restored == unfiltered

    def test_show_only_edges(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        result = session.show_only_edges({"cites"})
        assert all(row.edge_label == "cites" or row.is_node_row() for row in result.rows)

    def test_jump_to(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        target = patent_result.database.bounds(0).center
        session.jump_to(target)
        assert session.viewport.center == target

    def test_invalid_start_layer(self, patent_result):
        with pytest.raises(QueryError):
            ExplorationSession(QueryManager(patent_result.database), start_layer=9)


class TestServer:
    def test_dataset_listing(self, server):
        assert server.datasets() == ["communities"]
        handle = server.dataset("communities")
        assert handle.database.num_layers >= 2

    def test_unknown_dataset_raises(self, server):
        with pytest.raises(QueryError):
            server.dataset("dblp")

    def test_create_session_and_explore(self, server):
        session = server.create_session("communities")
        assert session.refresh().num_objects > 0

    def test_statistics(self, server):
        stats = server.dataset_statistics("communities")
        assert stats.num_nodes == 60
        layer_stats = server.layer_statistics("communities", 0)
        assert layer_stats.num_nodes == 60
        assert layer_stats.average_degree > 0

    def test_preprocessing_report(self, server):
        report = server.preprocessing_report("communities")
        assert len(report.steps) == 5

    def test_editor_roundtrip(self, server):
        editor = server.create_editor("communities")
        node_id = next(iter(server.dataset("communities").graph.node_ids()))
        editor.rename_node(node_id, "Renamed Node")
        session = server.create_session("communities")
        assert session.search("renamed").num_matches >= 1

    def test_load_multiple_and_unload(self, small_config):
        server = GraphVizDBServer(small_config)
        first = community_graph(num_communities=2, community_size=10, seed=1)
        first.name = "a"
        second = community_graph(num_communities=2, community_size=10, seed=2)
        second.name = "b"
        server.load_dataset(first)
        server.load_dataset(second)
        assert server.datasets() == ["a", "b"]
        server.unload_dataset("a")
        assert server.datasets() == ["b"]
        with pytest.raises(QueryError):
            server.unload_dataset("a")

    def test_register_database_path(self, server, small_config):
        handle = server.dataset("communities")
        other = GraphVizDBServer(small_config)
        registered = other.register_database(handle.graph, handle.database, "imported")
        assert other.datasets() == ["imported"]
        session = other.create_session("imported")
        assert session.refresh().num_objects > 0
        with pytest.raises(QueryError):
            other.preprocessing_report("imported")
        assert registered.name == "imported"

    def test_default_config_used_when_none(self):
        server = GraphVizDBServer()
        assert isinstance(server.config, GraphVizDBConfig)

"""Unit tests for the client simulator, cost model and birdview."""

from __future__ import annotations

import pytest

from repro.client.birdview import Birdview
from repro.client.canvas import ClientCostModel
from repro.client.simulator import ClientSimulator
from repro.core.query_manager import QueryManager
from repro.core.session import ExplorationSession
from repro.errors import QueryError
from repro.spatial.geometry import Rect


class TestCostModel:
    def test_rendering_cost_linear_in_objects(self):
        model = ClientCostModel(per_object_render_s=0.01, frame_setup_s=0.0)
        assert model.rendering_seconds(100) == pytest.approx(1.0)
        assert model.rendering_seconds(200) == pytest.approx(2.0)

    def test_communication_cost_grows_with_bytes_and_chunks(self, patent_result):
        manager = QueryManager(patent_result.database)
        bounds = patent_result.database.bounds(0)
        big = manager.window_query(bounds, layer=0)
        small = manager.window_query(
            Rect.from_center(bounds.center, bounds.width / 20, bounds.height / 20), layer=0
        )
        model = ClientCostModel()
        assert model.communication_seconds(big.chunks) > model.communication_seconds(small.chunks)

    def test_empty_chunk_list_costs_one_round_trip(self):
        model = ClientCostModel(request_latency_s=0.05)
        assert model.communication_seconds([]) == pytest.approx(0.05)


class TestSimulator:
    def test_breakdown_fields(self, patent_result):
        simulator = ClientSimulator(QueryManager(patent_result.database))
        bounds = patent_result.database.bounds(0)
        timing = simulator.execute_window(bounds, layer=0)
        assert timing.total_seconds == pytest.approx(
            timing.db_query_seconds
            + timing.filter_seconds
            + timing.json_build_seconds
            + timing.communication_rendering_seconds
        )
        assert timing.num_objects == timing.num_nodes + timing.num_edges
        assert timing.bytes_transferred > 0

    def test_communication_rendering_dominates(self, patent_result):
        # The headline observation of Fig. 3: client-side time dominates the
        # DB query time for any realistically sized window.
        simulator = ClientSimulator(QueryManager(patent_result.database))
        bounds = patent_result.database.bounds(0)
        window = Rect.from_center(bounds.center, bounds.width / 2, bounds.height / 2)
        timing = simulator.execute_window(window, layer=0)
        assert timing.communication_rendering_seconds > timing.db_query_seconds

    def test_as_dict(self, patent_result):
        simulator = ClientSimulator(QueryManager(patent_result.database))
        timing = simulator.execute_window(patent_result.database.bounds(0))
        payload = timing.as_dict()
        assert set(payload) >= {
            "db_query_seconds", "json_build_seconds",
            "communication_rendering_seconds", "total_seconds", "num_objects",
        }

    def test_replay_session_trace(self, patent_result):
        manager = QueryManager(patent_result.database)
        session = ExplorationSession(manager)
        simulator = ClientSimulator(manager)
        node_id = next(iter(patent_result.hierarchy.layer(0).graph.node_ids()))
        trace = [
            {"op": "refresh"},
            {"op": "pan", "dx": 200, "dy": 100},
            {"op": "zoom", "factor": 0.5},
            {"op": "layer", "layer": 1},
            {"op": "focus", "node_id": node_id},
        ]
        timings = simulator.replay_session_trace(session, trace)
        assert len(timings) == 5
        assert all(t.total_seconds > 0 for t in timings)

    def test_replay_unknown_operation_raises(self, patent_result):
        manager = QueryManager(patent_result.database)
        simulator = ClientSimulator(manager)
        session = ExplorationSession(manager)
        with pytest.raises(ValueError):
            simulator.replay_session_trace(session, [{"op": "teleport"}])


class TestBirdview:
    def test_raster_covers_all_rows(self, patent_result):
        birdview = Birdview.from_database(patent_result.database, layer=0, width=30, height=12)
        total = sum(sum(row) for row in birdview.grid)
        assert total >= patent_result.database.table(0).num_rows

    def test_cell_center_within_bounds(self, patent_result):
        birdview = Birdview.from_database(patent_result.database, width=20, height=10)
        point = birdview.cell_center(5, 5)
        assert birdview.bounds.contains_point(point)
        with pytest.raises(QueryError):
            birdview.cell_center(100, 0)

    def test_densest_cell_is_valid(self, patent_result):
        birdview = Birdview.from_database(patent_result.database, width=20, height=10)
        col, row = birdview.densest_cell()
        assert 0 <= col < 20 and 0 <= row < 10
        assert birdview.grid[row][col] == max(max(r) for r in birdview.grid)

    def test_ascii_rendering_dimensions(self, patent_result):
        birdview = Birdview.from_database(patent_result.database, width=24, height=8)
        art = birdview.to_ascii()
        lines = art.split("\n")
        assert len(lines) == 8
        assert all(len(line) == 24 for line in lines)

    def test_invalid_resolution_raises(self, patent_result):
        with pytest.raises(QueryError):
            Birdview.from_database(patent_result.database, width=0, height=5)

    def test_birdview_click_then_jump(self, patent_result):
        manager = QueryManager(patent_result.database)
        session = ExplorationSession(manager)
        birdview = Birdview.from_database(patent_result.database, width=20, height=10)
        target = birdview.cell_center(*birdview.densest_cell())
        result = session.jump_to(target)
        assert result.num_objects > 0

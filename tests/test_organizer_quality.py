"""Unit tests for the drawing-quality metrics of organized layouts."""

from __future__ import annotations

import pytest

from repro.graph.generators import community_graph
from repro.layout.circular import CircularLayout
from repro.layout.scale import normalize_layout
from repro.organizer.placement import GlobalLayout, PartitionOrganizer
from repro.organizer.quality import evaluate_drawing
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.simple import RandomPartitioner


@pytest.fixture(scope="module")
def arranged():
    graph = community_graph(num_communities=4, community_size=18, inter_edges=3, seed=12)
    partition_result = MultilevelPartitioner(seed=4).partition(graph, 4)
    layouts = [
        CircularLayout(area_per_node=400.0).layout(subgraph)
        for subgraph in partition_result.subgraphs()
    ]
    global_layout = PartitionOrganizer(padding=25.0).organize(partition_result, layouts)
    return graph, partition_result, layouts, global_layout


class TestDrawingQuality:
    def test_no_overlapping_cells(self, arranged):
        _, partition_result, _, global_layout = arranged
        quality = evaluate_drawing(global_layout, partition_result)
        assert quality.num_overlapping_cell_pairs == 0

    def test_mean_consistent_with_total(self, arranged):
        _, partition_result, _, global_layout = arranged
        quality = evaluate_drawing(global_layout, partition_result)
        crossing = len(partition_result.crossing_edges())
        assert quality.total_crossing_length >= 0
        if crossing:
            assert quality.mean_crossing_length == pytest.approx(
                quality.total_crossing_length / crossing
            )

    def test_utilisation_and_aspect_in_reasonable_ranges(self, arranged):
        _, partition_result, _, global_layout = arranged
        quality = evaluate_drawing(global_layout, partition_result)
        assert 0.0 < quality.plane_utilisation <= 1.0
        assert 0.05 < quality.aspect_ratio < 20.0

    def test_as_dict_round_trip(self, arranged):
        _, partition_result, _, global_layout = arranged
        payload = evaluate_drawing(global_layout, partition_result).as_dict()
        assert set(payload) == {
            "total_crossing_length", "mean_crossing_length", "plane_utilisation",
            "aspect_ratio", "num_overlapping_cell_pairs",
        }

    def test_better_partitioning_gives_shorter_crossings(self):
        """A good cut (multilevel) should not produce longer crossing edges in
        total than a random cut of the same graph once both are organized."""
        graph = community_graph(num_communities=4, community_size=20, inter_edges=2, seed=6)
        layouts_for = lambda result: [  # noqa: E731 - local helper
            CircularLayout(area_per_node=400.0).layout(sub) for sub in result.subgraphs()
        ]
        organizer = PartitionOrganizer(padding=25.0)

        good = MultilevelPartitioner(seed=2).partition(graph, 4)
        bad = RandomPartitioner(seed=2).partition(graph, 4)
        good_quality = evaluate_drawing(organizer.organize(good, layouts_for(good)), good)
        bad_quality = evaluate_drawing(organizer.organize(bad, layouts_for(bad)), bad)
        assert good_quality.total_crossing_length < bad_quality.total_crossing_length

    def test_single_partition_has_zero_crossings(self, small_graph):
        partition_result = MultilevelPartitioner().partition(small_graph, 1)
        layout = CircularLayout(area_per_node=100.0).layout(small_graph)
        global_layout = PartitionOrganizer().organize(partition_result, [layout])
        quality = evaluate_drawing(global_layout, partition_result)
        assert quality.total_crossing_length == 0.0
        assert quality.mean_crossing_length == 0.0

    def test_quality_on_manual_global_layout(self, small_graph):
        """evaluate_drawing works on a hand-built GlobalLayout as well."""
        from repro.organizer.cost import PlacedPartition
        from repro.partition.base import PartitionResult

        partition_result = PartitionResult(
            graph=small_graph,
            assignment={1: 0, 2: 0, 3: 1, 4: 1},
            num_partitions=2,
        )
        left = normalize_layout(CircularLayout(area_per_node=100.0).layout(
            small_graph.subgraph([1, 2])
        ))
        right = normalize_layout(CircularLayout(area_per_node=100.0).layout(
            small_graph.subgraph([3, 4])
        )).translated(500.0, 0.0)
        merged = left.merged_with(right)
        global_layout = GlobalLayout(
            layout=merged,
            placements=[
                PlacedPartition(0, left, left.bounding_rect().expanded(10)),
                PlacedPartition(1, right, right.bounding_rect().expanded(10)),
            ],
            placement_order=[0, 1],
        )
        quality = evaluate_drawing(global_layout, partition_result)
        assert quality.total_crossing_length > 0
        assert quality.num_overlapping_cell_pairs == 0

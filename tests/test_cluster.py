"""Tests for the multi-process cluster subsystem (``repro.cluster``).

Unit coverage for rendezvous hashing, the cross-request window cache and the
metrics merge, plus live end-to-end coverage: a real 2-worker fleet behind a
real router socket — queries, sessions, aggregated metrics, worker crash /
restart with dataset failover, overload (503 + ``Retry-After``) propagation,
and graceful drain.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.cluster.cache import WindowResultCache
from repro.cluster.hashing import rendezvous_owner, rendezvous_ranking
from repro.cluster.router import ClusterRuntime, merge_summaries
from repro.config import ClusterConfig, GraphVizDBConfig, ServiceConfig
from repro.core.monitoring import ServiceMetrics
from repro.errors import ClusterError
from repro.service.pool import DatasetPool
from repro.storage.sqlite_backend import save_to_sqlite


class TestRendezvousHashing:
    WORKERS = ["w0", "w1", "w2", "w3"]
    DATASETS = [f"dataset-{i}" for i in range(64)]

    def test_owner_is_deterministic_and_member(self):
        for dataset in self.DATASETS:
            owner = rendezvous_owner(dataset, self.WORKERS)
            assert owner in self.WORKERS
            assert owner == rendezvous_owner(dataset, list(reversed(self.WORKERS)))

    def test_empty_fleet_has_no_owner(self):
        assert rendezvous_owner("anything", []) is None

    def test_balance(self):
        counts = {worker: 0 for worker in self.WORKERS}
        for dataset in self.DATASETS:
            counts[rendezvous_owner(dataset, self.WORKERS)] += 1
        # 64 datasets over 4 workers: every worker should own some.
        assert all(count > 0 for count in counts.values())

    def test_minimal_disruption_on_worker_loss(self):
        before = {d: rendezvous_owner(d, self.WORKERS) for d in self.DATASETS}
        survivors = [w for w in self.WORKERS if w != "w2"]
        for dataset, owner in before.items():
            after = rendezvous_owner(dataset, survivors)
            if owner != "w2":
                assert after == owner  # unaffected datasets do not move
            else:
                assert after in survivors

    def test_ranking_head_is_owner_and_failover_matches(self):
        for dataset in self.DATASETS:
            ranking = rendezvous_ranking(dataset, self.WORKERS)
            assert ranking[0] == rendezvous_owner(dataset, self.WORKERS)
            survivors = [w for w in self.WORKERS if w != ranking[0]]
            assert ranking[1] == rendezvous_owner(dataset, survivors)


class TestWindowResultCache:
    def test_hit_miss_and_metrics(self):
        metrics = ServiceMetrics()
        cache = WindowResultCache(capacity=4, metrics=metrics)
        assert cache.get("k1") is None
        cache.put("k1", "ds", 200, b"payload")
        entry = cache.get("k1")
        assert entry is not None and entry.body == b"payload"
        assert metrics.window_cache_hits == 1
        assert metrics.window_cache_misses == 1

    def test_capacity_eviction_is_lru(self):
        cache = WindowResultCache(capacity=2)
        cache.put("a", "ds", 200, b"1")
        cache.put("b", "ds", 200, b"2")
        assert cache.get("a") is not None  # refresh a; b becomes LRU
        cache.put("c", "ds", 200, b"3")
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None

    def test_byte_budget_eviction(self):
        cache = WindowResultCache(capacity=100, max_bytes=100)
        cache.put("a", "ds", 200, b"x" * 60)
        cache.put("b", "ds", 200, b"y" * 60)  # 120 bytes > budget: evict a
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.total_bytes == 60

    def test_byte_budget_never_evicts_last_entry(self):
        cache = WindowResultCache(capacity=10, max_bytes=10)
        cache.put("huge", "ds", 200, b"z" * 1000)
        assert cache.get("huge") is not None

    def test_invalidate_dataset(self):
        metrics = ServiceMetrics()
        cache = WindowResultCache(capacity=10, metrics=metrics)
        cache.put("a", "ds1", 200, b"1")
        cache.put("b", "ds2", 200, b"2")
        assert cache.invalidate_dataset("ds1") == 1
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert metrics.window_cache_invalidations == 1

    def test_observe_edit_counters(self):
        cache = WindowResultCache(capacity=10)
        cache.put("a", "ds1", 200, b"1")
        # First observation only records the baseline.
        assert cache.observe_edit_counters({"ds1": 5}) == 0
        assert cache.get("a") is not None
        # Unchanged counter: nothing dropped.
        assert cache.observe_edit_counters({"ds1": 5}) == 0
        # Moved counter (any difference, including a reset): drop.
        assert cache.observe_edit_counters({"ds1": 7}) == 1
        assert cache.get("a") is None
        cache.put("b", "ds1", 200, b"2", counter=cache.counter_snapshot("ds1"))
        assert cache.observe_edit_counters({"ds1": 0}) == 1  # eviction reset
        assert cache.get("b") is None

    def test_put_rejects_response_older_than_an_invalidation(self):
        cache = WindowResultCache(capacity=10)
        cache.observe_edit_counters({"ds1": 1})
        snapshot = cache.counter_snapshot("ds1")  # taken before the "query"
        # While the query was in flight, an edit moved the counter and the
        # invalidation ran — the pre-edit response must not enter the cache.
        cache.observe_edit_counters({"ds1": 2})
        cache.put("stale", "ds1", 200, b"pre-edit", counter=snapshot)
        assert cache.get("stale") is None
        # A response computed after the snapshot refreshed is accepted.
        cache.put("fresh", "ds1", 200, b"post", counter=cache.counter_snapshot("ds1"))
        assert cache.get("fresh") is not None

    def test_zero_capacity_disables(self):
        cache = WindowResultCache(capacity=0)
        cache.put("a", "ds", 200, b"1")
        assert cache.get("a") is None
        assert len(cache) == 0


class TestMergeSummaries:
    def test_sums_numbers_and_maxes_peaks(self):
        merged = merge_summaries([
            {"requests": {"admitted": 3}, "peak_queue_depth": 4, "name": "a"},
            {"requests": {"admitted": 5}, "peak_queue_depth": 2, "name": "b"},
        ])
        assert merged["requests"]["admitted"] == 8
        assert merged["peak_queue_depth"] == 4
        assert merged["name"] == "b"  # non-numeric: last wins

    def test_nested_dicts_merge_per_key(self):
        merged = merge_summaries([
            {"queue_depth": {"ds1": 1}},
            {"queue_depth": {"ds1": 2, "ds2": 3}},
        ])
        assert merged["queue_depth"] == {"ds1": 3, "ds2": 3}


class TestPoolMemoryBudget:
    def test_resident_bytes_estimated_and_summed(self, patent_result, tmp_path):
        path = tmp_path / "budget.db"
        save_to_sqlite(patent_result.database, path)
        pool = DatasetPool(capacity=4, max_resident_bytes=1 << 40)
        entry = pool.get(path)
        assert entry.resident_bytes > 0
        assert pool.total_resident_bytes() == entry.resident_bytes

    def test_budget_evicts_lru_but_keeps_newest(self, patent_result, tmp_path):
        paths = []
        for index in range(3):
            path = tmp_path / f"shard{index}.db"
            save_to_sqlite(patent_result.database, path)
            paths.append(path)
        probe_pool = DatasetPool(capacity=4, max_resident_bytes=1 << 40)
        one_dataset = probe_pool.get(paths[0]).resident_bytes
        # Budget fits one dataset but not two: each open evicts the previous.
        pool = DatasetPool(capacity=4, max_resident_bytes=int(one_dataset * 1.5))
        pool.get(paths[0])
        pool.get(paths[1])
        assert len(pool) == 1
        assert pool.peek(paths[1]) is not None and pool.peek(paths[0]) is None
        # A dataset larger than the whole budget still serves (never evict
        # the entry just opened).
        tiny = DatasetPool(capacity=4, max_resident_bytes=1)
        tiny.get(paths[2])
        assert len(tiny) == 1

    def test_budget_disabled_skips_estimation(self, patent_result, tmp_path):
        path = tmp_path / "nobudget.db"
        save_to_sqlite(patent_result.database, path)
        pool = DatasetPool(capacity=2)
        assert pool.get(path).resident_bytes == 0
        assert pool.total_resident_bytes() == 0

    def test_rejects_negative_budget(self):
        with pytest.raises(Exception):
            DatasetPool(capacity=2, max_resident_bytes=-1)


# --------------------------------------------------------------------------
# Live cluster
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def shard_paths(patent_result, tmp_path_factory):
    """Three SQLite shards of the small patent dataset."""
    base = tmp_path_factory.mktemp("cluster-shards")
    paths = {}
    for name in ("shard-a", "shard-b", "shard-c"):
        path = base / f"{name}.db"
        save_to_sqlite(patent_result.database, path)
        paths[name] = str(path)
    return paths


def _cluster_config(**cluster_kwargs) -> GraphVizDBConfig:
    cluster_kwargs.setdefault("num_workers", 2)
    cluster_kwargs.setdefault("health_interval_seconds", 0.1)
    cluster_kwargs.setdefault("restart_backoff_seconds", 0.01)
    return GraphVizDBConfig(cluster=ClusterConfig(**cluster_kwargs))


def _get(port: int, path: str, timeout: float = 30.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read()), dict(
            response.getheaders()
        )
    finally:
        connection.close()


@pytest.fixture(scope="module")
def live_cluster(shard_paths):
    """A running 2-worker cluster shared by the read-only live tests."""
    with ClusterRuntime(shard_paths, config=_cluster_config()) as runtime:
        yield runtime


class TestClusterLive:
    def test_rejects_empty_or_zero_worker_configs(self, shard_paths):
        with pytest.raises(ClusterError):
            ClusterRuntime({}, config=_cluster_config())
        with pytest.raises(ClusterError):
            ClusterRuntime(shard_paths, config=_cluster_config(num_workers=0))

    def test_datasets_and_assignment(self, live_cluster):
        status, body, _ = _get(live_cluster.port, "/datasets")
        assert status == 200
        assert body["datasets"] == ["shard-a", "shard-b", "shard-c"]
        assignment = live_cluster.health_summary()["assignment"]
        assert set(assignment) == set(body["datasets"])
        assert all(owner in ("w0", "w1") for owner in assignment.values())

    def test_window_query_and_cross_request_cache(self, live_cluster):
        target = "/window?dataset=shard-a&payload=1"
        status, body, _ = _get(live_cluster.port, target)
        assert status == 200 and body["meta"]["num_objects"] > 0
        before = live_cluster.router.metrics.window_cache_hits
        status2, body2, _ = _get(live_cluster.port, target)
        assert status2 == 200 and body2 == body
        assert live_cluster.router.metrics.window_cache_hits == before + 1
        # Same window, different parameter order: same canonical cache key.
        reordered = "/window?payload=1&dataset=shard-a"
        status3, body3, _ = _get(live_cluster.port, reordered)
        assert status3 == 200 and body3 == body
        assert live_cluster.router.metrics.window_cache_hits == before + 2

    def test_keyword_and_nearest_proxy(self, live_cluster):
        status, body, _ = _get(
            live_cluster.port, "/keyword?dataset=shard-b&q=patent&limit=2"
        )
        assert status == 200 and body["num_matches"] <= 2
        status, body, _ = _get(
            live_cluster.port, "/nearest?dataset=shard-c&x=0&y=0&k=2"
        )
        assert status == 200 and len(body["rows"]) == 2

    def test_sessions_route_to_owner(self, live_cluster):
        status, body, _ = _get(live_cluster.port, "/session/new?dataset=shard-a")
        assert status == 200
        session_id = body["session_id"]
        status, body, _ = _get(live_cluster.port, f"/session/{session_id}/refresh")
        assert status == 200 and body["num_objects"] > 0
        status, body, _ = _get(live_cluster.port, f"/session/{session_id}/close")
        assert status == 200 and body["closed"] is True
        status, _, _ = _get(live_cluster.port, f"/session/{session_id}/refresh")
        assert status == 404

    def test_unknown_dataset_and_missing_param(self, live_cluster):
        status, _, _ = _get(live_cluster.port, "/window?dataset=missing")
        assert status == 404
        status, _, _ = _get(live_cluster.port, "/window")
        assert status == 400

    def test_metrics_aggregate_across_workers(self, live_cluster):
        _get(live_cluster.port, "/keyword?dataset=shard-a&q=patent")
        _get(live_cluster.port, "/keyword?dataset=shard-c&q=patent")
        status, body, _ = _get(live_cluster.port, "/metrics")
        assert status == 200
        assert body["requests"]["admitted"] >= 2  # merged across both workers
        assert body["cluster"]["proxied_requests"] >= 2
        assert set(body["router"]["workers"]) == {"w0", "w1"}

    def test_health_endpoint(self, live_cluster):
        status, body, _ = _get(live_cluster.port, "/health")
        assert status == 200 and body["status"] == "ok"
        assert all(worker["healthy"] for worker in body["workers"].values())


class TestClusterFailure:
    def test_worker_crash_failover_and_restart(self, shard_paths):
        with ClusterRuntime(shard_paths, config=_cluster_config()) as runtime:
            port = runtime.port
            for name in shard_paths:
                status, _, _ = _get(port, f"/window?dataset={name}")
                assert status == 200
            assignment = runtime.health_summary()["assignment"]
            victim = assignment["shard-b"]
            survivor = next(w for w in ("w0", "w1") if w != victim)
            victim_generation = runtime.router._handles[victim].generation
            status, body, _ = _get(port, "/session/new?dataset=shard-b")
            assert status == 200
            doomed_session = body["session_id"]
            runtime.router._handles[victim].process.kill()

            # The victim's datasets fail over to the survivor on the very
            # next request (cache off-path: /keyword is never cached).
            recovered_at = None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                status, _, _ = _get(port, "/keyword?dataset=shard-b&q=patent")
                if status == 200:
                    recovered_at = time.monotonic()
                    break
                time.sleep(0.02)
            assert recovered_at is not None, "dataset never recovered"
            assert runtime.router.worker_for("shard-b") == survivor
            assert runtime.router.metrics.proxy_retries >= 1

            # The supervisor replaces the dead process; once its replacement
            # reports healthy, the dataset moves home again.
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                runtime.probe_workers()
                handle = runtime.router._handles[victim]
                if handle.healthy and handle.generation > victim_generation:
                    break
                time.sleep(0.05)
            handle = runtime.router._handles[victim]
            assert handle.healthy and handle.generation == victim_generation + 1
            assert runtime.router.metrics.worker_restarts >= 1
            assert runtime.router.worker_for("shard-b") == victim
            status, _, _ = _get(port, "/keyword?dataset=shard-b&q=patent")
            assert status == 200
            # Health state (edit counters) replayed from the new process.
            runtime.probe_workers()
            assert set(handle.edit_counters) == set(shard_paths)
            # Sessions are worker-local: the crashed worker's session is
            # gone (404), and the 404 prunes the router's registry entry.
            status, _, _ = _get(port, f"/session/{doomed_session}/refresh")
            assert status == 404
            assert doomed_session not in runtime.router._sessions

    def test_overload_propagates_503_with_retry_after(self, shard_paths):
        config = GraphVizDBConfig(
            service=ServiceConfig(
                max_workers=1, max_queue_depth=1, coalesce_max_batch=1
            ),
            cluster=ClusterConfig(
                num_workers=1, worker_threads=1, cache_capacity=0,
                health_interval_seconds=0.5,
            ),
        )
        with ClusterRuntime(shard_paths, config=config) as runtime:
            port = runtime.port
            statuses: list[int] = []
            lock = threading.Lock()

            def client(index: int) -> None:
                # Distinct layers dodge every dedup layer; payload builds
                # keep the single worker thread busy.
                status, _, headers = _get(
                    port, f"/window?dataset=shard-a&payload=1&_client={index}"
                )
                with lock:
                    statuses.append(status)
                    if status == 503:
                        assert headers.get("Retry-After") == "1"

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(12)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert statuses.count(200) >= 1
            assert statuses.count(503) >= 1, statuses

    def test_bind_failure_terminates_spawned_fleet(self, shard_paths):
        import multiprocessing
        import socket

        before = {process.pid for process in multiprocessing.active_children()}
        squatter = socket.socket()
        try:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            with pytest.raises(OSError):
                ClusterRuntime(
                    shard_paths, config=_cluster_config(),
                    port=squatter.getsockname()[1],
                )
        finally:
            squatter.close()
        # The workers spawned before the failed bind must not survive it
        # (other tests' clusters may be alive: only *new* children count).
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            leaked = [
                process for process in multiprocessing.active_children()
                if process.name.startswith("graphvizdb-")
                and process.pid not in before
            ]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked

    def test_drain_rejects_new_requests_and_terminates_fleet(self, shard_paths):
        runtime = ClusterRuntime(shard_paths, config=_cluster_config())
        port = runtime.port
        status, _, _ = _get(port, "/window?dataset=shard-a")
        assert status == 200
        processes = [
            handle.process for handle in runtime.router._handles.values()
        ]
        runtime.close()
        assert all(not process.is_alive() for process in processes)
        with pytest.raises(OSError):
            _get(port, "/window?dataset=shard-a", timeout=2.0)

"""Tests for the multi-process cluster subsystem (``repro.cluster``).

Unit coverage for rendezvous hashing, the cross-request window cache and the
metrics merge, plus live end-to-end coverage: a real 2-worker fleet behind a
real router socket — queries, sessions, aggregated metrics, worker crash /
restart with dataset failover, overload (503 + ``Retry-After``) propagation,
and graceful drain.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import threading
import time

import pytest

from repro import faults
from repro.cluster.cache import WindowResultCache
from repro.cluster.hashing import (
    rendezvous_owner,
    rendezvous_ranking,
    rendezvous_replicas,
)
from repro.cluster.replication import ReplicaJournalCopy, replica_journal_path
from repro.cluster.resilience import CircuitBreaker, jittered_backoff
from repro.cluster.router import ClusterRouter, ClusterRuntime, merge_summaries
from repro.config import ClusterConfig, GraphVizDBConfig, ServiceConfig
from repro.core.monitoring import ServiceMetrics
from repro.errors import ClusterError, JournalError
from repro.faults import FaultPlan, FaultRule
from repro.service.pool import DatasetPool
from repro.storage.sqlite_backend import save_to_sqlite
from repro.writes.journal import encode_journal_frame, verify_journal


class TestRendezvousHashing:
    WORKERS = ["w0", "w1", "w2", "w3"]
    DATASETS = [f"dataset-{i}" for i in range(64)]

    def test_owner_is_deterministic_and_member(self):
        for dataset in self.DATASETS:
            owner = rendezvous_owner(dataset, self.WORKERS)
            assert owner in self.WORKERS
            assert owner == rendezvous_owner(dataset, list(reversed(self.WORKERS)))

    def test_empty_fleet_has_no_owner(self):
        assert rendezvous_owner("anything", []) is None

    def test_balance(self):
        counts = {worker: 0 for worker in self.WORKERS}
        for dataset in self.DATASETS:
            counts[rendezvous_owner(dataset, self.WORKERS)] += 1
        # 64 datasets over 4 workers: every worker should own some.
        assert all(count > 0 for count in counts.values())

    def test_minimal_disruption_on_worker_loss(self):
        before = {d: rendezvous_owner(d, self.WORKERS) for d in self.DATASETS}
        survivors = [w for w in self.WORKERS if w != "w2"]
        for dataset, owner in before.items():
            after = rendezvous_owner(dataset, survivors)
            if owner != "w2":
                assert after == owner  # unaffected datasets do not move
            else:
                assert after in survivors

    def test_ranking_head_is_owner_and_failover_matches(self):
        for dataset in self.DATASETS:
            ranking = rendezvous_ranking(dataset, self.WORKERS)
            assert ranking[0] == rendezvous_owner(dataset, self.WORKERS)
            survivors = [w for w in self.WORKERS if w != ranking[0]]
            assert ranking[1] == rendezvous_owner(dataset, survivors)


class TestWindowResultCache:
    def test_hit_miss_and_metrics(self):
        metrics = ServiceMetrics()
        cache = WindowResultCache(capacity=4, metrics=metrics)
        assert cache.get("k1") is None
        cache.put("k1", "ds", 200, b"payload")
        entry = cache.get("k1")
        assert entry is not None and entry.body == b"payload"
        assert metrics.window_cache_hits == 1
        assert metrics.window_cache_misses == 1

    def test_capacity_eviction_is_lru(self):
        cache = WindowResultCache(capacity=2)
        cache.put("a", "ds", 200, b"1")
        cache.put("b", "ds", 200, b"2")
        assert cache.get("a") is not None  # refresh a; b becomes LRU
        cache.put("c", "ds", 200, b"3")
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None

    def test_byte_budget_eviction(self):
        cache = WindowResultCache(capacity=100, max_bytes=100)
        cache.put("a", "ds", 200, b"x" * 60)
        cache.put("b", "ds", 200, b"y" * 60)  # 120 bytes > budget: evict a
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.total_bytes == 60

    def test_byte_budget_never_evicts_last_entry(self):
        cache = WindowResultCache(capacity=10, max_bytes=10)
        cache.put("huge", "ds", 200, b"z" * 1000)
        assert cache.get("huge") is not None

    def test_invalidate_dataset(self):
        metrics = ServiceMetrics()
        cache = WindowResultCache(capacity=10, metrics=metrics)
        cache.put("a", "ds1", 200, b"1")
        cache.put("b", "ds2", 200, b"2")
        assert cache.invalidate_dataset("ds1") == 1
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert metrics.window_cache_invalidations == 1

    def test_observe_edit_counters(self):
        cache = WindowResultCache(capacity=10)
        cache.put("a", "ds1", 200, b"1")
        # First observation only records the baseline.
        assert cache.observe_edit_counters({"ds1": 5}) == 0
        assert cache.get("a") is not None
        # Unchanged counter: nothing dropped.
        assert cache.observe_edit_counters({"ds1": 5}) == 0
        # Moved counter (any difference, including a reset): drop.
        assert cache.observe_edit_counters({"ds1": 7}) == 1
        assert cache.get("a") is None
        cache.put("b", "ds1", 200, b"2", counter=cache.counter_snapshot("ds1"))
        assert cache.observe_edit_counters({"ds1": 0}) == 1  # eviction reset
        assert cache.get("b") is None

    def test_put_rejects_response_older_than_an_invalidation(self):
        cache = WindowResultCache(capacity=10)
        cache.observe_edit_counters({"ds1": 1})
        snapshot = cache.counter_snapshot("ds1")  # taken before the "query"
        # While the query was in flight, an edit moved the counter and the
        # invalidation ran — the pre-edit response must not enter the cache.
        cache.observe_edit_counters({"ds1": 2})
        cache.put("stale", "ds1", 200, b"pre-edit", counter=snapshot)
        assert cache.get("stale") is None
        # A response computed after the snapshot refreshed is accepted.
        cache.put("fresh", "ds1", 200, b"post", counter=cache.counter_snapshot("ds1"))
        assert cache.get("fresh") is not None

    def test_zero_capacity_disables(self):
        cache = WindowResultCache(capacity=0)
        cache.put("a", "ds", 200, b"1")
        assert cache.get("a") is None
        assert len(cache) == 0


class TestMergeSummaries:
    def test_sums_numbers_and_maxes_peaks(self):
        merged = merge_summaries([
            {"requests": {"admitted": 3}, "peak_queue_depth": 4, "name": "a"},
            {"requests": {"admitted": 5}, "peak_queue_depth": 2, "name": "b"},
        ])
        assert merged["requests"]["admitted"] == 8
        assert merged["peak_queue_depth"] == 4
        assert merged["name"] == "b"  # non-numeric: last wins

    def test_nested_dicts_merge_per_key(self):
        merged = merge_summaries([
            {"queue_depth": {"ds1": 1}},
            {"queue_depth": {"ds1": 2, "ds2": 3}},
        ])
        assert merged["queue_depth"] == {"ds1": 3, "ds2": 3}


class TestPoolMemoryBudget:
    def test_resident_bytes_estimated_and_summed(self, patent_result, tmp_path):
        path = tmp_path / "budget.db"
        save_to_sqlite(patent_result.database, path)
        pool = DatasetPool(capacity=4, max_resident_bytes=1 << 40)
        entry = pool.get(path)
        assert entry.resident_bytes > 0
        assert pool.total_resident_bytes() == entry.resident_bytes

    def test_budget_evicts_lru_but_keeps_newest(self, patent_result, tmp_path):
        paths = []
        for index in range(3):
            path = tmp_path / f"shard{index}.db"
            save_to_sqlite(patent_result.database, path)
            paths.append(path)
        probe_pool = DatasetPool(capacity=4, max_resident_bytes=1 << 40)
        one_dataset = probe_pool.get(paths[0]).resident_bytes
        # Budget fits one dataset but not two: each open evicts the previous.
        pool = DatasetPool(capacity=4, max_resident_bytes=int(one_dataset * 1.5))
        pool.get(paths[0])
        pool.get(paths[1])
        assert len(pool) == 1
        assert pool.peek(paths[1]) is not None and pool.peek(paths[0]) is None
        # A dataset larger than the whole budget still serves (never evict
        # the entry just opened).
        tiny = DatasetPool(capacity=4, max_resident_bytes=1)
        tiny.get(paths[2])
        assert len(tiny) == 1

    def test_budget_disabled_skips_estimation(self, patent_result, tmp_path):
        path = tmp_path / "nobudget.db"
        save_to_sqlite(patent_result.database, path)
        pool = DatasetPool(capacity=2)
        assert pool.get(path).resident_bytes == 0
        assert pool.total_resident_bytes() == 0

    def test_rejects_negative_budget(self):
        with pytest.raises(Exception):
            DatasetPool(capacity=2, max_resident_bytes=-1)


# --------------------------------------------------------------------------
# Live cluster
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def shard_paths(patent_result, tmp_path_factory):
    """Three SQLite shards of the small patent dataset."""
    base = tmp_path_factory.mktemp("cluster-shards")
    paths = {}
    for name in ("shard-a", "shard-b", "shard-c"):
        path = base / f"{name}.db"
        save_to_sqlite(patent_result.database, path)
        paths[name] = str(path)
    return paths


def _cluster_config(**cluster_kwargs) -> GraphVizDBConfig:
    cluster_kwargs.setdefault("num_workers", 2)
    cluster_kwargs.setdefault("health_interval_seconds", 0.1)
    cluster_kwargs.setdefault("restart_backoff_seconds", 0.01)
    return GraphVizDBConfig(cluster=ClusterConfig(**cluster_kwargs))


def _get(port: int, path: str, timeout: float = 30.0, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        return response.status, json.loads(response.read()), dict(
            response.getheaders()
        )
    finally:
        connection.close()


@pytest.fixture(scope="module")
def live_cluster(shard_paths):
    """A running 2-worker cluster shared by the read-only live tests."""
    with ClusterRuntime(shard_paths, config=_cluster_config()) as runtime:
        yield runtime


class TestClusterLive:
    def test_rejects_empty_or_zero_worker_configs(self, shard_paths):
        with pytest.raises(ClusterError):
            ClusterRuntime({}, config=_cluster_config())
        with pytest.raises(ClusterError):
            ClusterRuntime(shard_paths, config=_cluster_config(num_workers=0))

    def test_datasets_and_assignment(self, live_cluster):
        status, body, _ = _get(live_cluster.port, "/datasets")
        assert status == 200
        assert body["datasets"] == ["shard-a", "shard-b", "shard-c"]
        assignment = live_cluster.health_summary()["assignment"]
        assert set(assignment) == set(body["datasets"])
        assert all(owner in ("w0", "w1") for owner in assignment.values())

    def test_window_query_and_cross_request_cache(self, live_cluster):
        target = "/window?dataset=shard-a&payload=1"
        status, body, _ = _get(live_cluster.port, target)
        assert status == 200 and body["meta"]["num_objects"] > 0
        before = live_cluster.router.metrics.window_cache_hits
        status2, body2, _ = _get(live_cluster.port, target)
        assert status2 == 200 and body2 == body
        assert live_cluster.router.metrics.window_cache_hits == before + 1
        # Same window, different parameter order: same canonical cache key.
        reordered = "/window?payload=1&dataset=shard-a"
        status3, body3, _ = _get(live_cluster.port, reordered)
        assert status3 == 200 and body3 == body
        assert live_cluster.router.metrics.window_cache_hits == before + 2

    def test_keyword_and_nearest_proxy(self, live_cluster):
        status, body, _ = _get(
            live_cluster.port, "/keyword?dataset=shard-b&q=patent&limit=2"
        )
        assert status == 200 and body["num_matches"] <= 2
        status, body, _ = _get(
            live_cluster.port, "/nearest?dataset=shard-c&x=0&y=0&k=2"
        )
        assert status == 200 and len(body["rows"]) == 2

    def test_sessions_route_to_owner(self, live_cluster):
        status, body, _ = _get(live_cluster.port, "/session/new?dataset=shard-a")
        assert status == 200
        session_id = body["session_id"]
        status, body, _ = _get(live_cluster.port, f"/session/{session_id}/refresh")
        assert status == 200 and body["num_objects"] > 0
        status, body, _ = _get(live_cluster.port, f"/session/{session_id}/close")
        assert status == 200 and body["closed"] is True
        status, _, _ = _get(live_cluster.port, f"/session/{session_id}/refresh")
        assert status == 404

    def test_unknown_dataset_and_missing_param(self, live_cluster):
        status, _, _ = _get(live_cluster.port, "/window?dataset=missing")
        assert status == 404
        status, _, _ = _get(live_cluster.port, "/window")
        assert status == 400

    def test_metrics_aggregate_across_workers(self, live_cluster):
        _get(live_cluster.port, "/keyword?dataset=shard-a&q=patent")
        _get(live_cluster.port, "/keyword?dataset=shard-c&q=patent")
        status, body, _ = _get(live_cluster.port, "/metrics")
        assert status == 200
        assert body["requests"]["admitted"] >= 2  # merged across both workers
        assert body["cluster"]["proxied_requests"] >= 2
        assert set(body["router"]["workers"]) == {"w0", "w1"}

    def test_health_endpoint(self, live_cluster):
        status, body, _ = _get(live_cluster.port, "/health")
        assert status == 200 and body["status"] == "ok"
        assert all(worker["healthy"] for worker in body["workers"].values())

    def test_trace_id_propagates_router_to_worker(self, live_cluster):
        # One client-pinned trace id must follow the request through the
        # router onto the worker, come back in the response, and be queryable
        # on the router with the worker's span tree grafted under the proxy.
        trace_id = "c1d2e3f4a5b60718"
        status, body, headers = _get(
            live_cluster.port,
            "/keyword?dataset=shard-b&q=traceprobe",
            headers={"X-GVDB-Trace-Id": trace_id},
        )
        assert status == 200, body
        echoed = {key.lower(): value for key, value in headers.items()}
        assert echoed.get("x-gvdb-trace-id") == trace_id

        status, tree, _ = _get(live_cluster.port, f"/debug/trace/{trace_id}")
        assert status == 200
        assert tree["trace_id"] == trace_id
        assert tree["root"]["name"] == "router GET /keyword"
        proxy_spans = [
            span for span in tree["root"]["children"] if span["name"] == "proxy"
        ]
        assert proxy_spans, tree["root"]["children"]
        proxy = proxy_spans[0]
        assert proxy["annotations"]["dataset"] == "shard-b"
        # The worker's own span tree is grafted under the proxy hop — same id
        # on both tiers, so the router view shows where the time really went.
        worker_roots = [
            child for child in proxy["children"]
            if child["name"].startswith("worker GET")
        ]
        assert worker_roots, proxy["children"]
        worker_phases = {span["name"] for span in worker_roots[0]["children"]}
        assert "keyword" in worker_phases

    def test_router_minted_trace_and_slow_log_shape(self, live_cluster):
        status, _, headers = _get(live_cluster.port, "/datasets")
        assert status == 200
        minted = {key.lower(): value for key, value in headers.items()}.get(
            "x-gvdb-trace-id"
        )
        assert minted and len(minted) == 16
        status, slow, _ = _get(live_cluster.port, "/debug/slow?n=5")
        assert status == 200
        assert set(slow) == {"threshold_seconds", "traces"}
        assert len(slow["traces"]) <= 5


class TestClusterFailure:
    def test_worker_crash_failover_and_restart(self, shard_paths):
        with ClusterRuntime(shard_paths, config=_cluster_config()) as runtime:
            port = runtime.port
            for name in shard_paths:
                status, _, _ = _get(port, f"/window?dataset={name}")
                assert status == 200
            assignment = runtime.health_summary()["assignment"]
            victim = assignment["shard-b"]
            survivor = next(w for w in ("w0", "w1") if w != victim)
            victim_generation = runtime.router._handles[victim].generation
            status, body, _ = _get(port, "/session/new?dataset=shard-b")
            assert status == 200
            doomed_session = body["session_id"]
            runtime.router._handles[victim].process.kill()

            # The victim's datasets fail over to the survivor on the very
            # next request (a keyword probe no one issued before, so the
            # result cache can't answer it — the miss must hit a worker).
            recovered_at = None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                status, _, _ = _get(port, "/keyword?dataset=shard-b&q=patent")
                if status == 200:
                    recovered_at = time.monotonic()
                    break
                time.sleep(0.02)
            assert recovered_at is not None, "dataset never recovered"
            assert runtime.router.worker_for("shard-b") == survivor
            assert runtime.router.metrics.proxy_retries >= 1

            # The supervisor replaces the dead process; once its replacement
            # reports healthy, the dataset moves home again.
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                runtime.probe_workers()
                handle = runtime.router._handles[victim]
                if handle.healthy and handle.generation > victim_generation:
                    break
                time.sleep(0.05)
            handle = runtime.router._handles[victim]
            assert handle.healthy and handle.generation == victim_generation + 1
            assert runtime.router.metrics.worker_restarts >= 1
            assert runtime.router.worker_for("shard-b") == victim
            status, _, _ = _get(port, "/keyword?dataset=shard-b&q=patent")
            assert status == 200
            # Health state (edit counters) replayed from the new process.
            runtime.probe_workers()
            assert set(handle.edit_counters) == set(shard_paths)
            # Session failover: the crashed worker's session is transparently
            # reopened (same public id) on the dataset's current owner from
            # the router-side cursor replica — no client-visible reset.
            status, body, _ = _get(port, f"/session/{doomed_session}/refresh")
            assert status == 200, body
            assert runtime.router.metrics.session_failovers >= 1
            assert runtime.router.sessions.get(doomed_session) is not None

    def test_overload_propagates_503_with_retry_after(self, shard_paths):
        config = GraphVizDBConfig(
            service=ServiceConfig(
                max_workers=1, max_queue_depth=1, coalesce_max_batch=1
            ),
            cluster=ClusterConfig(
                num_workers=1, worker_threads=1, cache_capacity=0,
                health_interval_seconds=0.5,
            ),
        )
        with ClusterRuntime(shard_paths, config=config) as runtime:
            port = runtime.port
            statuses: list[int] = []
            lock = threading.Lock()

            def client(index: int) -> None:
                # Distinct layers dodge every dedup layer; payload builds
                # keep the single worker thread busy.
                status, _, headers = _get(
                    port, f"/window?dataset=shard-a&payload=1&_client={index}"
                )
                with lock:
                    statuses.append(status)
                    if status == 503:
                        # Jittered to decorrelate client retry waves.
                        assert headers.get("Retry-After") in {"1", "2", "3"}

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(12)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert statuses.count(200) >= 1
            assert statuses.count(503) >= 1, statuses

    def test_bind_failure_terminates_spawned_fleet(self, shard_paths):
        import multiprocessing
        import socket

        before = {process.pid for process in multiprocessing.active_children()}
        squatter = socket.socket()
        try:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            with pytest.raises(OSError):
                ClusterRuntime(
                    shard_paths, config=_cluster_config(),
                    port=squatter.getsockname()[1],
                )
        finally:
            squatter.close()
        # The workers spawned before the failed bind must not survive it
        # (other tests' clusters may be alive: only *new* children count).
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            leaked = [
                process for process in multiprocessing.active_children()
                if process.name.startswith("graphvizdb-")
                and process.pid not in before
            ]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked

    def test_drain_rejects_new_requests_and_terminates_fleet(self, shard_paths):
        runtime = ClusterRuntime(shard_paths, config=_cluster_config())
        port = runtime.port
        status, _, _ = _get(port, "/window?dataset=shard-a")
        assert status == 200
        processes = [
            handle.process for handle in runtime.router._handles.values()
        ]
        runtime.close()
        assert all(not process.is_alive() for process in processes)
        with pytest.raises(OSError):
            _get(port, "/window?dataset=shard-a", timeout=2.0)


class TestSessionDirectory:
    def test_record_update_and_reopen_target(self):
        from urllib.parse import parse_qs, urlsplit

        from repro.cluster.sessions import SessionDirectory

        directory = SessionDirectory()
        cursor = directory.record("s1", "ds")
        cursor.update({"layer": 2, "x": 1.5, "y": -2.5, "zoom": 0.5})
        target = cursor.reopen_target()
        params = {
            key: values[-1]
            for key, values in parse_qs(urlsplit(target).query).items()
        }
        assert params["dataset"] == "ds" and params["session_id"] == "s1"
        assert params["layer"] == "2"
        assert float(params["x"]) == 1.5 and float(params["y"]) == -2.5
        assert float(params["zoom"]) == 0.5
        # A malformed cursor report keeps the previous replica.
        cursor.update({"layer": "not-a-number"})
        assert cursor.layer == 2
        # Re-recording the same id keeps the cursor; a dataset change resets.
        assert directory.record("s1", "ds") is cursor
        assert directory.record("s1", "other") is not cursor

    def test_expire_idle(self):
        from repro.cluster.sessions import SessionDirectory

        directory = SessionDirectory()
        directory.record("old", "ds").last_used -= 100.0
        directory.record("fresh", "ds")
        assert directory.expire_idle(50.0) == ["old"]
        assert directory.get("old") is None and directory.get("fresh") is not None
        assert directory.expire_idle(0) == []  # 0 disables


class TestAdaptiveCacheSizing:
    def test_cache_budget_derives_from_pool_budget(self, shard_paths):
        from repro.cluster.router import ClusterRouter

        config = GraphVizDBConfig(
            service=ServiceConfig(pool_max_resident_bytes=100 * 1024 * 1024),
            cluster=ClusterConfig(num_workers=1, cache_memory_fraction=0.25),
        )
        router = ClusterRouter(shard_paths, config=config)
        assert router.cache.max_bytes == 25 * 1024 * 1024

    def test_static_budget_without_pool_budget(self, shard_paths):
        from repro.cluster.router import ClusterRouter

        config = GraphVizDBConfig(cluster=ClusterConfig(
            num_workers=1, cache_max_bytes=7 * 1024 * 1024
        ))
        router = ClusterRouter(shard_paths, config=config)
        assert router.cache.max_bytes == 7 * 1024 * 1024

    def test_fraction_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ClusterConfig(cache_memory_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(cache_memory_fraction=1.5)


def _post(port: int, path: str, body: dict, timeout: float = 30.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("POST", path, body=json.dumps(body).encode())
        response = connection.getresponse()
        return response.status, json.loads(response.read()), dict(
            response.getheaders()
        )
    finally:
        connection.close()


class TestClusterWrites:
    """Live write path: POST through the router, durability across SIGKILL."""

    @pytest.fixture
    def write_shards(self, patent_result, tmp_path):
        """Fresh shards per test — writes must not leak across tests."""
        paths = {}
        for name in ("edit-a", "edit-b"):
            path = tmp_path / f"{name}.db"
            save_to_sqlite(patent_result.database, path)
            paths[name] = str(path)
        return paths

    def test_write_visible_and_cache_invalidated_eagerly(self, write_shards):
        # A long health interval guarantees that only the eager write-path
        # invalidation (not a health probe) can drop the cached window.
        config = _cluster_config(num_workers=2, health_interval_seconds=30.0)
        with ClusterRuntime(write_shards, config=config) as runtime:
            port = runtime.port
            window = (
                "/window?dataset=edit-a"
                "&min_x=100&min_y=100&max_x=110&max_y=110"
            )
            status, body, _ = _get(port, window)
            assert status == 200
            rows_before = body["num_rows"]
            status, cached, _ = _get(port, window)
            assert cached == body
            assert runtime.router.metrics.window_cache_hits >= 1

            status, ack, _ = _post(port, "/edit/add_node?dataset=edit-a", {
                "node_id": 880001, "label": "cluster-edit-probe",
                "x": 105.0, "y": 105.0,
            })
            assert status == 200, ack
            assert ack["seq"] == 1 and ack["edit_counter"] >= 1

            # Read-after-write through the router: the cached pre-edit window
            # must be gone *immediately* (no health-probe staleness window).
            status, after, _ = _get(port, window)
            assert status == 200 and after["num_rows"] == rows_before + 1
            status, keyword, _ = _get(
                port, "/keyword?dataset=edit-a&q=cluster-edit-probe"
            )
            assert status == 200 and keyword["num_matches"] == 1
            # The untouched shard's cache entries were not collateral damage.
            assert runtime.router.metrics.window_cache_invalidations >= 1

    def test_sigkill_after_ack_loses_nothing_and_session_resumes(self, write_shards):
        with ClusterRuntime(write_shards, config=_cluster_config()) as runtime:
            port = runtime.port
            status, body, _ = _get(port, "/session/new?dataset=edit-a")
            assert status == 200
            session_id = body["session_id"]
            status, panned, _ = _get(port, f"/session/{session_id}/pan?dx=50&dy=0")
            assert status == 200
            cursor_before = runtime.router.sessions.get(session_id)
            assert cursor_before is not None and cursor_before.x is not None

            status, ack, _ = _post(port, "/edit/add_node?dataset=edit-a", {
                "node_id": 880002, "label": "post-kill-probe",
                "x": 7.0, "y": 7.0,
            })
            assert status == 200, ack  # acknowledged => journalled on disk

            victim = runtime.health_summary()["assignment"]["edit-a"]
            runtime.router._handles[victim].process.kill()

            # Zero acknowledged-edit loss: the new owner cold-opens the shard
            # and replays the journal tail before serving.
            found = None
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                status, keyword, _ = _get(
                    port, "/keyword?dataset=edit-a&q=post-kill-probe"
                )
                if status == 200:
                    found = keyword
                    break
                time.sleep(0.02)
            assert found is not None and found["num_matches"] == 1

            # The session survives its worker: transparently reopened on the
            # new owner with the replicated cursor (same pan offset).
            status, refreshed, _ = _get(port, f"/session/{session_id}/refresh")
            assert status == 200, refreshed
            assert runtime.router.metrics.session_failovers >= 1
            cursor_after = runtime.router.sessions.get(session_id)
            assert cursor_after is not None
            assert cursor_after.x == pytest.approx(cursor_before.x)

    def test_keyword_and_nearest_cached_and_invalidated_on_write(
        self, write_shards
    ):
        """PR 9 satellite: keyword/kNN responses cache and invalidate
        exactly like windows — read-after-write must see the new node."""
        config = _cluster_config(num_workers=2, health_interval_seconds=30.0)
        with ClusterRuntime(write_shards, config=config) as runtime:
            port = runtime.port
            metrics = runtime.router.metrics
            keyword = "/keyword?dataset=edit-b&q=kw-invalidation-probe"
            status, first, _ = _get(port, keyword)
            assert status == 200 and first["num_matches"] == 0
            status, cached, _ = _get(port, keyword)
            assert cached == first
            assert metrics.keyword_cache_hits >= 1

            status, nn_first, _ = _get(port, "/nearest?dataset=edit-b&x=42&y=42&k=3")
            assert status == 200
            # Canonical keys: parameter order must not split the cache.
            status, nn_cached, _ = _get(port, "/nearest?k=3&y=42&x=42&dataset=edit-b")
            assert nn_cached == nn_first
            assert metrics.nearest_cache_hits >= 1

            status, ack, _ = _post(port, "/edit/add_node?dataset=edit-b", {
                "node_id": 880010, "label": "kw-invalidation-probe",
                "x": 42.0, "y": 42.0,
            })
            assert status == 200, ack

            # Read-after-write through the router (health probes are 30 s
            # away, so only the eager write-path invalidation can explain
            # a fresh result): the pre-edit cached keyword answer is gone.
            keyword_hits = metrics.keyword_cache_hits
            status, after, _ = _get(port, keyword)
            assert status == 200 and after["num_matches"] == 1
            assert metrics.keyword_cache_hits == keyword_hits

    def test_write_to_unknown_dataset_is_404(self, write_shards):
        with ClusterRuntime(write_shards, config=_cluster_config()) as runtime:
            status, _, _ = _post(runtime.port, "/edit/add_node?dataset=nope", {
                "node_id": 1, "x": 0.0, "y": 0.0,
            })
            assert status == 404


class TestReadRepeatMeasurement:
    """Measured keyword/kNN repeat rates (PR 5); the rates justified caching
    them (PR 9), and the counters keep working with the cache in front —
    repeats are recorded before the cache lookup."""

    def test_repeat_rates_recorded_in_metrics(self, live_cluster):
        port = live_cluster.port
        metrics = live_cluster.router.metrics
        keyword_target = "/keyword?dataset=shard-b&q=repeat-rate-probe"
        nearest_target = "/nearest?dataset=shard-b&x=123&y=456"
        kw_requests = metrics.keyword_requests
        kw_repeats = metrics.keyword_repeats
        nn_requests = metrics.nearest_requests
        nn_repeats = metrics.nearest_repeats

        for _ in range(3):
            status, _, _ = _get(port, keyword_target)
            assert status == 200
        status, _, _ = _get(port, nearest_target)
        assert status == 200
        status, _, _ = _get(port, nearest_target)
        assert status == 200
        # Parameter order must not split the repeat window (canonical keys).
        status, _, _ = _get(port, "/nearest?y=456&x=123&dataset=shard-b")
        assert status == 200

        assert metrics.keyword_requests == kw_requests + 3
        assert metrics.keyword_repeats == kw_repeats + 2
        assert metrics.nearest_requests == nn_requests + 3
        assert metrics.nearest_repeats == nn_repeats + 2
        summary = live_cluster.metrics_summary()["cluster"]
        assert summary["keyword_requests"] >= 3
        assert summary["keyword_repeats"] >= 2
        assert summary["nearest_repeats"] >= 2


class TestSessionCommandLevel404:
    """Regression: a command-level 404 must not tear down a live session."""

    def test_focus_on_unknown_node_keeps_session(self, live_cluster):
        port = live_cluster.port
        status, body, _ = _get(port, "/session/new?dataset=shard-a")
        assert status == 200
        session_id = body["session_id"]
        failovers_before = live_cluster.router.metrics.session_failovers
        # focus_on an id that does not exist: the worker's QueryError maps
        # to 404 — a *command* failure on a perfectly alive session.
        status, _, _ = _get(
            port, f"/session/{session_id}/focus_on?node_id=999999999"
        )
        assert status == 404
        # Not a failover, and the session (directory entry included) lives.
        assert live_cluster.router.metrics.session_failovers == failovers_before
        assert live_cluster.router.sessions.get(session_id) is not None
        status, body, _ = _get(port, f"/session/{session_id}/refresh")
        assert status == 200 and body["num_objects"] > 0
        status, body, _ = _get(port, f"/session/{session_id}/close")
        assert status == 200 and body["closed"] is True
        assert live_cluster.router.sessions.get(session_id) is None


class TestStaleArchive:
    """Unit: last-known-good responses retained for degraded-mode serving."""

    def test_eviction_and_invalidation_feed_the_archive(self):
        cache = WindowResultCache(capacity=1, stale_capacity=4)
        cache.put("a", "ds", 200, b"A")
        cache.put("b", "ds", 200, b"B")  # LRU-evicts "a" into the archive
        assert cache.get_stale("a").body == b"A"
        cache.invalidate_dataset("ds")  # archives "b" on the way out
        assert cache.get_stale("b").body == b"B"
        assert len(cache) == 0
        assert cache.summary()["stale_entries"] == 2

    def test_fresh_response_supersedes_the_archive(self):
        cache = WindowResultCache(capacity=1, stale_capacity=4)
        cache.put("a", "ds", 200, b"old")
        cache.invalidate_dataset("ds")
        assert cache.get_stale("a") is not None
        cache.put("a", "ds", 200, b"new")
        # A live response exists again: the stale copy must never shadow it.
        assert cache.get_stale("a") is None
        assert cache.get("a").body == b"new"

    def test_non_200_and_disabled_archive_are_not_kept(self):
        cache = WindowResultCache(capacity=1, stale_capacity=4)
        cache.put("err", "ds", 404, b"nope")
        cache.invalidate_dataset("ds")
        assert cache.get_stale("err") is None  # only good responses archived
        disabled = WindowResultCache(capacity=1, stale_capacity=0)
        disabled.put("a", "ds", 200, b"A")
        disabled.invalidate_dataset("ds")
        assert disabled.get_stale("a") is None

    def test_archive_is_lru_bounded(self):
        cache = WindowResultCache(capacity=1, stale_capacity=2)
        for index in range(4):  # each put evicts (and archives) its predecessor
            cache.put(f"k{index}", "ds", 200, str(index).encode())
        assert cache.get_stale("k0") is None  # pushed out by k1, k2
        assert cache.get_stale("k1") is not None
        assert cache.get_stale("k2") is not None

    def test_clear_drops_the_archive_too(self):
        cache = WindowResultCache(capacity=1, stale_capacity=4)
        cache.put("a", "ds", 200, b"A")
        cache.invalidate_dataset("ds")
        cache.clear()
        assert cache.get_stale("a") is None
        assert cache.summary()["stale_entries"] == 0


class TestCircuitBreaker:
    def test_opens_on_threshold_edge_exactly_once(self):
        breaker = CircuitBreaker(3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # the opening edge
        assert breaker.is_open and breaker.state == "open"
        assert breaker.record_failure() is False  # already open: no new edge

    def test_success_closes_and_resets_the_count(self):
        breaker = CircuitBreaker(2)
        breaker.record_failure()
        assert breaker.record_failure() is True
        assert breaker.record_success() is True  # closed an open circuit
        assert not breaker.is_open and breaker.consecutive_failures == 0
        assert breaker.record_success() is False  # already closed
        # The failure count restarted from zero.
        assert breaker.record_failure() is False

    def test_nonpositive_threshold_never_opens(self):
        breaker = CircuitBreaker(0)
        for _ in range(10):
            assert breaker.record_failure() is False
        assert not breaker.is_open and breaker.state == "closed"


class TestJitteredBackoff:
    def test_zero_base_disables_backoff(self):
        assert jittered_backoff(3, 0.0, 1.0, 0.5) == 0.0

    def test_exponential_growth_capped_at_max(self):
        delays = [jittered_backoff(a, 0.1, 0.5, 0.0) for a in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_extends_within_the_fraction(self):
        rng = random.Random(7)
        for attempt in range(1, 8):
            delay = jittered_backoff(attempt, 0.1, 10.0, 0.5, rng)
            base = 0.1 * 2 ** (attempt - 1)
            assert base <= delay <= base * 1.5


class TestClusterRobustness:
    """Fault-plan driven live coverage: write retries with exactly-once
    semantics across an owner kill, degraded stale window serving with no
    healthy owner, and client deadline admission."""

    @pytest.fixture
    def write_shards(self, patent_result, tmp_path):
        """Fresh shards per test — writes must not leak across tests."""
        paths = {}
        for name in ("edit-a", "edit-b"):
            path = tmp_path / f"{name}.db"
            save_to_sqlite(patent_result.database, path)
            paths[name] = str(path)
        return paths

    def test_edit_retried_across_owner_kill_without_double_apply(
        self, write_shards
    ):
        # SIGKILL the owner after it applied + journalled the edit but
        # before the acknowledgement leaves — the ambiguous failure that
        # makes naive write retries double-apply.
        victim = rendezvous_owner("edit-a", ["w0", "w1"])
        plan = FaultPlan(
            [FaultRule(
                point="worker.response", action="kill", worker=victim,
                match="/edit/", times=1, name="kill-owner-post-apply",
            )],
            seed=11, name="edit-retry",
        )
        config = _cluster_config(fault_plan=plan.to_json())
        try:
            with ClusterRuntime(write_shards, config=config) as runtime:
                port = runtime.port
                status, ack, _ = _post(
                    port,
                    "/edit/add_node?dataset=edit-a"
                    "&idempotency_key=robustness-probe",
                    {
                        "node_id": 990001, "label": "retry-across-kill",
                        "x": 3.0, "y": 4.0,
                    },
                )
                # The router retried on the survivor, whose journal replay
                # already carried the key: deduplicated, not re-applied.
                assert status == 200, ack
                assert ack.get("deduplicated") is True
                assert runtime.router.metrics.edit_retries >= 1
                status, keyword, _ = _get(
                    port, "/keyword?dataset=edit-a&q=retry-across-kill"
                )
                assert status == 200
                assert keyword["num_matches"] == 1  # exactly once
        finally:
            # ClusterRouter.start() installs the plan in this (the router's)
            # process too; the worker-scoped rule can never fire here, but it
            # must not leak into later tests.
            faults.clear()

    def test_degraded_stale_window_read_when_no_owner(self, write_shards):
        # One worker, slow restart, no health probes inside the test window:
        # after the kill the dataset genuinely has no healthy owner.
        config = _cluster_config(
            num_workers=1,
            restart_backoff_seconds=5.0,
            health_interval_seconds=30.0,
        )
        with ClusterRuntime(write_shards, config=config) as runtime:
            port = runtime.port
            window = (
                "/window?dataset=edit-a"
                "&min_x=100&min_y=100&max_x=110&max_y=110"
            )
            status, before, _ = _get(port, window)
            assert status == 200
            # The edit invalidates the cached window into the stale archive.
            status, ack, _ = _post(port, "/edit/add_node?dataset=edit-a", {
                "node_id": 990002, "label": "degraded-probe",
                "x": 105.0, "y": 105.0,
            })
            assert status == 200, ack
            handle = runtime.router._handles["w0"]
            handle.process.kill()
            deadline = time.monotonic() + 10.0
            while handle.process.is_alive() and time.monotonic() < deadline:
                time.sleep(0.02)
            status, body, headers = _get(port, window)
            lowered = {key.lower(): value for key, value in headers.items()}
            assert status == 200
            assert lowered.get("x-gvdb-stale") == "1"
            assert lowered.get("x-gvdb-degraded") == "no-healthy-owner"
            assert body == before  # the pre-edit last-known-good window
            assert runtime.router.metrics.degraded_reads >= 1

    def test_expired_client_deadline_rejected_with_504(self, live_cluster):
        connection = http.client.HTTPConnection(
            "127.0.0.1", live_cluster.port, timeout=30.0
        )
        try:
            connection.request(
                "GET", "/window?dataset=shard-a",
                headers={"X-GVDB-Deadline-Ms": "0"},
            )
            response = connection.getresponse()
            status, body = response.status, json.loads(response.read())
        finally:
            connection.close()
        assert status == 504
        assert "deadline" in body["error"]
        assert live_cluster.router.metrics.deadline_rejections >= 1


class TestRendezvousReplicas:
    WORKERS = ["w0", "w1", "w2", "w3"]

    def test_replicas_are_the_next_ranks_after_the_owner(self):
        ranked = rendezvous_ranking("ds-7", self.WORKERS)
        assert rendezvous_replicas("ds-7", self.WORKERS, 2) == ranked[1:3]
        assert rendezvous_owner("ds-7", self.WORKERS) not in rendezvous_replicas(
            "ds-7", self.WORKERS, 2
        )

    def test_first_replica_is_the_failover_owner(self):
        # The property promotion leans on: the rank-1 replica is exactly the
        # worker rendezvous failover would pick once the owner dies.
        for dataset in (f"ds-{i}" for i in range(16)):
            owner = rendezvous_owner(dataset, self.WORKERS)
            survivors = [w for w in self.WORKERS if w != owner]
            assert rendezvous_owner(dataset, survivors) == rendezvous_replicas(
                dataset, self.WORKERS, 1
            )[0]

    def test_degenerate_inputs(self):
        assert rendezvous_replicas("ds", self.WORKERS, 0) == []
        assert rendezvous_replicas("ds", [], 2) == []
        assert rendezvous_replicas("ds", ["solo"], 2) == []  # nobody left to be one
        # Asking for more replicas than workers caps at the fleet size.
        assert len(rendezvous_replicas("ds", self.WORKERS, 99)) == 3


class TestReplicaJournalCopy:
    def test_verified_append_round_trips_as_a_real_journal(self, tmp_path):
        copy = ReplicaJournalCopy(tmp_path / "ds.db.journal.w1")
        copy.reset()
        for seq in (1, 2):
            frame = encode_journal_frame(seq, "repack", {"n": seq})
            copy.append(seq, "repack", {"n": seq}, frame[4:20].hex())
        assert copy.last_seq == 2
        records = copy.records()
        assert [(r.seq, r.args["n"]) for r in records] == [(1, 1), (2, 2)]
        # Byte-compatible with the canonical journal format: the operator
        # tooling can verify a replica's copy unchanged.
        report = verify_journal(copy.path)
        assert report["records"] == 2 and not report["corrupt"]

    def test_digest_mismatch_rejected_before_the_write(self, tmp_path):
        copy = ReplicaJournalCopy(tmp_path / "ds.db.journal.w1")
        copy.reset()
        with pytest.raises(JournalError):
            copy.append(1, "repack", {"n": 1}, "00" * 16)
        assert copy.records() == []  # nothing reached the file

    def test_reset_starts_a_fresh_epoch(self, tmp_path):
        copy = ReplicaJournalCopy(tmp_path / "ds.db.journal.w1")
        copy.reset()
        frame = encode_journal_frame(5, "repack", {})
        copy.append(5, "repack", {}, frame[4:20].hex())
        copy.reset()
        assert copy.last_seq == 0 and copy.records() == []

    def test_replica_journal_path_is_worker_scoped(self, tmp_path):
        path = replica_journal_path(tmp_path / "ds.db", "w1")
        assert path.name == "ds.db.journal.w1"
        assert path.parent == tmp_path


class _StubReplicaClient:
    """Minimal WorkerClient stand-in for the replica-read selection tests."""

    def __init__(self, status: int = 200, body: bytes = b'{"num_rows": 1}'):
        self.status = status
        self.body = body
        self.calls: list[str] = []

    async def request(self, method, target, body=b"", **kwargs):
        self.calls.append(target)
        return self.status, {}, self.body


class TestReplicaReadSelection:
    """Unit: ``_proxy_replica`` staleness bounds and candidate ranking."""

    def _router(self, shard_paths, monkeypatch, **cluster_kwargs):
        router = ClusterRouter(shard_paths, config=_cluster_config(**cluster_kwargs))
        monkeypatch.setattr(router, "alive_workers", lambda: ["w0", "w1", "w2"])
        monkeypatch.setattr(router, "worker_for", lambda dataset: "w0")
        return router

    def test_replica_within_bound_served_with_provenance(
        self, shard_paths, monkeypatch
    ):
        router = self._router(shard_paths, monkeypatch)
        router._replica_sets["shard-a"] = ("w1",)
        router._replica_status["w1"] = {"shard-a": {"applied_seq": 7, "lag": 2}}
        stub = _StubReplicaClient()
        router._clients["w1"] = stub
        result = asyncio.run(
            router._proxy_replica("/window?dataset=shard-a", "shard-a")
        )
        assert result is not None
        status, body, headers = result
        assert status == 200 and body == stub.body
        assert headers["X-GVDB-Replica"] == "w1"
        assert headers["X-GVDB-Replica-Lag"] == "2"
        assert headers["X-GVDB-Stale"] == "1"  # lag > 0 declared honestly
        assert router.metrics.replica_reads == 1

    def test_zero_lag_replica_is_not_marked_stale(self, shard_paths, monkeypatch):
        router = self._router(shard_paths, monkeypatch)
        router._replica_sets["shard-a"] = ("w1",)
        router._replica_status["w1"] = {"shard-a": {"applied_seq": 7, "lag": 0}}
        router._clients["w1"] = _StubReplicaClient()
        _, _, headers = asyncio.run(
            router._proxy_replica("/window?dataset=shard-a", "shard-a")
        )
        assert "X-GVDB-Stale" not in headers

    def test_lag_past_bound_falls_through(self, shard_paths, monkeypatch):
        router = self._router(
            shard_paths, monkeypatch, replica_max_lag_records=4
        )
        router._replica_sets["shard-a"] = ("w1",)
        router._replica_status["w1"] = {"shard-a": {"applied_seq": 7, "lag": 5}}
        stub = _StubReplicaClient()
        router._clients["w1"] = stub
        result = asyncio.run(
            router._proxy_replica("/window?dataset=shard-a", "shard-a")
        )
        assert result is None  # caller falls through to owner error / archive
        assert stub.calls == []  # the lagging replica was never contacted

    def test_request_header_tightens_the_bound(self, shard_paths, monkeypatch):
        from repro.cluster import router as router_module

        router = self._router(shard_paths, monkeypatch)
        router._replica_sets["shard-a"] = ("w1",)
        router._replica_status["w1"] = {"shard-a": {"applied_seq": 7, "lag": 2}}
        router._clients["w1"] = _StubReplicaClient()
        token = router_module._request_max_staleness.set(1)
        try:
            result = asyncio.run(
                router._proxy_replica("/window?dataset=shard-a", "shard-a")
            )
        finally:
            router_module._request_max_staleness.reset(token)
        assert result is None  # lag 2 > client bound 1

    def test_unknown_watermark_is_never_served(self, shard_paths, monkeypatch):
        router = self._router(shard_paths, monkeypatch)
        router._replica_sets["shard-a"] = ("w1",)
        router._replica_status["w1"] = {"shard-a": {"polls": 3}}  # no applied_seq
        stub = _StubReplicaClient()
        router._clients["w1"] = stub
        assert asyncio.run(
            router._proxy_replica("/window?dataset=shard-a", "shard-a")
        ) is None
        assert stub.calls == []

    def test_most_caught_up_replica_wins(self, shard_paths, monkeypatch):
        router = self._router(shard_paths, monkeypatch)
        router._replica_sets["shard-a"] = ("w1", "w2")
        router._replica_status["w1"] = {"shard-a": {"applied_seq": 5, "lag": 2}}
        router._replica_status["w2"] = {"shard-a": {"applied_seq": 7, "lag": 0}}
        first = _StubReplicaClient()
        second = _StubReplicaClient()
        router._clients["w1"] = first
        router._clients["w2"] = second
        _, _, headers = asyncio.run(
            router._proxy_replica("/window?dataset=shard-a", "shard-a")
        )
        assert headers["X-GVDB-Replica"] == "w2"
        assert first.calls == []  # lower-lag candidate tried first and sufficed


class TestStaleArchiveByteBound:
    """Unit: the archive is bounded by bytes, not just entries (PR 7)."""

    def test_byte_budget_evicts_oldest_archived(self):
        cache = WindowResultCache(
            capacity=1, stale_capacity=10, stale_max_bytes=8
        )
        for key, body in (("a", b"AAAA"), ("b", b"BBBB"), ("c", b"CCCC"),
                          ("d", b"DDDD")):
            cache.put(key, "ds", 200, body)
        # Archiving "c" (via "d"'s eviction) pushed the archive to 12 bytes;
        # the oldest entry ("a") was dropped to get back under 8.
        assert cache.get_stale("a") is None
        assert cache.get_stale("b") is not None
        assert cache.get_stale("c") is not None
        assert cache.summary()["stale_bytes"] == 8

    def test_sole_over_budget_entry_is_kept(self):
        cache = WindowResultCache(
            capacity=1, stale_capacity=10, stale_max_bytes=2
        )
        cache.put("a", "ds", 200, b"AAAA")
        cache.invalidate_dataset("ds")
        # One over-budget megawindow still beats an empty archive mid-incident.
        assert cache.get_stale("a") is not None

    def test_superseded_entry_releases_its_bytes(self):
        cache = WindowResultCache(
            capacity=1, stale_capacity=10, stale_max_bytes=100
        )
        cache.put("a", "ds", 200, b"AAAA")
        cache.invalidate_dataset("ds")
        assert cache.summary()["stale_bytes"] == 4
        cache.put("a", "ds", 200, b"BB")  # fresh response supersedes archive
        assert cache.summary()["stale_bytes"] == 0


class TestReplicationLive:
    """Live fleet: the journal-tail feed, replica catch-up, and promotion."""

    @pytest.fixture
    def repl_shards(self, patent_result, tmp_path):
        """Fresh shards per test — replication state must not leak across."""
        paths = {}
        for name in ("repl-a", "repl-b"):
            path = tmp_path / f"{name}.db"
            save_to_sqlite(patent_result.database, path)
            paths[name] = str(path)
        return paths

    def _wait_for_watermark(self, runtime, replica, dataset, seq, seconds=15.0):
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            marks = runtime.health_summary()["replication"]["watermarks"]
            status = (marks.get(replica) or {}).get(dataset)
            if status and int(status.get("applied_seq", 0)) >= seq:
                return status
            time.sleep(0.05)
        return None

    def _wait_for_subscription(self, runtime, replica, dataset, seconds=15.0):
        """Block until the reconcile pass has subscribed ``replica``.

        Writes made before the subscription exists reach the replica through
        its pool replay of the (shared-filesystem) journal, not the feed —
        tests that assert on *streamed* records must order writes after this.
        """
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            marks = runtime.health_summary()["replication"]["watermarks"]
            status = (marks.get(replica) or {}).get(dataset)
            if isinstance(status, dict) and "applied_seq" in status:
                return status
            time.sleep(0.05)
        return None

    def test_feed_serves_verbatim_records_and_replica_catches_up(
        self, repl_shards
    ):
        config = _cluster_config(restart_backoff_seconds=10.0)
        with ClusterRuntime(repl_shards, config=config) as runtime:
            port = runtime.port
            owner = runtime.health_summary()["assignment"]["repl-a"]
            replica = "w1" if owner == "w0" else "w0"
            # Subscribe first, write after: only records appended while the
            # feed is live are *streamed* (earlier ones arrive via replay).
            assert self._wait_for_subscription(runtime, replica, "repl-a")
            for n in range(3):
                status, ack, _ = _post(port, "/edit/add_node?dataset=repl-a", {
                    "node_id": 770000 + n, "label": f"feed-{n}",
                    "x": 105.0 + n, "y": 105.0,
                })
                assert status == 200, ack

            # The owner's feed endpoint serves the records verbatim, each
            # digest matching the canonical re-encoding byte for byte.
            owner_port = runtime.router._handles[owner].port
            status, frame, _ = _get(
                owner_port, "/journal/tail?dataset=repl-a&from_seq=0"
            )
            assert status == 200
            assert [r["seq"] for r in frame["records"]] == [1, 2, 3]
            assert frame["last_seq"] == 3
            for entry in frame["records"]:
                encoded = encode_journal_frame(
                    entry["seq"], entry["op"], entry["args"]
                )
                assert encoded[4:20].hex() == entry["digest"]
            # Cursor semantics: an up-to-date subscriber gets an empty frame.
            status, drained, _ = _get(
                owner_port, "/journal/tail?dataset=repl-a&from_seq=3"
            )
            assert status == 200
            assert drained["records"] == [] and drained["last_seq"] == 3

            # The rendezvous replica converges to the journal head and says so.
            status = self._wait_for_watermark(runtime, replica, "repl-a", 3)
            assert status is not None, "replica never caught up"
            assert status["lag"] == 0 and status["owner"] == owner

            # Its local journal copy is a verifiable, byte-compatible journal.
            report = verify_journal(
                replica_journal_path(repl_shards["repl-a"], replica)
            )
            assert report["records"] >= 1 and not report["corrupt"]

            # Worker-side replication counters aggregate into /metrics.
            summary = runtime.metrics_summary()
            assert summary["replication"]["polls"] >= 1
            assert summary["replication"]["records_applied"] >= 3

    def test_promotion_after_owner_kill_serves_reads_and_writes_exactly_once(
        self, repl_shards
    ):
        config = _cluster_config(restart_backoff_seconds=10.0)
        with ClusterRuntime(repl_shards, config=config) as runtime:
            port = runtime.port
            labels = [f"promo-{n}" for n in range(5)]
            for n, label in enumerate(labels):
                status, ack, _ = _post(
                    port,
                    "/edit/add_node?dataset=repl-a"
                    f"&idempotency_key=promo-key-{n}",
                    {"node_id": 770100 + n, "label": label,
                     "x": 105.0, "y": 105.0 + n},
                )
                assert status == 200, ack
            owner = runtime.health_summary()["assignment"]["repl-a"]
            replica = "w1" if owner == "w0" else "w0"
            # Let the replica fully catch up so promotion has a warm copy.
            assert self._wait_for_watermark(runtime, replica, "repl-a", 5)

            runtime.router._handles[owner].process.kill()
            killed_at = time.monotonic()

            # The replica is promoted and serving reads within the failure
            # detection + promotion window.
            served = None
            deadline = killed_at + 15.0
            while time.monotonic() < deadline:
                status, keyword, _ = _get(
                    port, "/keyword?dataset=repl-a&q=promo-0"
                )
                if status == 200:
                    served = keyword
                    break
                time.sleep(0.02)
            assert served is not None, "nobody served the dataset after the kill"
            assert runtime.router.metrics.promotions >= 1
            assert runtime.router.metrics.last_promotion_ms > 0.0

            # A client retry of the in-flight write deduplicates across the
            # promotion instead of double-applying (PR 6 contract, new owner).
            status, ack, _ = _post(
                port,
                "/edit/add_node?dataset=repl-a&idempotency_key=promo-key-4",
                {"node_id": 770104, "label": labels[4],
                 "x": 105.0, "y": 109.0},
            )
            assert status == 200, ack
            assert ack.get("deduplicated") is True

            # Zero lost, zero double-applied: every acked write exactly once.
            for label in labels:
                status, keyword, _ = _get(
                    port, f"/keyword?dataset=repl-a&q={label}"
                )
                assert status == 200
                assert keyword["num_matches"] == 1, label

            # The promoted owner accepts brand-new writes too.
            status, ack, _ = _post(port, "/edit/add_node?dataset=repl-a", {
                "node_id": 770200, "label": "post-promotion",
                "x": 106.0, "y": 106.0,
            })
            assert status == 200, ack
            status, keyword, _ = _get(
                port, "/keyword?dataset=repl-a&q=post-promotion"
            )
            assert status == 200 and keyword["num_matches"] == 1

    def test_dropped_feed_stalls_replica_but_promotion_loses_nothing(
        self, repl_shards
    ):
        # Every feed poll on the replica misfires: it can never stream a
        # record.  Promotion must still produce a complete owner, because the
        # drain catches up from the authoritative journal.
        owner = rendezvous_owner("repl-a", ["w0", "w1"])
        replica = "w1" if owner == "w0" else "w0"
        plan = FaultPlan(
            [FaultRule(point="replication.feed", action="error",
                       worker=replica, every=1, name="feed-down")],
            seed=7, name="feed-chaos",
        )
        config = _cluster_config(
            fault_plan=plan.to_json(), restart_backoff_seconds=10.0
        )
        try:
            with ClusterRuntime(repl_shards, config=config) as runtime:
                port = runtime.port
                # Subscribe before writing: the replica's initial pool open
                # must see an empty journal, so everything below can only
                # reach it through the (faulted) feed.
                assert self._wait_for_subscription(runtime, replica, "repl-a")
                labels = [f"lagged-{n}" for n in range(3)]
                for n, label in enumerate(labels):
                    status, ack, _ = _post(
                        port, "/edit/add_node?dataset=repl-a",
                        {"node_id": 770300 + n, "label": label,
                         "x": 105.0, "y": 105.0 + n},
                    )
                    assert status == 200, ack
                # The replica reports the stall honestly instead of serving
                # silently stale answers.
                stalled = None
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    marks = runtime.health_summary()["replication"]["watermarks"]
                    status = (marks.get(replica) or {}).get("repl-a")
                    if status and status.get("last_error"):
                        stalled = status
                        break
                    time.sleep(0.05)
                assert stalled is not None, "replica never reported the fault"
                assert int(stalled["applied_seq"]) == 0

                runtime.router._handles[owner].process.kill()
                found = {}
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline and len(found) < len(labels):
                    for label in labels:
                        if label in found:
                            continue
                        status, keyword, _ = _get(
                            port, f"/keyword?dataset=repl-a&q={label}"
                        )
                        if status == 200:
                            found[label] = keyword["num_matches"]
                    time.sleep(0.02)
                # Every acked record survived, exactly once, despite the
                # replica never having streamed a single one.
                assert found == {label: 1 for label in labels}
        finally:
            faults.clear()

    def test_max_staleness_header_is_tolerated_on_the_wire(self, live_cluster):
        connection = http.client.HTTPConnection(
            "127.0.0.1", live_cluster.port, timeout=30.0
        )
        try:
            connection.request(
                "GET", "/window?dataset=shard-a",
                headers={"X-GVDB-Max-Staleness": "not-a-number"},
            )
            response = connection.getresponse()
            status, _ = response.status, response.read()
        finally:
            connection.close()
        assert status == 200  # a malformed bound is ignored, not an error

"""Unit tests for the concurrent serving subsystem (``repro.service``)."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.config import GraphVizDBConfig, ServiceConfig
from repro.core.editing import GraphEditor
from repro.core.monitoring import ServiceMetrics
from repro.core.query_manager import QueryManager
from repro.core.server import GraphVizDBServer
from repro.errors import ConfigurationError, QueryError, ServiceOverloadedError
from repro.graph.generators import community_graph
from repro.service.frontend import GraphVizDBService, ServiceRuntime
from repro.service.http import serve_http
from repro.service.maintenance import MaintenanceScheduler
from repro.service.pool import DatasetPool
from repro.spatial.geometry import Point
from repro.storage.sqlite_backend import save_to_sqlite


@pytest.fixture(scope="module")
def sqlite_paths(request, tmp_path_factory):
    """Three preprocessed SQLite files (one real dataset saved under 3 names)."""
    patent_result = request.getfixturevalue("patent_result")
    base = tmp_path_factory.mktemp("pool")
    paths = []
    for index in range(3):
        path = base / f"dataset-{index}.db"
        save_to_sqlite(patent_result.database, path)
        paths.append(path)
    return paths


@pytest.fixture
def runtime(patent_result):
    """A running service over the in-memory patent dataset."""
    service = GraphVizDBService(GraphVizDBConfig.small())
    service.register_dataset("patent", patent_result.database)
    with ServiceRuntime(service) as runtime:
        yield runtime


class TestServiceConfig:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.max_workers > 0

    @pytest.mark.parametrize("kwargs", [
        {"max_workers": 0},
        {"max_queue_depth": 0},
        {"coalesce_window_seconds": -0.1},
        {"coalesce_max_batch": 0},
        {"pool_capacity": 0},
        {"pool_idle_seconds": -1},
        {"repack_edit_threshold": 0},
        {"repack_quiescence_seconds": -1},
        {"maintenance_interval_seconds": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**kwargs)


class TestDatasetPool:
    def test_miss_then_hit(self, sqlite_paths):
        metrics = ServiceMetrics()
        pool = DatasetPool(capacity=2, metrics=metrics)
        first = pool.get(sqlite_paths[0])
        again = pool.get(sqlite_paths[0])
        assert first is again
        assert metrics.pool_misses == 1
        assert metrics.pool_hits == 1
        assert first.uses == 2

    def test_lru_eviction_at_capacity(self, sqlite_paths):
        metrics = ServiceMetrics()
        pool = DatasetPool(capacity=2, metrics=metrics)
        pool.get(sqlite_paths[0])
        pool.get(sqlite_paths[1])
        pool.get(sqlite_paths[0])  # refresh 0 so 1 is now LRU
        pool.get(sqlite_paths[2])  # evicts 1
        keys = pool.open_paths()
        assert str(sqlite_paths[1].resolve()) not in keys
        assert str(sqlite_paths[0].resolve()) in keys
        assert metrics.pool_evictions == 1

    def test_open_once_under_concurrency(self, sqlite_paths):
        metrics = ServiceMetrics()
        pool = DatasetPool(capacity=2, metrics=metrics)
        entries = []
        barrier = threading.Barrier(6)

        def open_it():
            barrier.wait()
            entries.append(pool.get(sqlite_paths[0]))

        threads = [threading.Thread(target=open_it) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(entry.database) for entry in entries}) == 1
        assert metrics.pool_misses == 1

    def test_evict_idle(self, sqlite_paths):
        pool = DatasetPool(capacity=2, idle_seconds=0.01)
        pool.get(sqlite_paths[0])
        time.sleep(0.02)
        evicted = pool.evict_idle()
        assert evicted == [str(sqlite_paths[0].resolve())]
        assert len(pool) == 0

    def test_explicit_evict(self, sqlite_paths):
        pool = DatasetPool(capacity=2)
        pool.get(sqlite_paths[0])
        assert pool.evict(sqlite_paths[0]) is True
        assert pool.evict(sqlite_paths[0]) is False


class TestFrontend:
    def test_window_query_matches_direct(self, runtime, patent_result):
        direct = QueryManager(patent_result.database)
        window = direct.default_viewport().window()
        served = runtime.window_query("patent", window)
        expected = direct.window_query(window)
        assert served.rows == expected.rows
        assert served.payload.num_objects == expected.payload.num_objects

    def test_concurrent_identical_windows_coalesce_and_agree(self, patent_result):
        direct = QueryManager(patent_result.database)
        window = direct.default_viewport().window()
        expected = direct.window_query(window)
        # A generous coalescing window so all 8 threads land in one batch even
        # on a loaded CI machine.
        service = GraphVizDBService(GraphVizDBConfig(
            service=ServiceConfig(coalesce_window_seconds=0.1)
        ))
        service.register_dataset("patent", patent_result.database)
        results = []
        barrier = threading.Barrier(8)
        with ServiceRuntime(service) as runtime:
            def client():
                barrier.wait()
                results.append(runtime.window_query("patent", window))

            threads = [threading.Thread(target=client) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            summary = runtime.metrics_summary()
        assert len(results) == 8
        assert all(result.rows == expected.rows for result in results)
        assert summary["coalescer"]["requests"] >= 8
        assert summary["coalescer"]["batches"] < summary["coalescer"]["requests"]
        assert summary["coalescer"]["duplicate_window_hits"] > 0

    def test_distinct_windows_in_one_batch_agree(self, runtime, patent_result):
        direct = QueryManager(patent_result.database)
        base = direct.default_viewport().window()
        windows = [base.translated(i * base.width / 3, 0) for i in range(4)]
        expected = [direct.window_query(w).rows for w in windows]
        results = {}
        barrier = threading.Barrier(4)

        def client(index):
            barrier.wait()
            results[index] = runtime.window_query("patent", windows[index])

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(4):
            assert results[index].rows == expected[index]

    def test_keyword_nearest_and_unknown_dataset(self, runtime, patent_result):
        search = runtime.keyword_search("patent", "patent", limit=3)
        assert search.num_matches <= 3
        rows = runtime.nearest("patent", Point(0.0, 0.0), k=5)
        assert 0 < len(rows) <= 5
        with pytest.raises(QueryError):
            runtime.window_query("nope")

    def test_session_lifecycle(self, runtime):
        session_id = runtime.create_session("patent")
        refreshed = runtime.session_command(session_id, "refresh")
        panned = runtime.session_command(session_id, "pan", dx_px=120, dy_px=40)
        assert panned.window != refreshed.window
        with pytest.raises(QueryError):
            runtime.session_command(session_id, "teleport")
        with pytest.raises(QueryError):
            runtime.session_command("missing", "refresh")
        assert runtime.close_session(session_id) is True
        assert runtime.close_session(session_id) is False

    def test_overload_rejects_with_explicit_error(self, patent_result):
        config = GraphVizDBConfig(
            service=ServiceConfig(
                max_workers=1,
                max_queue_depth=1,
                # keep batches open long enough that a second request finds
                # the first still admitted
                coalesce_window_seconds=0.2,
            )
        )
        service = GraphVizDBService(config)
        service.register_dataset("patent", patent_result.database)
        with ServiceRuntime(service) as runtime:
            window = QueryManager(patent_result.database).default_viewport().window()
            first = asyncio.run_coroutine_threadsafe(
                service.window_query("patent", window), runtime._loop
            )
            deadline = time.monotonic() + 2.0
            while (
                service.queue_depth("patent") == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                runtime.window_query("patent", window)
            assert excinfo.value.dataset == "patent"
            assert first.result(timeout=5).rows is not None
            assert service.metrics.requests_rejected == 1

    def test_server_facade_start_service(self, small_config):
        server = GraphVizDBServer(small_config)
        graph = community_graph(num_communities=2, community_size=15, seed=9)
        graph.name = "communities"
        server.load_dataset(graph)
        with server.start_service() as runtime:
            result = runtime.window_query("communities")
            assert result.num_objects > 0

    def test_sqlite_datasets_via_pool(self, sqlite_paths):
        service = GraphVizDBService(GraphVizDBConfig.small())
        service.attach_sqlite("a", sqlite_paths[0])
        service.attach_sqlite("b", sqlite_paths[1])
        with ServiceRuntime(service) as runtime:
            first = runtime.window_query("a")
            second = runtime.window_query("b")
            assert first.rows == second.rows  # same saved dataset
            summary = runtime.metrics_summary()
            assert summary["pool"]["misses"] == 2


class TestMaintenance:
    def test_run_once_repacks_after_quiescence(self, patent_result, tmp_path):
        from repro.storage.sqlite_backend import load_from_sqlite

        path = tmp_path / "maint.db"
        save_to_sqlite(patent_result.database, path)
        database = load_from_sqlite(path)
        editor = GraphEditor(database, layer=0)
        row = next(iter(database.table(0).scan()))
        editor.rename_node(row.node1_id, "Renamed")
        assert database.table(0).rtree.supports_updates  # demoted by the edit

        metrics = ServiceMetrics()
        scheduler = MaintenanceScheduler(
            config=ServiceConfig(
                repack_edit_threshold=1, repack_quiescence_seconds=10.0
            ),
            metrics=metrics,
        )
        scheduler.watch("maint", database)
        # Not quiesced yet: the edit just happened, threshold met but too fresh.
        assert scheduler.run_once()["repacked"] == {}
        scheduler.config = ServiceConfig(
            repack_edit_threshold=1, repack_quiescence_seconds=0.0
        )
        outcome = scheduler.run_once()
        assert outcome["repacked"] == {"maint": [0]}
        assert not database.table(0).rtree.supports_updates
        assert database.table(0).edits_since_repack == 0
        assert metrics.repack_runs == 1
        # A second cycle finds nothing to do.
        assert scheduler.run_once()["repacked"] == {}

    def test_background_thread_lifecycle(self):
        scheduler = MaintenanceScheduler(
            config=ServiceConfig(maintenance_interval_seconds=0.01)
        )
        scheduler.start()
        assert scheduler.running
        scheduler.start()  # idempotent
        scheduler.stop()
        assert not scheduler.running

    def test_watch_unwatch(self, patent_result):
        scheduler = MaintenanceScheduler()
        scheduler.watch("one", patent_result.database)
        assert scheduler.watched() == ["one"]
        scheduler.unwatch("one")
        assert scheduler.watched() == []

    def test_cycle_survives_failing_hook_and_database(self, patent_result):
        class ExplodingDatabase:
            def layers_due_for_repack(self, **kwargs):
                raise RuntimeError("boom")

        scheduler = MaintenanceScheduler(
            config=ServiceConfig(repack_edit_threshold=1,
                                 repack_quiescence_seconds=0.0)
        )
        scheduler.watch("bad", ExplodingDatabase())
        scheduler.watch("good", patent_result.database)
        hook_calls = []

        def bad_hook():
            hook_calls.append(True)
            raise ValueError("hook boom")

        scheduler.add_hook(bad_hook)
        outcome = scheduler.run_once()  # must not raise
        assert hook_calls == [True]
        assert isinstance(scheduler.last_error, ValueError)
        assert outcome["repacked"] == {}  # the good database had nothing due

    def test_idle_sessions_expire(self, patent_result):
        service = GraphVizDBService(GraphVizDBConfig(
            service=ServiceConfig(session_idle_seconds=0.01)
        ))
        service.register_dataset("patent", patent_result.database)
        with ServiceRuntime(service) as runtime:
            session_id = runtime.create_session("patent")
            time.sleep(0.03)
            expired = service._expire_idle_sessions()
            assert session_id in expired
            with pytest.raises(QueryError):
                runtime.session_command(session_id, "refresh")


class TestHttp:
    @pytest.fixture
    def http_server(self, patent_result):
        service = GraphVizDBService(GraphVizDBConfig.small())
        service.register_dataset("patent", patent_result.database)
        started = threading.Event()
        stop = {}

        def run_loop():
            async def main():
                async with service:
                    server = await serve_http(service, port=0)
                    stop["port"] = server.sockets[0].getsockname()[1]
                    stop["loop"] = asyncio.get_running_loop()
                    stop["event"] = asyncio.Event()
                    started.set()
                    await stop["event"].wait()
                    server.close()
                    await server.wait_closed()

            asyncio.run(main())

        thread = threading.Thread(target=run_loop, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        yield stop["port"]
        stop["loop"].call_soon_threadsafe(stop["event"].set)
        thread.join(timeout=10)

    def _get(self, port, path):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())

    def test_endpoints(self, http_server):
        port = http_server
        status, body = self._get(port, "/datasets")
        assert status == 200 and body["datasets"] == ["patent"]
        status, body = self._get(port, "/window?dataset=patent")
        assert status == 200 and body["num_objects"] > 0
        status, body = self._get(port, "/window?dataset=patent&payload=1")
        assert status == 200 and len(body["payload"]["nodes"]) > 0
        status, body = self._get(port, "/keyword?dataset=patent&q=patent&limit=2")
        assert status == 200 and body["num_matches"] <= 2
        status, body = self._get(port, "/nearest?dataset=patent&x=0&y=0&k=2")
        assert status == 200 and len(body["rows"]) == 2
        status, body = self._get(port, "/metrics")
        assert status == 200 and body["requests"]["admitted"] >= 4

    def test_http_sessions(self, http_server):
        port = http_server
        status, body = self._get(port, "/session/new?dataset=patent")
        assert status == 200
        session_id = body["session_id"]
        status, body = self._get(port, f"/session/{session_id}/refresh")
        assert status == 200 and body["num_objects"] > 0
        status, body = self._get(port, f"/session/{session_id}/pan?dx=100&dy=0")
        assert status == 200
        status, body = self._get(port, f"/session/{session_id}/search?q=patent&limit=2")
        assert status == 200 and body["num_matches"] <= 2
        status, body = self._get(port, f"/session/{session_id}/close")
        assert status == 200 and body["closed"] is True
        status, _ = self._get(port, f"/session/{session_id}/refresh")
        assert status == 404  # closed sessions are gone

    def test_http_errors(self, http_server):
        port = http_server
        status, _ = self._get(port, "/window?dataset=missing")
        assert status == 404
        status, _ = self._get(port, "/window")
        assert status == 400  # dataset parameter missing
        status, _ = self._get(port, "/nope")
        assert status == 404

    def test_health_endpoint_reports_edit_counters(self, http_server, patent_result):
        port = http_server
        status, body = self._get(port, "/health")
        assert status == 200 and body["status"] == "ok"
        assert body["datasets"]["patent"] == patent_result.database.edit_counter()

    def test_keepalive_serves_sequential_requests_on_one_connection(
        self, http_server
    ):
        connection = http.client.HTTPConnection("127.0.0.1", http_server, timeout=10)
        try:
            for _ in range(3):
                connection.request("GET", "/datasets")
                response = connection.getresponse()
                assert response.status == 200
                assert response.getheader("Connection") == "keep-alive"
                assert json.loads(response.read())["datasets"] == ["patent"]
        finally:
            connection.close()

    def test_connection_close_header_is_honoured(self, http_server):
        connection = http.client.HTTPConnection("127.0.0.1", http_server, timeout=10)
        try:
            connection.request("GET", "/datasets", headers={"Connection": "close"})
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()


class TestHttpHardening:
    def _serve(self, service, **kwargs):
        """Run ``serve_http`` on a background loop; yields the bound port."""
        started = threading.Event()
        stop: dict = {}

        def run_loop():
            async def main():
                async with service:
                    server = await serve_http(service, port=0, **kwargs)
                    stop["port"] = server.sockets[0].getsockname()[1]
                    stop["loop"] = asyncio.get_running_loop()
                    stop["event"] = asyncio.Event()
                    started.set()
                    await stop["event"].wait()
                    server.close()
                    await server.wait_closed()

            asyncio.run(main())

        thread = threading.Thread(target=run_loop, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        stop["thread"] = thread
        return stop

    def _stop(self, stop):
        stop["loop"].call_soon_threadsafe(stop["event"].set)
        stop["thread"].join(timeout=10)

    def test_request_timeout_returns_504(self, patent_result):
        service = GraphVizDBService(GraphVizDBConfig.small())
        service.register_dataset("patent", patent_result.database)

        async def slow_window(*args, **kwargs):
            await asyncio.sleep(0.5)

        service.window_query = slow_window  # type: ignore[method-assign]
        stop = self._serve(service, request_timeout_seconds=0.05)
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", stop["port"], timeout=10
            )
            connection.request("GET", "/window?dataset=patent")
            response = connection.getresponse()
            assert response.status == 504
            assert b"budget" in response.read()
            # The connection survives a timed-out request.
            connection.request("GET", "/datasets")
            assert connection.getresponse().status == 200
            connection.close()
        finally:
            self._stop(stop)

    def test_keepalive_idle_expiry_closes_connection(self, patent_result):
        service = GraphVizDBService(GraphVizDBConfig.small())
        service.register_dataset("patent", patent_result.database)
        stop = self._serve(service, keepalive_seconds=0.1)
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", stop["port"], timeout=10
            )
            connection.request("GET", "/datasets")
            assert connection.getresponse().status == 200
            time.sleep(0.4)  # idle past the keep-alive window
            with pytest.raises((http.client.HTTPException, OSError)):
                connection.request("GET", "/datasets")
                response = connection.getresponse()
                response.read()
            connection.close()
        finally:
            self._stop(stop)

    def test_keepalive_zero_restores_connection_per_request(self, patent_result):
        service = GraphVizDBService(GraphVizDBConfig.small())
        service.register_dataset("patent", patent_result.database)
        stop = self._serve(service, keepalive_seconds=0)
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", stop["port"], timeout=10
            )
            connection.request("GET", "/datasets")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
            response.read()
            connection.close()
        finally:
            self._stop(stop)


class TestHttpEdits:
    """The POST /edit/* write API on the worker endpoint."""

    @pytest.fixture
    def edit_server(self, patent_result, tmp_path):
        """An HTTP service over a private SQLite copy (writes stay local)."""
        path = tmp_path / "editable.db"
        save_to_sqlite(patent_result.database, path)
        service = GraphVizDBService(GraphVizDBConfig.small())
        service.attach_sqlite("patent", str(path))
        started = threading.Event()
        stop = {}

        def run_loop():
            async def main():
                async with service:
                    server = await serve_http(service, port=0)
                    stop["port"] = server.sockets[0].getsockname()[1]
                    stop["loop"] = asyncio.get_running_loop()
                    stop["event"] = asyncio.Event()
                    started.set()
                    await stop["event"].wait()
                    server.close()
                    await server.wait_closed()

            asyncio.run(main())

        thread = threading.Thread(target=run_loop, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        yield stop["port"], path
        stop["loop"].call_soon_threadsafe(stop["event"].set)
        thread.join(timeout=10)

    def _request(self, port, method, path, body=None):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.request(
                method, path,
                body=json.dumps(body).encode() if body is not None else None,
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_edit_round_trip_over_http(self, edit_server):
        port, path = edit_server
        status, ack = self._request(port, "POST", "/edit/add_node?dataset=patent", {
            "node_id": 777001, "label": "http-edit-probe", "x": 4.5, "y": 4.5,
        })
        assert status == 200, ack
        assert ack["seq"] == 1 and ack["edit_counter"] >= 1
        # Read-after-write on the same worker: keyword search finds it.
        status, body = self._request(
            port, "GET", "/keyword?dataset=patent&q=http-edit-probe"
        )
        assert status == 200 and body["num_matches"] == 1
        # The window around the new node contains it.
        status, body = self._request(
            port, "GET",
            "/window?dataset=patent&min_x=4&min_y=4&max_x=5&max_y=5",
        )
        assert status == 200 and body["num_rows"] >= 1
        # And the journal holds the acknowledged record.
        from repro.writes.journal import journal_path_for, read_journal_records

        assert len(read_journal_records(journal_path_for(path))) == 1

    def test_edit_error_mapping(self, edit_server):
        port, _ = edit_server
        status, body = self._request(port, "POST", "/edit/frobnicate?dataset=patent", {})
        assert status == 400 and "unknown edit operation" in body["error"]
        status, _ = self._request(
            port, "POST", "/edit/delete_node?dataset=patent", {"node_id": 999999999}
        )
        assert status == 404
        status, _ = self._request(port, "POST", "/edit/add_node?dataset=patent", {})
        assert status == 400  # missing required arguments
        status, _ = self._request(port, "GET", "/edit/add_node?dataset=patent")
        assert status == 405  # edits require POST
        status, _ = self._request(port, "POST", "/window?dataset=patent", {})
        assert status == 405  # reads require GET
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.request(
                "POST", "/edit/add_node?dataset=patent", body=b"not json {"
            )
            assert connection.getresponse().status == 400
        finally:
            connection.close()

    def test_health_counter_moves_with_edits(self, edit_server):
        port, _ = edit_server
        _, before = self._request(port, "GET", "/health")
        status, _ = self._request(port, "POST", "/edit/add_node?dataset=patent", {
            "node_id": 777002, "label": "counter-probe", "x": 0.0, "y": 0.0,
        })
        assert status == 200
        _, after = self._request(port, "GET", "/health")
        assert after["datasets"]["patent"] > before["datasets"]["patent"]

    def test_repack_over_http(self, edit_server):
        port, _ = edit_server
        status, _ = self._request(port, "POST", "/edit/add_node?dataset=patent", {
            "node_id": 777003, "label": "demoter", "x": 1.0, "y": 1.0,
        })
        assert status == 200
        status, ack = self._request(port, "POST", "/edit/repack?dataset=patent", {})
        assert status == 200 and ack["changed"] is True


class TestSessionCursor:
    def test_session_responses_carry_cursor(self, patent_result):
        service = GraphVizDBService(GraphVizDBConfig.small())
        service.register_dataset("patent", patent_result.database)
        with ServiceRuntime(service) as runtime:
            session_id = runtime.create_session("patent")
            cursor = service.session_cursor(session_id)
            assert cursor["dataset"] == "patent" and cursor["layer"] == 0
            runtime.session_command(session_id, "pan", dx_px=120.0, dy_px=0.0)
            moved = service.session_cursor(session_id)
            assert moved["x"] != cursor["x"]
            assert service.session_cursor("missing") is None

    def test_create_session_with_replicated_cursor(self, patent_result):
        service = GraphVizDBService(GraphVizDBConfig.small())
        service.register_dataset("patent", patent_result.database)
        with ServiceRuntime(service) as runtime:
            session_id = runtime._call(service.create_session(
                "patent", start_layer=1, session_id="replica-1",
                center=Point(42.0, 24.0), zoom=2.0,
            ))
            assert session_id == "replica-1"
            cursor = service.session_cursor("replica-1")
            assert cursor["layer"] == 1
            assert cursor["x"] == 42.0 and cursor["y"] == 24.0
            assert cursor["zoom"] == 2.0
            # Reopening an id that is already live keeps the session.
            again = runtime._call(service.create_session(
                "patent", session_id="replica-1"
            ))
            assert again == "replica-1"
            assert service.session_cursor("replica-1")["x"] == 42.0

    def test_inflight_session_survives_idle_expiry(self, patent_result):
        """Satellite fix: the idle sweep must not reap a mid-request session."""
        service = GraphVizDBService(GraphVizDBConfig(
            service=ServiceConfig(session_idle_seconds=0.01)
        ))
        service.register_dataset("patent", patent_result.database)
        with ServiceRuntime(service) as runtime:
            session_id = runtime.create_session("patent")
            serving = service._sessions[session_id]
            # Simulate a command parked behind a long predecessor: admitted
            # (inflight), but its last_used timestamp already stale.
            serving.inflight = 1
            serving.last_used -= 10.0
            assert session_id not in service._expire_idle_sessions()
            assert session_id in service._sessions
            # Once the command completes, the ordinary expiry applies again.
            serving.inflight = 0
            assert session_id in service._expire_idle_sessions()

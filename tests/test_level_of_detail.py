"""Unit tests for the zoom-driven level-of-detail recommendation."""

from __future__ import annotations

import pytest

from repro.core.query_manager import QueryManager
from repro.core.session import ExplorationSession
from repro.errors import QueryError


class TestRecommendLayer:
    def test_small_budget_prefers_abstract_layer(self, patent_result):
        manager = QueryManager(patent_result.database)
        viewport = manager.default_viewport().zoomed(0.05)  # huge window
        layers = patent_result.database.layers()
        recommended = manager.recommend_layer(viewport, max_objects=5)
        assert recommended == layers[-1]

    def test_large_budget_prefers_layer_zero(self, patent_result):
        manager = QueryManager(patent_result.database)
        viewport = manager.default_viewport()
        recommended = manager.recommend_layer(viewport, max_objects=10**9)
        assert recommended == 0

    def test_recommended_layer_respects_budget_when_possible(self, patent_result):
        manager = QueryManager(patent_result.database)
        viewport = manager.default_viewport().zoomed(0.3)
        budget = 200
        recommended = manager.recommend_layer(viewport, max_objects=budget)
        layers = patent_result.database.layers()
        count = patent_result.database.table(recommended).rtree.count_window(viewport.window())
        if recommended != layers[-1]:
            assert count <= budget

    def test_invalid_budget_raises(self, patent_result):
        manager = QueryManager(patent_result.database)
        with pytest.raises(QueryError):
            manager.recommend_layer(manager.default_viewport(), max_objects=0)

    def test_current_layer_kept_when_already_recommended(self, patent_result):
        manager = QueryManager(patent_result.database)
        viewport = manager.default_viewport()
        recommended = manager.recommend_layer(
            viewport, max_objects=10**9, current_layer=0
        )
        assert recommended == 0


class TestSessionZoomWithLod:
    def test_zoom_out_switches_to_abstract_layer(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        assert session.layer == 0
        result = session.zoom_with_level_of_detail(0.05, max_objects=10)
        assert session.layer == session.available_layers()[-1]
        assert result.layer == session.layer
        assert session.history[-1].kind == "zoom_lod"

    def test_zoom_back_in_restores_detail(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        session.zoom_with_level_of_detail(0.05, max_objects=10)
        session.zoom_with_level_of_detail(40.0, max_objects=10**9)
        assert session.layer == 0

    def test_result_object_count_tracks_budget(self, patent_result):
        session = ExplorationSession(QueryManager(patent_result.database))
        budget = 300
        result = session.zoom_with_level_of_detail(0.2, max_objects=budget)
        top_layer = session.available_layers()[-1]
        if session.layer != top_layer:
            # Note: the budget is expressed in R-tree hits (rows); the payload
            # counts nodes + edges, so allow the looser bound of 2x.
            assert result.num_objects <= 2 * budget

"""Unit tests for the window cache and the caching query manager."""

from __future__ import annotations

import pytest

from repro.core.cache import CachingQueryManager, WindowCache
from repro.core.filters import FilterSpec
from repro.core.query_manager import QueryManager
from repro.spatial.geometry import Rect


@pytest.fixture
def managers(patent_result):
    inner = QueryManager(patent_result.database)
    caching = CachingQueryManager(inner, capacity=8, prefetch_margin=0.5)
    return inner, caching


class TestWindowCache:
    def test_miss_then_hit_on_same_window(self):
        cache = WindowCache(capacity=4)
        window = Rect(0, 0, 100, 100)
        assert cache.lookup(0, window) is None
        cache.store(0, window, [])
        assert cache.lookup(0, window) == []
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_containment_hit(self, patent_result):
        table = patent_result.database.table(0)
        bounds = patent_result.database.bounds(0)
        cache = WindowCache(capacity=4)
        big = Rect.from_center(bounds.center, bounds.width / 2, bounds.height / 2)
        cache.store(0, big, table.window_query(big))
        small = Rect.from_center(bounds.center, bounds.width / 8, bounds.height / 8)
        cached = cache.lookup(0, small)
        assert cached is not None
        expected = {row.row_id for row in table.window_query(small)}
        assert {row.row_id for row in cached} == expected

    def test_layer_isolation(self):
        cache = WindowCache(capacity=4)
        window = Rect(0, 0, 10, 10)
        cache.store(0, window, [])
        assert cache.lookup(1, window) is None

    def test_lru_eviction(self):
        cache = WindowCache(capacity=2)
        for index in range(3):
            cache.store(0, Rect(index, 0, index + 1, 1), [])
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry (index 0) was evicted.
        assert cache.lookup(0, Rect(0.2, 0.2, 0.8, 0.8)) is None

    def test_invalidate(self):
        cache = WindowCache(capacity=4)
        cache.store(0, Rect(0, 0, 1, 1), [])
        cache.store(1, Rect(0, 0, 1, 1), [])
        cache.invalidate(layer=0)
        assert cache.lookup(0, Rect(0, 0, 1, 1)) is None
        assert cache.lookup(1, Rect(0, 0, 1, 1)) is not None
        cache.invalidate()
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            WindowCache(capacity=0)


class TestCachingQueryManager:
    def test_results_identical_to_uncached(self, managers, patent_result):
        inner, caching = managers
        bounds = patent_result.database.bounds(0)
        window = Rect.from_center(bounds.center, bounds.width / 6, bounds.height / 6)
        fresh = inner.window_query(window)
        cached_first = caching.window_query(window)   # miss + prefetch
        cached_second = caching.window_query(window)  # hit
        fresh_ids = {row.row_id for row in fresh.rows}
        assert {row.row_id for row in cached_first.rows} == fresh_ids
        assert {row.row_id for row in cached_second.rows} == fresh_ids

    def test_pan_inside_prefetched_region_hits_cache(self, managers, patent_result):
        _, caching = managers
        bounds = patent_result.database.bounds(0)
        window = Rect.from_center(bounds.center, bounds.width / 10, bounds.height / 10)
        caching.window_query(window)
        panned = window.translated(window.width * 0.2, 0.0)
        caching.window_query(panned)
        assert caching.cache.stats.hits >= 1

    def test_cache_hit_answers_match_database(self, managers, patent_result):
        inner, caching = managers
        bounds = patent_result.database.bounds(0)
        window = Rect.from_center(bounds.center, bounds.width / 10, bounds.height / 10)
        caching.window_query(window)
        panned = window.translated(window.width * 0.3, window.height * 0.1)
        cached = caching.window_query(panned)
        fresh = inner.window_query(panned)
        assert {r.row_id for r in cached.rows} == {r.row_id for r in fresh.rows}

    def test_filtered_queries_bypass_cache(self, managers, patent_result):
        _, caching = managers
        bounds = patent_result.database.bounds(0)
        spec = FilterSpec(hidden_edge_labels={"cites"})
        before = caching.cache.stats.lookups
        caching.window_query(bounds, filters=spec)
        assert caching.cache.stats.lookups == before

    def test_hit_rate_statistics(self, managers, patent_result):
        _, caching = managers
        bounds = patent_result.database.bounds(0)
        window = Rect.from_center(bounds.center, bounds.width / 8, bounds.height / 8)
        caching.window_query(window)
        caching.window_query(window)
        caching.window_query(window)
        stats = caching.cache.stats
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_invalidate_after_edit_forces_refetch(self, managers, patent_result):
        _, caching = managers
        bounds = patent_result.database.bounds(0)
        window = Rect.from_center(bounds.center, bounds.width / 8, bounds.height / 8)
        caching.window_query(window)
        caching.invalidate(layer=0)
        caching.window_query(window)
        assert caching.cache.stats.misses == 2

    def test_no_prefetch_mode(self, patent_result):
        inner = QueryManager(patent_result.database)
        caching = CachingQueryManager(inner, capacity=4, prefetch_margin=0.0)
        bounds = patent_result.database.bounds(0)
        window = Rect.from_center(bounds.center, bounds.width / 8, bounds.height / 8)
        first = caching.window_query(window)
        second = caching.window_query(window)
        assert {r.row_id for r in first.rows} == {r.row_id for r in second.rows}
        assert caching.cache.stats.prefetches == 0

    def test_invalid_prefetch_margin(self, patent_result):
        with pytest.raises(ValueError):
            CachingQueryManager(QueryManager(patent_result.database), prefetch_margin=-1)

    def test_delegated_operations(self, managers):
        _, caching = managers
        viewport = caching.default_viewport()
        assert caching.viewport_query(viewport).num_objects >= 0
        result = caching.keyword_search("patent", limit=3)
        assert result.num_matches >= 0
        assert caching.database is caching.inner.database

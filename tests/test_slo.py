"""Tests for the SLO subsystem (``repro.slo``): engine, admission, loadgen.

The engine tests drive :class:`SLOEngine` with a manual clock, so the
window math (empty windows, budget exhaustion, recovery after the window
rolls past an incident) is asserted exactly rather than sampled.  Loadgen
tests cover the determinism contract (same seed ⇒ identical trace), the
zipfian popularity skew, random-walk shape and the write trickle — all
without a network.
"""

from __future__ import annotations

import json
from urllib.parse import parse_qs, urlsplit

import pytest

from repro.config import GraphVizDBConfig, SLOConfig
from repro.core.monitoring import ServiceMetrics
from repro.errors import ConfigurationError
from repro.slo import (
    AdaptiveAdmission,
    LoadgenConfig,
    SLOEngine,
    generate_trace,
    slo_op_for_path,
)


class ManualClock:
    """Injectable monotonic clock advanced explicitly by tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _engine(clock: ManualClock, **overrides) -> SLOEngine:
    defaults = dict(
        fast_burn_window_seconds=60.0,
        slow_burn_window_seconds=600.0,
    )
    defaults.update(overrides)
    return SLOEngine(SLOConfig(**defaults), clock=clock)


# ---------------------------------------------------------------------------
# SLOConfig validation
# ---------------------------------------------------------------------------


class TestSLOConfig:
    def test_defaults_valid(self):
        config = SLOConfig()
        assert config.enabled
        assert config.latency_target("window") == 0.25
        assert config.latency_target("no-such-op") is None

    @pytest.mark.parametrize("kwargs", [
        {"availability_target": 0.0},
        {"availability_target": 1.0},
        {"fast_burn_window_seconds": 0.0},
        {"fast_burn_window_seconds": 120.0, "slow_burn_window_seconds": 60.0},
        {"fast_burn_threshold": 0.0},
        {"admission_min_queue_depth": 0},
        {"admission_increase_step": 0},
        {"admission_backoff_factor": 1.0},
        {"admission_backoff_factor": 0.0},
        {"admission_interval_seconds": 0.0},
        {"admission_burn_window_seconds": 0.0},
        {"latency_targets": (("window", 0.0),)},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SLOConfig(**kwargs)

    def test_default_config_carries_slo(self):
        assert GraphVizDBConfig().slo.enabled


# ---------------------------------------------------------------------------
# Path → op mapping
# ---------------------------------------------------------------------------


class TestSloOpForPath:
    @pytest.mark.parametrize("path,op", [
        ("/window", "window"),
        ("/keyword", "keyword"),
        ("/nearest", "nearest"),
        ("/edit/add_node", "edit"),
        ("/edit/delete_edge", "edit"),
        ("/session/new", "session"),
        ("/session/abc123/pan", "session"),
        ("/metrics", None),
        ("/health", None),
        ("/debug/trace", None),
        ("/journal/tail", None),
        ("/datasets", None),
    ])
    def test_mapping(self, path, op):
        assert slo_op_for_path(path) == op


# ---------------------------------------------------------------------------
# SLOEngine window math
# ---------------------------------------------------------------------------


class TestSLOEngine:
    def test_empty_windows_are_healthy(self):
        engine = _engine(ManualClock())
        assert engine.burn_rate("window", 60.0) == 0.0
        assert engine.budget_remaining("window") == 1.0
        assert engine.alert("window") == "ok"
        assert engine.ops() == []

    def test_all_good_traffic_keeps_full_budget(self):
        engine = _engine(ManualClock())
        for _ in range(100):
            engine.observe("window", 0.01)
        assert engine.burn_rate("window", 60.0) == 0.0
        assert engine.budget_remaining("window") == 1.0
        assert engine.alert("window") == "ok"

    def test_latency_breach_consumes_budget(self):
        engine = _engine(ManualClock())
        # 2% of requests over the 0.25 s window target: burn = 2% / 1% = 2x.
        for i in range(100):
            engine.observe("window", 0.5 if i < 2 else 0.01)
        assert engine.burn_rate("window", 60.0) == pytest.approx(2.0)
        summary = engine.summary()["ops"]["window"]
        assert summary["slow"] == 2
        assert summary["errors_503"] == 0

    def test_503_504_counted_separately(self):
        engine = _engine(ManualClock())
        engine.observe("window", 0.01, status=503)
        engine.observe("window", 0.01, status=504)
        engine.observe("window", 0.01)
        entry = engine.summary()["ops"]["window"]
        assert entry["errors_503"] == 1
        assert entry["errors_504"] == 1
        assert entry["good"] == 1
        assert entry["bad"] == 2

    def test_budget_exhaustion_clamps_at_zero(self):
        engine = _engine(ManualClock())
        for _ in range(50):
            engine.observe("window", 0.01, status=503)
        assert engine.budget_remaining("window") == 0.0
        assert engine.alert("window") == "page"

    def test_recovery_once_window_rolls_past_incident(self):
        clock = ManualClock()
        engine = _engine(clock)
        for _ in range(50):
            engine.observe("window", 0.01, status=503)
        assert engine.alert("window") == "page"
        # The fast window (60 s) rolls past the incident: page clears, but
        # the slow window (600 s) still remembers — and once it rolls too,
        # the budget refills entirely.
        clock.advance(120.0)
        for _ in range(50):
            engine.observe("window", 0.01)
        assert engine.burn_rate("window", 60.0) == 0.0
        clock.advance(700.0)
        engine.observe("window", 0.01)
        assert engine.budget_remaining("window") == 1.0
        assert engine.alert("window") == "ok"

    def test_page_beats_warn(self):
        clock = ManualClock()
        engine = _engine(clock, fast_burn_threshold=10.0, slow_burn_threshold=2.0)
        # 20% bad = 20x burn in both windows: both thresholds trip, page wins.
        for i in range(10):
            engine.observe("window", 0.01, status=503 if i < 2 else 200)
        assert engine.alert("window") == "page"

    def test_ops_without_latency_target_only_count_errors(self):
        engine = _engine(ManualClock(), latency_targets=(("window", 0.25),))
        engine.observe("keyword", 99.0)  # no target: slowness is not bad
        entry = engine.summary()["ops"]["keyword"]
        assert entry["good"] == 1 and entry["bad"] == 0
        assert "target_seconds" not in entry

    def test_summary_shape(self):
        engine = _engine(ManualClock())
        engine.observe("window", 0.01)
        summary = engine.summary()
        assert summary["availability_target"] == 0.99
        entry = summary["ops"]["window"]
        for key in ("good", "bad", "errors_503", "errors_504", "slow",
                    "burn_fast", "burn_slow", "budget_remaining", "alert",
                    "alert_level", "target_seconds"):
            assert key in entry
        assert entry["alert_level"] == 0


# ---------------------------------------------------------------------------
# Adaptive admission (AIMD)
# ---------------------------------------------------------------------------


def _admission(clock: ManualClock, max_limit: int = 64, **overrides):
    defaults = dict(
        adaptive_admission=True,
        fast_burn_window_seconds=60.0,
        slow_burn_window_seconds=600.0,
        admission_interval_seconds=1.0,
        admission_burn_window_seconds=10.0,
    )
    defaults.update(overrides)
    config = SLOConfig(**defaults)
    engine = SLOEngine(config, clock=clock)
    return engine, AdaptiveAdmission(config, max_limit, engine, clock=clock)


class TestAdaptiveAdmission:
    def test_healthy_traffic_keeps_max_limit(self):
        clock = ManualClock()
        engine, admission = _admission(clock)
        for _ in range(10):
            engine.observe("window", 0.01)
            clock.advance(1.5)
        assert admission.effective_limit() == 64
        assert admission.summary()["decreases"] == 0

    def test_burn_cuts_multiplicatively_to_floor(self):
        clock = ManualClock()
        engine, admission = _admission(clock, admission_min_queue_depth=4)
        limits = []
        for _ in range(8):
            # Keep the incident burning inside the 10 s lookback each round.
            for _ in range(5):
                engine.observe("window", 9.0, status=503)
            clock.advance(1.5)
            limits.append(admission.effective_limit())
        assert limits[0] == 32 and limits[1] == 16 and limits[2] == 8
        assert limits[-1] == 4  # floored, never below min_queue_depth
        assert admission.summary()["decreases"] >= 4

    def test_recovery_is_additive(self):
        clock = ManualClock()
        engine, admission = _admission(clock)
        for _ in range(20):
            engine.observe("window", 9.0, status=503)
        clock.advance(1.5)
        cut = admission.effective_limit()
        assert cut == 32
        # The burn window (10 s) rolls past the errors; each interval now
        # raises the limit by one step.
        clock.advance(30.0)
        engine.observe("window", 0.01)
        for expected in (cut + 1, cut + 2, cut + 3):
            clock.advance(1.5)
            assert admission.effective_limit() == expected
        assert admission.summary()["increases"] >= 3

    def test_evaluation_is_time_gated(self):
        clock = ManualClock()
        engine, admission = _admission(clock)
        for _ in range(20):
            engine.observe("window", 9.0, status=503)
        clock.advance(1.5)
        assert admission.effective_limit() == 32
        # Within the same interval the limit must not move again.
        assert admission.effective_limit() == 32
        clock.advance(1.5)
        assert admission.effective_limit() == 16

    def test_min_limit_clamped_to_max(self):
        clock = ManualClock()
        _, admission = _admission(clock, max_limit=2, admission_min_queue_depth=8)
        assert admission.min_limit == 2


# ---------------------------------------------------------------------------
# ServiceMetrics wiring
# ---------------------------------------------------------------------------


class TestMetricsWiring:
    def test_configure_slo_attaches_engine_and_summary_section(self):
        metrics = ServiceMetrics()
        metrics.configure_slo(SLOConfig())
        assert metrics.slo is not None
        metrics.record_op_outcome("window", 0.01, 200)
        metrics.record_op_outcome("window", 0.01, 503)
        section = metrics.summary()["slo"]
        assert section["ops"]["window"]["good"] == 1
        assert section["ops"]["window"]["errors_503"] == 1

    def test_configure_slo_first_caller_wins(self):
        metrics = ServiceMetrics()
        metrics.configure_slo(SLOConfig(availability_target=0.95))
        metrics.configure_slo(SLOConfig(availability_target=0.5))
        assert metrics.slo.config.availability_target == 0.95

    def test_disabled_config_attaches_nothing(self):
        metrics = ServiceMetrics()
        metrics.configure_slo(SLOConfig(enabled=False))
        assert metrics.slo is None
        metrics.record_op_outcome("window", 0.01, 200)  # no-op, no crash
        assert metrics.summary()["slo"] == {}

    def test_per_op_cache_hit_attribution(self):
        metrics = ServiceMetrics()
        metrics.record_cache_hit()
        metrics.record_cache_hit("keyword")
        metrics.record_cache_hit("nearest")
        metrics.record_cache_miss("keyword")  # keyword misses not tracked
        summary = metrics.summary()["cluster"]
        assert summary["window_cache_hits"] == 1
        assert summary["keyword_cache_hits"] == 1
        assert summary["nearest_cache_hits"] == 1
        assert summary["window_cache_misses"] == 0


# ---------------------------------------------------------------------------
# Loadgen: determinism and distribution shape
# ---------------------------------------------------------------------------


class TestLoadgen:
    def test_same_seed_identical_trace(self):
        config = LoadgenConfig(sessions=40, ops_per_session=10, seed=7)
        first = generate_trace(["a", "b", "c"], config)
        second = generate_trace(["a", "b", "c"], config)
        assert first == second

    def test_different_seed_differs(self):
        datasets = ["a", "b", "c"]
        first = generate_trace(datasets, LoadgenConfig(sessions=40, seed=1))
        second = generate_trace(datasets, LoadgenConfig(sessions=40, seed=2))
        assert first != second

    def test_zipfian_dataset_popularity(self):
        config = LoadgenConfig(sessions=300, ops_per_session=4, seed=11)
        trace = generate_trace(["a", "b", "c", "d"], config)
        counts = {name: 0 for name in "abcd"}
        for session in trace:
            dataset = parse_qs(urlsplit(session[0].target).query)["dataset"][0]
            counts[dataset] += 1
        # Rank 1 must dominate and the tail must still be nonzero.
        assert counts["a"] > counts["d"]
        assert counts["a"] > config.sessions / 3
        assert all(count > 0 for count in counts.values())

    def test_session_shape_open_walk_close(self):
        config = LoadgenConfig(sessions=5, ops_per_session=8, seed=3)
        for session in generate_trace(["a"], config):
            assert session[0].target.startswith("/session/new?dataset=")
            assert session[-1].target == "/session/{sid}/close"
            assert len(session) >= config.ops_per_session  # bursts add ops

    def test_pan_steps_bounded_by_config(self):
        config = LoadgenConfig(sessions=50, ops_per_session=10, seed=5,
                               pan_step_px=100.0)
        pans = 0
        for session in generate_trace(["a"], config):
            for trace_op in session:
                if "/pan?" in trace_op.target:
                    pans += 1
                    params = parse_qs(urlsplit(trace_op.target).query)
                    assert abs(float(params["dx"][0])) <= config.pan_step_px
                    assert abs(float(params["dy"][0])) <= config.pan_step_px
        assert pans > 50  # pans dominate the walk by construction

    def test_write_trickle_present_with_unique_node_ids(self):
        config = LoadgenConfig(sessions=100, ops_per_session=10, seed=9,
                               write_fraction=0.1)
        node_ids = []
        for session in generate_trace(["a", "b"], config):
            for trace_op in session:
                if trace_op.op == "edit":
                    assert trace_op.method == "POST"
                    body = json.loads(trace_op.body)
                    node_ids.append(body["node_id"])
                    assert body["label"] == f"loadgen-{body['node_id']}"
        assert node_ids and len(node_ids) == len(set(node_ids))

    def test_keyword_bursts_are_consecutive(self):
        config = LoadgenConfig(sessions=60, ops_per_session=10, seed=13,
                               keyword_burst_prob=0.3, keyword_burst_len=3)
        burst_runs = 0
        for session in generate_trace(["a"], config):
            run = 0
            for trace_op in session:
                if trace_op.op == "keyword":
                    run += 1
                else:
                    if run:
                        assert run % config.keyword_burst_len == 0
                        burst_runs += 1
                    run = 0
        assert burst_runs > 5

    def test_rejects_empty_datasets_and_bad_config(self):
        with pytest.raises(ConfigurationError):
            generate_trace([], LoadgenConfig())
        with pytest.raises(ConfigurationError):
            LoadgenConfig(sessions=0)
        with pytest.raises(ConfigurationError):
            LoadgenConfig(write_fraction=1.5)

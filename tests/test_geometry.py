"""Unit tests for geometry primitives and the binary edge-geometry encoding."""

from __future__ import annotations

import pytest

from repro.errors import GeometryError
from repro.spatial.geometry import (
    LineSegment,
    Point,
    Rect,
    bounding_rect,
    decode_segment,
    encode_segment,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestRect:
    def test_invalid_rect_raises(self):
        with pytest.raises(GeometryError):
            Rect(5, 0, 0, 5)

    def test_properties(self):
        rect = Rect(0, 0, 4, 2)
        assert rect.width == 4
        assert rect.height == 2
        assert rect.area == 8
        assert rect.perimeter == 12
        assert rect.center == Point(2, 1)

    def test_from_points(self):
        rect = Rect.from_points([Point(1, 5), Point(-2, 0), Point(3, 3)])
        assert rect.as_tuple() == (-2, 0, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.from_points([])

    def test_from_center(self):
        rect = Rect.from_center(Point(0, 0), 10, 4)
        assert rect.as_tuple() == (-5, -2, 5, 2)

    def test_from_center_negative_raises(self):
        with pytest.raises(GeometryError):
            Rect.from_center(Point(0, 0), -1, 1)

    def test_contains_point_includes_boundary(self):
        rect = Rect(0, 0, 1, 1)
        assert rect.contains_point(Point(0, 0))
        assert rect.contains_point(Point(0.5, 0.5))
        assert not rect.contains_point(Point(1.01, 0.5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert not outer.contains_rect(Rect(5, 5, 11, 11))

    def test_intersects_and_touching_counts(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.1, 0, 2, 1))

    def test_union_and_intersection(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.union(b).as_tuple() == (0, 0, 3, 3)
        assert a.intersection(b).as_tuple() == (1, 1, 2, 2)
        assert a.intersection(Rect(5, 5, 6, 6)) is None

    def test_enlargement(self):
        a = Rect(0, 0, 2, 2)
        assert a.enlargement(Rect(0, 0, 1, 1)) == 0.0
        assert a.enlargement(Rect(0, 0, 4, 2)) == pytest.approx(4.0)

    def test_expanded(self):
        assert Rect(0, 0, 2, 2).expanded(1).as_tuple() == (-1, -1, 3, 3)

    def test_expanded_negative_too_large_raises(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 1, 1).expanded(-2)

    def test_scaled_about_center(self):
        rect = Rect(0, 0, 2, 2).scaled(2.0)
        assert rect.as_tuple() == (-1, -1, 3, 3)
        with pytest.raises(GeometryError):
            Rect(0, 0, 1, 1).scaled(0)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3).as_tuple() == (2, 3, 3, 4)

    def test_min_distance_to_point(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.min_distance_to_point(Point(1, 1)) == 0.0
        assert rect.min_distance_to_point(Point(5, 2)) == pytest.approx(3.0)
        assert rect.min_distance_to_point(Point(5, 6)) == pytest.approx(5.0)


class TestLineSegment:
    def test_length_and_midpoint(self):
        segment = LineSegment(Point(0, 0), Point(6, 8))
        assert segment.length == pytest.approx(10.0)
        assert segment.midpoint() == Point(3, 4)

    def test_bounding_rect(self):
        segment = LineSegment(Point(5, 1), Point(2, 7))
        assert segment.bounding_rect().as_tuple() == (2, 1, 5, 7)

    def test_intersects_rect_endpoint_inside(self):
        segment = LineSegment(Point(0, 0), Point(10, 10))
        assert segment.intersects_rect(Rect(-1, -1, 1, 1))

    def test_intersects_rect_crossing_through(self):
        segment = LineSegment(Point(-5, 5), Point(15, 5))
        assert segment.intersects_rect(Rect(0, 0, 10, 10))

    def test_does_not_intersect_when_bbox_overlaps_but_segment_misses(self):
        # Diagonal segment whose bounding box overlaps the rect but the segment
        # itself passes outside the corner.
        segment = LineSegment(Point(0, 10), Point(10, 0))
        assert not segment.intersects_rect(Rect(0, 0, 2, 2))

    def test_zero_length_segment(self):
        point_segment = LineSegment(Point(5, 5), Point(5, 5))
        assert point_segment.intersects_rect(Rect(0, 0, 10, 10))
        assert not point_segment.intersects_rect(Rect(6, 6, 7, 7))

    def test_translated(self):
        segment = LineSegment(Point(0, 0), Point(1, 1), directed=False)
        moved = segment.translated(2, 2)
        assert moved.start == Point(2, 2)
        assert moved.directed is False


class TestBinaryEncoding:
    def test_roundtrip_directed(self):
        segment = LineSegment(Point(1.5, -2.25), Point(3.75, 4.5), directed=True)
        assert decode_segment(encode_segment(segment)) == segment

    def test_roundtrip_undirected(self):
        segment = LineSegment(Point(0, 0), Point(1, 1), directed=False)
        assert decode_segment(encode_segment(segment)).directed is False

    def test_blob_size_is_fixed(self):
        blob = encode_segment(LineSegment(Point(0, 0), Point(1, 1)))
        assert len(blob) == 34  # 2 header bytes + 4 doubles

    def test_invalid_blob_raises(self):
        with pytest.raises(GeometryError):
            decode_segment(b"garbage")

    def test_wrong_version_raises(self):
        blob = bytearray(encode_segment(LineSegment(Point(0, 0), Point(1, 1))))
        blob[0] = 99
        with pytest.raises(GeometryError):
            decode_segment(bytes(blob))


class TestBoundingRect:
    def test_bounding_rect_of_segments(self):
        rect = bounding_rect([
            LineSegment(Point(0, 0), Point(1, 1)),
            LineSegment(Point(-3, 2), Point(0, 0)),
        ])
        assert rect.as_tuple() == (-3, 0, 1, 2)

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            bounding_rect([])

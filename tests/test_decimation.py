"""Unit tests for server-side window decimation."""

from __future__ import annotations

import pytest

from repro.core.decimation import decimate_rows
from repro.core.json_builder import build_payload
from repro.graph.generators import star_graph
from repro.graph.model import Graph
from repro.layout.circular import CircularLayout, StarLayout
from repro.storage.schema import rows_from_graph


def star_rows(num_leaves: int = 20):
    graph = star_graph(num_leaves)
    layout = StarLayout(area_per_node=100.0).layout(graph)
    return rows_from_graph(graph, layout)


class TestDecimateRows:
    def test_under_budget_is_untouched(self):
        rows = star_rows(10)
        result = decimate_rows(rows, max_rows=100)
        assert result.rows == rows
        assert not result.was_decimated
        assert result.dropped_rows == 0

    def test_exact_budget_is_untouched(self):
        rows = star_rows(10)
        result = decimate_rows(rows, max_rows=len(rows))
        assert result.rows == rows

    def test_over_budget_drops_to_budget(self):
        rows = star_rows(30)
        result = decimate_rows(rows, max_rows=12)
        assert result.kept_rows == 12
        assert result.dropped_rows == len(rows) - 12
        assert result.was_decimated

    def test_hub_incident_edges_survive(self):
        # Two stars of different sizes sharing the window: the bigger hub's
        # edges must be preferred when the budget forces a choice.
        graph = Graph(directed=False, name="two-stars")
        for leaf in range(1, 16):
            graph.add_edge(0, leaf, label="big")
        for leaf in range(101, 106):
            graph.add_edge(100, leaf, label="small")
        layout = CircularLayout(area_per_node=100.0).layout(graph)
        rows = rows_from_graph(graph, layout)
        result = decimate_rows(rows, max_rows=10)
        labels = [row.edge_label for row in result.rows]
        assert labels.count("big") == 10
        assert "small" not in labels

    def test_kept_rows_preserve_row_id_order(self):
        rows = star_rows(25)
        result = decimate_rows(rows, max_rows=10)
        row_ids = [row.row_id for row in result.rows]
        assert row_ids == sorted(row_ids)

    def test_deterministic(self):
        rows = star_rows(25)
        first = decimate_rows(rows, max_rows=7)
        second = decimate_rows(rows, max_rows=7)
        assert [r.row_id for r in first.rows] == [r.row_id for r in second.rows]

    def test_zero_budget(self):
        rows = star_rows(5)
        result = decimate_rows(rows, max_rows=0)
        assert result.rows == []
        assert result.dropped_rows == len(rows)

    def test_negative_budget_raises(self):
        with pytest.raises(ValueError):
            decimate_rows(star_rows(3), max_rows=-1)

    def test_isolated_nodes_dropped_before_hub_edges(self):
        graph = Graph(directed=False, name="mixed")
        for leaf in range(1, 9):
            graph.add_edge(0, leaf, label="spoke")
        for isolated in range(100, 105):
            graph.add_node(isolated, label=f"iso{isolated}")
        layout = CircularLayout(area_per_node=100.0).layout(graph)
        rows = rows_from_graph(graph, layout)
        result = decimate_rows(rows, max_rows=8)
        assert all(not row.is_node_row() for row in result.rows)

    def test_payload_from_decimated_rows_is_consistent(self):
        rows = star_rows(40)
        result = decimate_rows(rows, max_rows=15)
        payload = build_payload(result.rows)
        # Every edge in the payload references nodes present in the payload.
        node_ids = payload.node_ids()
        for edge in payload.edges:
            assert edge["source"] in node_ids
            assert edge["target"] in node_ids

    def test_query_manager_max_rows_parameter(self, patent_result):
        from repro.core.query_manager import QueryManager

        manager = QueryManager(patent_result.database)
        bounds = patent_result.database.bounds(0)
        full = manager.window_query(bounds, layer=0)
        capped = manager.window_query(bounds, layer=0, max_rows=50)
        assert len(capped.rows) == 50
        assert len(full.rows) > 50
        assert capped.num_objects <= full.num_objects

    def test_decimated_on_real_window(self, patent_result):
        table = patent_result.database.table(0)
        bounds = patent_result.database.bounds(0)
        rows = table.window_query(bounds)
        budget = max(1, len(rows) // 4)
        result = decimate_rows(rows, max_rows=budget)
        assert result.kept_rows == budget
        # The kept rows are a subset of the original window result.
        original_ids = {row.row_id for row in rows}
        assert all(row.row_id in original_ids for row in result.rows)

"""Unit tests for the viewport model (pixel <-> plane mapping, zoom)."""

from __future__ import annotations

import pytest

from repro.config import ClientConfig
from repro.core.viewport import Viewport
from repro.errors import QueryError
from repro.spatial.geometry import Point


class TestWindowMapping:
    def test_window_at_zoom_one(self):
        viewport = Viewport(center=Point(0, 0), width_px=200, height_px=100)
        window = viewport.window()
        assert window.as_tuple() == (-100, -50, 100, 50)

    def test_zoom_in_shrinks_window(self):
        viewport = Viewport(center=Point(0, 0), width_px=200, height_px=200, zoom=2.0)
        assert viewport.window().width == 100

    def test_zoom_out_grows_window(self):
        viewport = Viewport(center=Point(0, 0), width_px=200, height_px=200, zoom=0.5)
        assert viewport.window().width == 400

    def test_invalid_viewport(self):
        with pytest.raises(QueryError):
            Viewport(center=Point(0, 0), width_px=0, height_px=100)
        with pytest.raises(QueryError):
            Viewport(center=Point(0, 0), width_px=10, height_px=10, zoom=0)


class TestNavigation:
    def test_pan_moves_center_by_plane_units(self):
        viewport = Viewport(center=Point(0, 0), width_px=100, height_px=100, zoom=2.0)
        panned = viewport.panned(50, -20)
        assert panned.center == Point(25, -10)
        # Original is immutable.
        assert viewport.center == Point(0, 0)

    def test_moved_to(self):
        viewport = Viewport(center=Point(0, 0), width_px=100, height_px=100)
        assert viewport.moved_to(Point(7, 8)).center == Point(7, 8)

    def test_zoomed_with_clamping(self):
        config = ClientConfig(min_zoom=0.5, max_zoom=2.0)
        viewport = Viewport(center=Point(0, 0), width_px=100, height_px=100)
        assert viewport.zoomed(10.0, config).zoom == 2.0
        assert viewport.zoomed(0.01, config).zoom == 0.5
        assert viewport.zoomed(1.5).zoom == pytest.approx(1.5)

    def test_zoomed_invalid_factor(self):
        viewport = Viewport(center=Point(0, 0), width_px=100, height_px=100)
        with pytest.raises(QueryError):
            viewport.zoomed(0)

    def test_resized(self):
        viewport = Viewport(center=Point(0, 0), width_px=100, height_px=100)
        assert viewport.resized(300, 200).window().width == 300


class TestPixelMapping:
    def test_roundtrip(self):
        viewport = Viewport(center=Point(10, 20), width_px=200, height_px=100, zoom=2.0)
        point = Point(12.5, 21.25)
        px, py = viewport.plane_to_pixel(point)
        back = viewport.pixel_to_plane(px, py)
        assert back.x == pytest.approx(point.x)
        assert back.y == pytest.approx(point.y)

    def test_center_maps_to_canvas_middle(self):
        viewport = Viewport(center=Point(5, 5), width_px=400, height_px=300)
        px, py = viewport.plane_to_pixel(Point(5, 5))
        assert (px, py) == (200, 150)

    def test_from_config(self):
        config = ClientConfig(viewport_width=640, viewport_height=480)
        viewport = Viewport.from_config(config)
        assert viewport.width_px == 640
        assert viewport.center == Point(0.0, 0.0)

"""Unit tests for the configuration objects."""

from __future__ import annotations

import pytest

from repro.config import (
    AbstractionConfig,
    ClientConfig,
    GraphVizDBConfig,
    LayoutConfig,
    PartitionConfig,
    StorageConfig,
)
from repro.errors import ConfigurationError


class TestPartitionConfig:
    def test_resolve_k_explicit(self):
        config = PartitionConfig(num_partitions=8)
        assert config.resolve_k(1000) == 8
        assert config.resolve_k(3) == 3  # clamped to node count

    def test_resolve_k_from_memory_budget(self):
        config = PartitionConfig(max_partition_nodes=100)
        assert config.resolve_k(1000) == 10
        assert config.resolve_k(950) == 10
        assert config.resolve_k(50) == 1
        assert config.resolve_k(0) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionConfig(num_partitions=-1)
        with pytest.raises(ConfigurationError):
            PartitionConfig(max_partition_nodes=0)
        with pytest.raises(ConfigurationError):
            PartitionConfig(balance_factor=0.9)


class TestOtherConfigs:
    def test_layout_validation(self):
        with pytest.raises(ConfigurationError):
            LayoutConfig(iterations=0)
        with pytest.raises(ConfigurationError):
            LayoutConfig(area_per_node=0)
        with pytest.raises(ConfigurationError):
            LayoutConfig(padding=-1)

    def test_abstraction_validation(self):
        with pytest.raises(ConfigurationError):
            AbstractionConfig(num_layers=-1)
        with pytest.raises(ConfigurationError):
            AbstractionConfig(keep_fraction=1.5)

    def test_storage_validation(self):
        with pytest.raises(ConfigurationError):
            StorageConfig(backend="oracle")
        with pytest.raises(ConfigurationError):
            StorageConfig(rtree_max_entries=2)
        with pytest.raises(ConfigurationError):
            StorageConfig(btree_order=2)

    def test_client_validation(self):
        with pytest.raises(ConfigurationError):
            ClientConfig(viewport_width=0)
        with pytest.raises(ConfigurationError):
            ClientConfig(chunk_size=0)
        with pytest.raises(ConfigurationError):
            ClientConfig(min_zoom=2.0, max_zoom=1.0)

    def test_presets(self):
        small = GraphVizDBConfig.small()
        bench = GraphVizDBConfig.benchmark()
        assert small.partition.max_partition_nodes < bench.partition.max_partition_nodes
        assert bench.abstraction.num_layers == 4

    def test_default_bundle_is_valid(self):
        config = GraphVizDBConfig()
        assert config.partition.method == "multilevel"
        assert config.layout.algorithm == "force_directed"
        assert config.abstraction.criterion == "degree"
        assert config.storage.backend == "memory"

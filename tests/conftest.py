"""Shared fixtures for the test suite.

Heavier fixtures (preprocessed datasets) are session-scoped so the integration
and query tests reuse a single preprocessing run.
"""

from __future__ import annotations

import pytest

from repro.config import (
    AbstractionConfig,
    GraphVizDBConfig,
    LayoutConfig,
    PartitionConfig,
)
from repro.core.pipeline import PreprocessingPipeline
from repro.graph.generators import community_graph, patent_like, wikidata_like
from repro.graph.model import Graph


@pytest.fixture
def small_graph() -> Graph:
    """A tiny deterministic directed graph used across unit tests."""
    graph = Graph(directed=True, name="small")
    graph.add_node(1, label="Alice", node_type="person")
    graph.add_node(2, label="Bob", node_type="person")
    graph.add_node(3, label="Carol", node_type="person")
    graph.add_node(4, label="Databases", node_type="topic")
    graph.add_edge(1, 2, label="knows")
    graph.add_edge(2, 3, label="knows")
    graph.add_edge(1, 4, label="likes")
    graph.add_edge(3, 4, label="likes")
    return graph


@pytest.fixture
def communities() -> Graph:
    """A planted-partition graph with clear community structure."""
    return community_graph(num_communities=4, community_size=20, seed=5)


@pytest.fixture(scope="session")
def small_config() -> GraphVizDBConfig:
    """Fast preprocessing configuration for tests."""
    return GraphVizDBConfig(
        partition=PartitionConfig(max_partition_nodes=120, seed=1),
        layout=LayoutConfig(iterations=15, seed=1),
        abstraction=AbstractionConfig(num_layers=2),
    )


@pytest.fixture(scope="session")
def patent_result(small_config):
    """A preprocessed small Patent-like dataset (shared across tests)."""
    graph = patent_like(num_patents=300, seed=3)
    return PreprocessingPipeline(small_config).run(graph)


@pytest.fixture(scope="session")
def wikidata_result(small_config):
    """A preprocessed small Wikidata-like dataset (shared across tests)."""
    graph = wikidata_like(num_entities=200, seed=3)
    return PreprocessingPipeline(small_config).run(graph)

"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    barabasi_albert,
    community_graph,
    complete_graph,
    erdos_renyi,
    grid_graph,
    patent_like,
    path_graph,
    star_graph,
    wikidata_like,
)
from repro.graph.metrics import average_degree


class TestWikidataLike:
    def test_deterministic_for_seed(self):
        first = wikidata_like(num_entities=100, seed=1)
        second = wikidata_like(num_entities=100, seed=1)
        assert first.num_nodes == second.num_nodes
        assert first.num_edges == second.num_edges

    def test_has_entity_and_literal_nodes(self):
        graph = wikidata_like(num_entities=100, seed=2)
        types = graph.node_types()
        assert "entity" in types and "literal" in types

    def test_literals_are_leaves(self):
        graph = wikidata_like(num_entities=80, seed=2)
        literal_degrees = [
            graph.degree(node.node_id) for node in graph.nodes() if node.node_type == "literal"
        ]
        assert literal_degrees and max(literal_degrees) == 1

    def test_directed(self):
        assert wikidata_like(num_entities=20).directed


class TestPatentLike:
    def test_deterministic_for_seed(self):
        first = patent_like(num_patents=150, seed=4)
        second = patent_like(num_patents=150, seed=4)
        assert first.num_edges == second.num_edges

    def test_citations_point_backwards_in_time(self):
        graph = patent_like(num_patents=200, seed=4)
        for edge in graph.edges():
            assert edge.target < edge.source

    def test_average_degree_higher_than_wikidata(self):
        # This is the structural property Table I's Step-1 anomaly depends on.
        patent = patent_like(num_patents=400, seed=1)
        wikidata = wikidata_like(num_entities=300, seed=1)
        assert average_degree(patent) > average_degree(wikidata)

    def test_patent_labels_mention_year(self):
        graph = patent_like(num_patents=50, seed=0)
        assert all("patent" in node.label for node in graph.nodes())


class TestGenericGenerators:
    def test_erdos_renyi_bounds(self):
        graph = erdos_renyi(30, 0.2, seed=1)
        assert graph.num_nodes == 30
        assert 0 < graph.num_edges < 30 * 29 / 2

    def test_erdos_renyi_zero_probability(self):
        assert erdos_renyi(10, 0.0).num_edges == 0

    def test_barabasi_albert_connected(self):
        from repro.graph.traversal import connected_components

        graph = barabasi_albert(60, edges_per_node=2, seed=3)
        assert len(connected_components(graph)) == 1

    def test_barabasi_albert_rejects_bad_parameter(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, edges_per_node=0)

    def test_grid_graph_structure(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_community_graph_types(self):
        graph = community_graph(num_communities=3, community_size=10, seed=1)
        assert graph.num_nodes == 30
        assert len(graph.node_types()) == 3

    def test_star_path_complete(self):
        assert star_graph(4).num_edges == 4
        assert path_graph(6).num_edges == 5
        assert complete_graph(5).num_edges == 10

"""Unit tests for the layout algorithms and the registry."""

from __future__ import annotations

import math

import pytest

from repro.errors import LayoutError, UnknownLayoutError
from repro.graph.generators import (
    community_graph,
    complete_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.model import Graph
from repro.layout.base import Layout
from repro.layout.circular import CircularLayout, RandomLayout, StarLayout
from repro.layout.force_directed import ForceDirectedLayout
from repro.layout.grid import GridLayout, SpectralLayout
from repro.layout.hierarchical import HierarchicalLayout
from repro.layout.registry import available_layouts, create_layout, register_layout
from repro.layout.scale import average_edge_length
from repro.spatial.geometry import Point


ALL_ALGORITHMS = [
    ForceDirectedLayout(iterations=20, seed=1),
    CircularLayout(),
    StarLayout(),
    RandomLayout(seed=1),
    GridLayout(),
    SpectralLayout(),
    HierarchicalLayout(),
]


class TestLayoutResult:
    def test_positions_accessors(self):
        layout = Layout({1: Point(0, 0), 2: Point(3, 4)})
        assert len(layout) == 2
        assert 1 in layout
        assert layout.position(2) == Point(3, 4)
        with pytest.raises(LayoutError):
            layout.position(9)

    def test_bounding_rect_and_translate(self):
        layout = Layout({1: Point(0, 0), 2: Point(10, 5)})
        assert layout.bounding_rect().as_tuple() == (0, 0, 10, 5)
        moved = layout.translated(5, 5)
        assert moved.position(1) == Point(5, 5)
        # Original untouched.
        assert layout.position(1) == Point(0, 0)

    def test_bounding_rect_empty_raises(self):
        with pytest.raises(LayoutError):
            Layout({}).bounding_rect()

    def test_scaled(self):
        layout = Layout({1: Point(0, 0), 2: Point(2, 0)})
        scaled = layout.scaled(2.0, about=Point(0, 0))
        assert scaled.position(2) == Point(4, 0)
        with pytest.raises(LayoutError):
            layout.scaled(0)

    def test_merged_with(self):
        first = Layout({1: Point(0, 0)})
        second = Layout({1: Point(9, 9), 2: Point(1, 1)})
        merged = first.merged_with(second)
        assert merged.position(1) == Point(9, 9)
        assert len(merged) == 2


class TestAllAlgorithms:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    def test_every_node_gets_coordinates(self, algorithm):
        graph = community_graph(num_communities=3, community_size=12, seed=1)
        layout = algorithm.layout(graph)
        assert set(layout.positions) == set(graph.node_ids())
        for point in layout.positions.values():
            assert math.isfinite(point.x) and math.isfinite(point.y)

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    def test_single_node_graph(self, algorithm):
        graph = Graph()
        graph.add_node(42, label="solo")
        layout = algorithm.layout(graph)
        assert 42 in layout

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    def test_empty_graph_raises(self, algorithm):
        with pytest.raises(LayoutError):
            algorithm.layout(Graph())


class TestForceDirected:
    def test_deterministic_given_seed(self):
        graph = star_graph(15)
        first = ForceDirectedLayout(iterations=20, seed=3).layout(graph)
        second = ForceDirectedLayout(iterations=20, seed=3).layout(graph)
        assert first.positions == second.positions

    def test_connected_nodes_closer_than_average(self):
        graph = community_graph(num_communities=2, community_size=15, inter_edges=1, seed=2)
        layout = ForceDirectedLayout(iterations=60, seed=1).layout(graph)
        edge_length = average_edge_length(graph, layout)
        # Average distance between arbitrary node pairs should exceed the
        # average edge length if the layout reflects structure at all.
        node_ids = sorted(layout.positions)
        pair_distances = [
            layout.position(node_ids[i]).distance_to(layout.position(node_ids[i + 7]))
            for i in range(0, len(node_ids) - 7, 3)
        ]
        assert edge_length < sum(pair_distances) / len(pair_distances)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            ForceDirectedLayout(iterations=0)

    def test_grid_approximation_runs(self):
        graph = path_graph(120)
        layout = ForceDirectedLayout(
            iterations=5, seed=1, approximate_threshold=50
        ).layout(graph)
        assert len(layout) == 120


class TestDeterministicLayouts:
    def test_circular_nodes_on_circle(self):
        graph = path_graph(10)
        layout = CircularLayout().layout(graph)
        radii = [math.hypot(p.x, p.y) for p in layout.positions.values()]
        assert max(radii) - min(radii) < 1e-6

    def test_star_center_is_max_degree(self):
        graph = star_graph(8)
        layout = StarLayout().layout(graph)
        assert layout.position(0) == Point(0.0, 0.0)

    def test_grid_layout_spacing(self):
        graph = grid_graph(3, 3)
        layout = GridLayout(area_per_node=100.0).layout(graph)
        xs = sorted({round(p.x, 6) for p in layout.positions.values()})
        assert len(xs) == 3

    def test_spectral_separates_communities(self):
        graph = community_graph(num_communities=2, community_size=12, inter_edges=1, seed=4)
        layout = SpectralLayout().layout(graph)
        first = [layout.position(n) for n in range(12)]
        second = [layout.position(n) for n in range(12, 24)]
        centroid_a = Point(sum(p.x for p in first) / 12, sum(p.y for p in first) / 12)
        centroid_b = Point(sum(p.x for p in second) / 12, sum(p.y for p in second) / 12)
        spread_a = max(p.distance_to(centroid_a) for p in first)
        assert centroid_a.distance_to(centroid_b) > spread_a / 2

    def test_spectral_small_graph_falls_back(self):
        graph = path_graph(2)
        layout = SpectralLayout().layout(graph)
        assert len(layout) == 2

    def test_hierarchical_ranks_increase_along_path(self):
        graph = Graph(directed=True)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 4)
        layout = HierarchicalLayout().layout(graph)
        ys = [layout.position(n).y for n in (1, 2, 3, 4)]
        assert ys == sorted(ys)
        assert len(set(ys)) == 4

    def test_hierarchical_handles_cycles(self):
        graph = Graph(directed=True)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 1)
        layout = HierarchicalLayout().layout(graph)
        assert len(layout) == 3

    def test_complete_graph_layouts_do_not_collapse(self):
        graph = complete_graph(6)
        layout = CircularLayout().layout(graph)
        points = list(layout.positions.values())
        distinct = {(round(p.x, 3), round(p.y, 3)) for p in points}
        assert len(distinct) == 6


class TestRegistry:
    def test_builtin_layouts_registered(self):
        names = available_layouts()
        for expected in ["force_directed", "circular", "star", "grid", "spectral",
                         "hierarchical", "random"]:
            assert expected in names

    def test_create_layout_passes_parameters(self):
        algorithm = create_layout("force_directed", iterations=7, area_per_node=50.0, seed=9)
        assert algorithm.iterations == 7
        assert algorithm.area_per_node == 50.0

    def test_unknown_layout_raises_with_suggestions(self):
        with pytest.raises(UnknownLayoutError) as excinfo:
            create_layout("sfdp")
        assert "force_directed" in str(excinfo.value)

    def test_register_custom_layout(self):
        register_layout("test_custom", lambda i, a, s: CircularLayout(area_per_node=a))
        assert "test_custom" in available_layouts()
        assert isinstance(create_layout("test_custom"), CircularLayout)

"""Unit tests for the interaction-trace workload generators."""

from __future__ import annotations

import pytest

from repro.bench.traces import exploration_trace, panning_trace
from repro.client.simulator import ClientSimulator
from repro.core.query_manager import QueryManager
from repro.core.session import ExplorationSession


class TestPanningTrace:
    def test_structure(self):
        trace = panning_trace(num_steps=10, step_px=100.0, seed=1)
        assert trace[0] == {"op": "refresh"}
        assert len(trace) == 11
        assert all(entry["op"] == "pan" for entry in trace[1:])

    def test_step_magnitude(self):
        trace = panning_trace(num_steps=5, step_px=200.0, seed=2)
        for entry in trace[1:]:
            magnitude = (entry["dx"] ** 2 + entry["dy"] ** 2) ** 0.5
            assert magnitude == pytest.approx(200.0)

    def test_deterministic(self):
        assert panning_trace(num_steps=8, seed=3) == panning_trace(num_steps=8, seed=3)

    def test_direction_drifts(self):
        trace = panning_trace(num_steps=30, step_px=100.0, seed=4)
        directions = {(round(e["dx"], 3), round(e["dy"], 3)) for e in trace[1:]}
        assert len(directions) > 5


class TestExplorationTrace:
    def test_only_valid_operations(self, patent_result):
        trace = exploration_trace(patent_result.database, num_interactions=25, seed=5)
        assert trace[0] == {"op": "refresh"}
        assert len(trace) == 26
        valid = {"refresh", "pan", "zoom", "layer", "focus"}
        assert all(entry["op"] in valid for entry in trace)

    def test_layers_and_nodes_exist_in_database(self, patent_result):
        trace = exploration_trace(patent_result.database, num_interactions=40, seed=6)
        layers = set(patent_result.database.layers())
        node_ids = patent_result.database.table(0).distinct_node_ids()
        for entry in trace:
            if entry["op"] == "layer":
                assert entry["layer"] in layers
            if entry["op"] == "focus":
                assert entry["node_id"] in node_ids

    def test_trace_is_replayable(self, patent_result):
        manager = QueryManager(patent_result.database)
        session = ExplorationSession(manager)
        simulator = ClientSimulator(manager)
        trace = exploration_trace(patent_result.database, num_interactions=12, seed=7)
        timings = simulator.replay_session_trace(session, trace)
        assert len(timings) == len(trace)
        assert all(t.total_seconds >= 0 for t in timings)

"""Unit tests for graph readers/writers."""

from __future__ import annotations

import pytest

from repro.errors import GraphFormatError
from repro.graph.io import (
    from_networkx,
    read_edge_list,
    read_json,
    read_triples,
    to_networkx,
    write_edge_list,
    write_json,
    write_triples,
)
from repro.graph.model import Graph


class TestEdgeList:
    def test_roundtrip(self, tmp_path, small_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_nodes == small_graph.num_nodes
        assert loaded.num_edges == small_graph.num_edges
        assert loaded.edge(1, 2).label == "knows"

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n1 2\n2 3 cites\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert graph.edge(2, 3).label == "cites"

    def test_bad_column_count_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_non_integer_ids_raise(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestTriples:
    def test_roundtrip_by_labels(self, tmp_path, small_graph):
        path = tmp_path / "graph.nt"
        write_triples(small_graph, path)
        loaded = read_triples(path)
        assert loaded.num_edges == small_graph.num_edges
        labels = {node.label for node in loaded.nodes()}
        assert {"Alice", "Bob", "Carol", "Databases"} <= labels

    def test_labels_are_interned(self, tmp_path):
        path = tmp_path / "graph.nt"
        path.write_text("a\tp\tb\nb\tp\tc\na\tq\tc\n")
        graph = read_triples(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_wrong_field_count_raises(self, tmp_path):
        path = tmp_path / "bad.nt"
        path.write_text("a\tb\n")
        with pytest.raises(GraphFormatError):
            read_triples(path)


class TestJson:
    def test_roundtrip_preserves_attributes(self, tmp_path, small_graph):
        path = tmp_path / "graph.json"
        small_graph.node(1).properties["age"] = 30
        write_json(small_graph, path)
        loaded = read_json(path)
        assert loaded.node(1).properties["age"] == 30
        assert loaded.node(1).node_type == "person"
        assert loaded.directed is True
        assert loaded.edge(1, 2).label == "knows"

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(GraphFormatError):
            read_json(path)

    def test_missing_keys_raise(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(GraphFormatError):
            read_json(path)


class TestNetworkx:
    def test_to_networkx_preserves_structure(self, small_graph):
        nx_graph = to_networkx(small_graph)
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.is_directed()

    def test_roundtrip_via_networkx(self, small_graph):
        back = from_networkx(to_networkx(small_graph))
        assert back.num_nodes == small_graph.num_nodes
        assert back.num_edges == small_graph.num_edges

    def test_from_networkx_undirected(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1)
        graph = from_networkx(nx_graph)
        assert not graph.directed
        assert graph.has_edge(1, 0)

"""Unit tests for the B+-tree."""

from __future__ import annotations

import random

import pytest

from repro.errors import SpatialIndexError
from repro.spatial.btree import BPlusTree


class TestInsertSearch:
    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.search(1) == []
        assert not tree.contains(1)

    def test_single_key(self):
        tree = BPlusTree(order=4)
        tree.insert(10, "row-1")
        assert tree.search(10) == ["row-1"]
        assert tree.contains(10)
        assert tree.num_keys == 1

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.search(5) == ["a", "b"]
        assert tree.num_keys == 1
        assert len(tree) == 2

    def test_many_inserts_splits_and_stays_correct(self):
        tree = BPlusTree(order=5)
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 10)
        assert tree.num_keys == 500
        assert tree.height() > 1
        for key in (0, 17, 499, 250):
            assert tree.search(key) == [key * 10]
        tree.check_invariants()

    def test_order_validation(self):
        with pytest.raises(SpatialIndexError):
            BPlusTree(order=2)


class TestRangeAndIteration:
    def test_keys_sorted(self):
        tree = BPlusTree(order=4)
        for key in [5, 1, 9, 3, 7]:
            tree.insert(key, str(key))
        assert list(tree.keys()) == [1, 3, 5, 7, 9]

    def test_range_search_inclusive(self):
        tree = BPlusTree(order=4)
        for key in range(20):
            tree.insert(key, key)
        result = tree.range_search(5, 8)
        assert [key for key, _ in result] == [5, 6, 7, 8]

    def test_range_search_empty_and_inverted(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert tree.range_search(5, 10) == []
        assert tree.range_search(10, 5) == []

    def test_range_search_with_duplicates(self):
        tree = BPlusTree(order=4)
        tree.insert(3, "x")
        tree.insert(3, "y")
        tree.insert(4, "z")
        assert tree.range_search(3, 4) == [(3, "x"), (3, "y"), (4, "z")]

    def test_items_iterates_everything(self):
        tree = BPlusTree(order=6)
        for key in range(50):
            tree.insert(key, -key)
        items = list(tree.items())
        assert len(items) == 50
        assert items[0] == (0, 0)
        assert items[-1] == (49, -49)


class TestRemove:
    def test_remove_single_value(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a") == 1
        assert tree.search(1) == ["b"]

    def test_remove_all_values_of_key(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1) == 2
        assert not tree.contains(1)
        assert tree.num_keys == 0

    def test_remove_missing(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert tree.remove(2) == 0
        assert tree.remove(1, "nope") == 0

    def test_remove_then_reinsert(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        for key in range(0, 100, 3):
            tree.remove(key)
        for key in range(0, 100, 3):
            assert not tree.contains(key)
            tree.insert(key, key + 1000)
        assert tree.search(3) == [1003]
        tree.check_invariants()

"""Unit tests for the simple partitioners and partition result bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import PartitioningError
from repro.graph.generators import path_graph
from repro.graph.model import Graph
from repro.partition.base import PartitionResult
from repro.partition.quality import balance, evaluate_partition
from repro.partition.simple import BFSPartitioner, HashPartitioner, RandomPartitioner


class TestPartitionResult:
    def test_members_and_sizes(self, small_graph):
        result = PartitionResult(
            graph=small_graph,
            assignment={1: 0, 2: 0, 3: 1, 4: 1},
            num_partitions=2,
        )
        assert result.members(0) == [1, 2]
        assert result.members(1) == [3, 4]
        assert result.partition_sizes() == [2, 2]
        assert result.partition_of(3) == 1

    def test_crossing_edges_and_cut(self, small_graph):
        result = PartitionResult(
            graph=small_graph,
            assignment={1: 0, 2: 0, 3: 1, 4: 1},
            num_partitions=2,
        )
        # Edges: 1->2 (internal), 2->3 (cross), 1->4 (cross), 3->4 (internal).
        assert result.edge_cut() == 2
        counts = result.crossing_edge_counts()
        assert counts == [2, 2]
        matrix = result.crossing_matrix()
        assert matrix[0][1] == 2 and matrix[1][0] == 2

    def test_subgraphs_drop_crossing_edges(self, small_graph):
        result = PartitionResult(
            graph=small_graph,
            assignment={1: 0, 2: 0, 3: 1, 4: 1},
            num_partitions=2,
        )
        subgraphs = result.subgraphs()
        assert subgraphs[0].num_edges == 1
        assert subgraphs[1].num_edges == 1

    def test_missing_assignment_raises(self, small_graph):
        with pytest.raises(PartitioningError):
            PartitionResult(graph=small_graph, assignment={1: 0}, num_partitions=1)

    def test_invalid_partition_index_raises(self, small_graph):
        with pytest.raises(PartitioningError):
            PartitionResult(
                graph=small_graph,
                assignment={1: 0, 2: 0, 3: 0, 4: 5},
                num_partitions=2,
            )

    def test_unknown_node_partition_of_raises(self, small_graph):
        result = PartitionResult(
            graph=small_graph,
            assignment={n: 0 for n in small_graph.node_ids()},
            num_partitions=1,
        )
        with pytest.raises(PartitioningError):
            result.partition_of(99)


class TestSimplePartitioners:
    @pytest.mark.parametrize("partitioner", [
        RandomPartitioner(seed=1), HashPartitioner(), BFSPartitioner(seed=1),
    ])
    def test_every_partition_nonempty(self, partitioner, communities):
        result = partitioner.partition(communities, 4)
        assert result.num_partitions == 4
        assert all(size > 0 for size in result.partition_sizes())

    @pytest.mark.parametrize("partitioner", [
        RandomPartitioner(seed=1), HashPartitioner(), BFSPartitioner(seed=1),
    ])
    def test_all_nodes_assigned(self, partitioner, communities):
        result = partitioner.partition(communities, 3)
        assert set(result.assignment) == set(communities.node_ids())

    def test_k_clamped_to_node_count(self):
        graph = path_graph(3)
        result = BFSPartitioner().partition(graph, 10)
        assert result.num_partitions == 3

    def test_invalid_k_raises(self, communities):
        with pytest.raises(PartitioningError):
            BFSPartitioner().partition(communities, 0)

    def test_empty_graph_raises(self):
        with pytest.raises(PartitioningError):
            RandomPartitioner().partition(Graph(), 2)

    def test_bfs_is_balanced(self, communities):
        result = BFSPartitioner(seed=2).partition(communities, 4)
        assert balance(result) <= 1.3

    def test_bfs_beats_random_on_path(self):
        graph = path_graph(60)
        bfs_cut = BFSPartitioner(seed=0).partition(graph, 4).edge_cut()
        random_cut = RandomPartitioner(seed=0).partition(graph, 4).edge_cut()
        assert bfs_cut < random_cut

    def test_deterministic_given_seed(self, communities):
        first = BFSPartitioner(seed=7).partition(communities, 3)
        second = BFSPartitioner(seed=7).partition(communities, 3)
        assert first.assignment == second.assignment


class TestQualityMetrics:
    def test_evaluate_partition_fields(self, communities):
        result = BFSPartitioner(seed=1).partition(communities, 4)
        quality = evaluate_partition(result)
        assert quality.num_partitions == 4
        assert quality.edge_cut == result.edge_cut()
        assert 0.0 <= quality.cut_ratio <= 1.0
        assert quality.min_size <= quality.max_size
        assert quality.as_dict()["balance"] == pytest.approx(quality.balance)

    def test_single_partition_has_zero_cut(self, communities):
        result = BFSPartitioner().partition(communities, 1)
        quality = evaluate_partition(result)
        assert quality.edge_cut == 0
        assert quality.balance == pytest.approx(1.0)

"""Unit tests for the paper's storage scheme and binary row serialisation."""

from __future__ import annotations

import io

import pytest

from repro.errors import StorageError
from repro.graph.model import Graph
from repro.layout.base import Layout
from repro.spatial.geometry import Point
from repro.storage.schema import COLUMNS, EdgeRow, rows_from_graph
from repro.storage.serialization import decode_row, encode_row, read_rows, write_rows


@pytest.fixture
def laid_out_graph(small_graph):
    layout = Layout({
        1: Point(0.0, 0.0),
        2: Point(100.0, 0.0),
        3: Point(100.0, 100.0),
        4: Point(0.0, 100.0),
    })
    return small_graph, layout


class TestSchema:
    def test_columns_match_paper_figure2(self):
        assert COLUMNS == (
            "node1_id", "node1_label", "edge_geometry", "edge_label", "node2_id", "node2_label",
        )

    def test_rows_from_graph_one_row_per_edge(self, laid_out_graph):
        graph, layout = laid_out_graph
        rows = rows_from_graph(graph, layout)
        assert len(rows) == graph.num_edges
        assert {row.row_id for row in rows} == set(range(len(rows)))

    def test_row_carries_labels_and_geometry(self, laid_out_graph):
        graph, layout = laid_out_graph
        rows = rows_from_graph(graph, layout)
        row = next(r for r in rows if r.node1_id == 1 and r.node2_id == 2)
        assert row.node1_label == "Alice"
        assert row.node2_label == "Bob"
        assert row.edge_label == "knows"
        start, end = row.endpoints()
        assert start == Point(0.0, 0.0)
        assert end == Point(100.0, 0.0)
        assert row.segment().directed is True

    def test_isolated_nodes_become_self_rows(self):
        graph = Graph()
        graph.add_node(1, label="lonely")
        graph.add_edge(2, 3, label="x")
        layout = Layout({1: Point(5, 5), 2: Point(0, 0), 3: Point(1, 1)})
        rows = rows_from_graph(graph, layout)
        self_rows = [row for row in rows if row.is_node_row()]
        assert len(self_rows) == 1
        assert self_rows[0].node1_id == 1
        assert self_rows[0].bounding_rect().area == 0.0

    def test_start_row_id_offset(self, laid_out_graph):
        graph, layout = laid_out_graph
        rows = rows_from_graph(graph, layout, start_row_id=100)
        assert min(row.row_id for row in rows) == 100

    def test_bounding_rect_covers_both_endpoints(self, laid_out_graph):
        graph, layout = laid_out_graph
        for row in rows_from_graph(graph, layout):
            rect = row.bounding_rect()
            start, end = row.endpoints()
            assert rect.contains_point(start) and rect.contains_point(end)

    def test_as_dict_contains_all_columns(self, laid_out_graph):
        graph, layout = laid_out_graph
        row = rows_from_graph(graph, layout)[0]
        as_dict = row.as_dict()
        for column in COLUMNS:
            assert column in as_dict


class TestSerialization:
    @pytest.fixture
    def row(self, laid_out_graph):
        graph, layout = laid_out_graph
        return rows_from_graph(graph, layout)[0]

    def test_encode_decode_roundtrip(self, row):
        assert decode_row(encode_row(row)) == row

    def test_unicode_labels_roundtrip(self, row):
        unicode_row = EdgeRow(
            row_id=7,
            node1_id=1,
            node1_label="Μπικάκης 日本語",
            edge_geometry=row.edge_geometry,
            edge_label="πρᾶξις",
            node2_id=2,
            node2_label="ünïcödé",
        )
        assert decode_row(encode_row(unicode_row)) == unicode_row

    def test_truncated_blob_raises(self, row):
        blob = encode_row(row)
        with pytest.raises(StorageError):
            decode_row(blob[:10])
        with pytest.raises(StorageError):
            decode_row(blob + b"extra")

    def test_stream_roundtrip(self, laid_out_graph):
        graph, layout = laid_out_graph
        rows = rows_from_graph(graph, layout)
        buffer = io.BytesIO()
        assert write_rows(rows, buffer) == len(rows)
        buffer.seek(0)
        loaded = list(read_rows(buffer))
        assert loaded == rows

    def test_stream_truncated_record_raises(self, row):
        buffer = io.BytesIO()
        write_rows([row], buffer)
        data = buffer.getvalue()
        truncated = io.BytesIO(data[:-5])
        with pytest.raises(StorageError):
            list(read_rows(truncated))

    def test_empty_stream(self):
        assert list(read_rows(io.BytesIO(b""))) == []

    def test_oversized_field_raises(self, row):
        huge = EdgeRow(
            row_id=1, node1_id=1, node1_label="x" * 70000,
            edge_geometry=row.edge_geometry, edge_label="", node2_id=2, node2_label="",
        )
        with pytest.raises(StorageError):
            encode_row(huge)

"""Unit tests for ranking criteria, abstraction methods and the layer hierarchy."""

from __future__ import annotations

import pytest

from repro.abstraction.base import AbstractionLayer
from repro.abstraction.filter_layer import FilterAbstraction
from repro.abstraction.hierarchy import (
    LayerHierarchy,
    build_hierarchy,
    create_abstraction_method,
)
from repro.abstraction.merge_layer import MergeAbstraction, label_propagation_communities
from repro.abstraction.ranking import (
    create_ranking,
    degree_scores,
    hits_scores,
    pagerank_scores,
)
from repro.config import AbstractionConfig
from repro.errors import AbstractionError
from repro.graph.generators import community_graph, path_graph, star_graph
from repro.graph.model import Graph
from repro.layout.base import Layout
from repro.layout.circular import CircularLayout
from repro.spatial.geometry import Point


class TestRanking:
    def test_degree_scores(self, small_graph):
        scores = degree_scores(small_graph)
        assert scores[1] == 2.0
        assert scores[4] == 2.0

    def test_pagerank_sums_to_one(self):
        graph = star_graph(10)
        scores = pagerank_scores(graph)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_pagerank_hub_ranks_highest_on_star(self):
        # Directed star pointing inwards: the centre should accumulate rank.
        graph = Graph(directed=True)
        for leaf in range(1, 9):
            graph.add_edge(leaf, 0)
        scores = pagerank_scores(graph)
        assert scores[0] == max(scores.values())

    def test_pagerank_empty_graph(self):
        assert pagerank_scores(Graph()) == {}

    def test_pagerank_handles_dangling_nodes(self):
        graph = Graph(directed=True)
        graph.add_edge(1, 2)  # node 2 has no outgoing edges
        scores = pagerank_scores(graph)
        assert scores[2] > scores[1]
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_hits_authority_on_directed_star(self):
        graph = Graph(directed=True)
        for leaf in range(1, 9):
            graph.add_edge(leaf, 0)
        scores = hits_scores(graph)
        assert scores[0] == max(scores.values())

    def test_hits_empty_graph(self):
        assert hits_scores(Graph()) == {}

    def test_create_ranking_known_and_unknown(self):
        assert create_ranking("degree") is degree_scores
        assert create_ranking("PageRank") is pagerank_scores
        assert create_ranking("hits") is hits_scores
        with pytest.raises(AbstractionError):
            create_ranking("betweenness")


class TestFilterAbstraction:
    @pytest.fixture
    def graph_and_layout(self):
        graph = star_graph(9)
        layout = CircularLayout(area_per_node=100.0).layout(graph)
        return graph, layout

    def test_keep_fraction_respected(self, graph_and_layout):
        graph, layout = graph_and_layout
        layer = FilterAbstraction("degree", keep_fraction=0.5).abstract(graph, layout, 1)
        assert layer.num_nodes == 5
        assert layer.level == 1

    def test_highest_degree_survives(self, graph_and_layout):
        graph, layout = graph_and_layout
        layer = FilterAbstraction("degree", keep_fraction=0.2).abstract(graph, layout, 1)
        assert 0 in set(layer.graph.node_ids())

    def test_positions_preserved(self, graph_and_layout):
        graph, layout = graph_and_layout
        layer = FilterAbstraction("degree", keep_fraction=0.5).abstract(graph, layout, 1)
        for node_id in layer.graph.node_ids():
            assert layer.layout.position(node_id) == layout.position(node_id)

    def test_threshold_mode(self, graph_and_layout):
        graph, layout = graph_and_layout
        layer = FilterAbstraction("degree", threshold=5.0).abstract(graph, layout, 1)
        assert set(layer.graph.node_ids()) == {0}

    def test_threshold_never_empty(self, graph_and_layout):
        graph, layout = graph_and_layout
        layer = FilterAbstraction("degree", threshold=1e9).abstract(graph, layout, 1)
        assert layer.num_nodes == 1

    def test_via_edges_keep_paths_visible(self):
        graph = path_graph(5)
        layout = Layout({i: Point(float(i), 0.0) for i in range(5)})
        layer = FilterAbstraction(
            "degree", keep_fraction=0.6, keep_connecting_edges=False
        ).abstract(graph, layout, 1)
        # Endpoints (degree 1) are dropped; survivors connected through them get
        # via edges only if an intermediate was removed between two survivors.
        assert layer.num_nodes == 3
        assert layer.num_edges >= 2

    def test_invalid_keep_fraction(self):
        with pytest.raises(AbstractionError):
            FilterAbstraction(keep_fraction=0.0)
        with pytest.raises(AbstractionError):
            FilterAbstraction(keep_fraction=1.0)

    def test_empty_graph_raises(self):
        with pytest.raises(AbstractionError):
            FilterAbstraction().abstract(Graph(), Layout({}), 1)

    def test_mapping_is_identity_on_survivors(self, graph_and_layout):
        graph, layout = graph_and_layout
        layer = FilterAbstraction("degree", keep_fraction=0.5).abstract(graph, layout, 1)
        assert all(layer.represents(n) == n for n in layer.graph.node_ids())
        assert layer.represents(10**6) is None


class TestMergeAbstraction:
    def test_communities_collapse_into_supernodes(self):
        graph = community_graph(num_communities=3, community_size=15, inter_edges=2, seed=6)
        layout = CircularLayout(area_per_node=100.0).layout(graph)
        layer = MergeAbstraction(seed=1).abstract(graph, layout, 1)
        assert 1 < layer.num_nodes < graph.num_nodes
        # The mapping covers every original node.
        assert set(layer.node_mapping) == set(graph.node_ids())

    def test_supernode_positions_are_member_centroids(self):
        graph = Graph(directed=False)
        graph.add_edge(1, 2)
        layout = Layout({1: Point(0, 0), 2: Point(10, 0)})
        layer = MergeAbstraction(min_community_size=1, seed=0).abstract(graph, layout, 1)
        if layer.num_nodes == 1:
            assert layer.layout.position(0) == Point(5.0, 0.0)

    def test_supernode_size_property(self):
        graph = community_graph(num_communities=2, community_size=10, inter_edges=1, seed=2)
        layout = CircularLayout().layout(graph)
        layer = MergeAbstraction(seed=3).abstract(graph, layout, 1)
        total = sum(layer.graph.node(n).properties["size"] for n in layer.graph.node_ids())
        assert total == graph.num_nodes

    def test_label_propagation_deterministic(self):
        graph = community_graph(num_communities=3, community_size=10, seed=4)
        first = label_propagation_communities(graph, seed=5)
        second = label_propagation_communities(graph, seed=5)
        assert first == second

    def test_label_propagation_finds_planted_communities(self):
        graph = community_graph(
            num_communities=3, community_size=15, intra_probability=0.5, inter_edges=1, seed=7
        )
        communities = label_propagation_communities(graph, seed=2)
        # Nodes of the same planted community should mostly share a label.
        from collections import Counter

        agreement = 0
        for community_index in range(3):
            members = [communities[n] for n in range(community_index * 15, (community_index + 1) * 15)]
            agreement += Counter(members).most_common(1)[0][1]
        assert agreement >= 0.8 * 45

    def test_invalid_min_size(self):
        with pytest.raises(AbstractionError):
            MergeAbstraction(min_community_size=0)


class TestHierarchy:
    @pytest.fixture
    def base(self):
        graph = community_graph(num_communities=4, community_size=15, seed=9)
        layout = CircularLayout(area_per_node=200.0).layout(graph)
        return graph, layout

    def test_build_hierarchy_layer_zero_is_input(self, base):
        graph, layout = base
        hierarchy = build_hierarchy(graph, layout, AbstractionConfig(num_layers=3))
        assert hierarchy.num_layers >= 2
        assert hierarchy.layer(0).graph is graph
        assert hierarchy.layer(0).criterion == "input"

    def test_layers_shrink_monotonically(self, base):
        graph, layout = base
        hierarchy = build_hierarchy(graph, layout, AbstractionConfig(num_layers=3))
        sizes = [layer.num_nodes for layer in hierarchy]
        assert all(sizes[i] > sizes[i + 1] for i in range(len(sizes) - 1))

    def test_trace_up_follows_mappings(self, base):
        graph, layout = base
        hierarchy = build_hierarchy(
            graph, layout, AbstractionConfig(num_layers=2, criterion="merge")
        )
        if hierarchy.num_layers >= 2:
            node = next(iter(graph.node_ids()))
            mapped = hierarchy.trace_up(node, 0, hierarchy.num_layers - 1)
            assert mapped is None or hierarchy.layer(hierarchy.num_layers - 1).graph.has_node(mapped)

    def test_trace_up_invalid_direction(self, base):
        graph, layout = base
        hierarchy = build_hierarchy(graph, layout, AbstractionConfig(num_layers=1))
        with pytest.raises(AbstractionError):
            hierarchy.trace_up(0, 1, 0)

    def test_zero_extra_layers(self, base):
        graph, layout = base
        hierarchy = build_hierarchy(graph, layout, AbstractionConfig(num_layers=0))
        assert hierarchy.num_layers == 1

    def test_layer_out_of_range_raises(self, base):
        graph, layout = base
        hierarchy = build_hierarchy(graph, layout, AbstractionConfig(num_layers=1))
        with pytest.raises(AbstractionError):
            hierarchy.layer(10)

    def test_hierarchy_validates_levels(self, base):
        graph, layout = base
        layer0 = AbstractionLayer(level=0, graph=graph, layout=layout)
        bad = AbstractionLayer(level=5, graph=graph, layout=layout)
        with pytest.raises(AbstractionError):
            LayerHierarchy([layer0, bad])
        with pytest.raises(AbstractionError):
            LayerHierarchy([])

    def test_create_abstraction_method_factory(self):
        assert isinstance(create_abstraction_method("degree"), FilterAbstraction)
        assert isinstance(create_abstraction_method("merge"), MergeAbstraction)
        with pytest.raises(AbstractionError):
            create_abstraction_method("sampling")

    def test_all_criteria_produce_layers(self, base):
        graph, layout = base
        for criterion in ["degree", "pagerank", "hits", "merge"]:
            hierarchy = build_hierarchy(
                graph, layout, AbstractionConfig(num_layers=2, criterion=criterion)
            )
            assert hierarchy.num_layers >= 2

"""Unit tests for the sampling-based visualization baseline."""

from __future__ import annotations

import pytest

from repro.baselines.sampling import (
    ForestFireSampler,
    RandomEdgeSampler,
    RandomNodeSampler,
    sample_quality,
)
from repro.graph.generators import barabasi_albert, community_graph, path_graph
from repro.graph.model import Graph

ALL_SAMPLERS = [RandomNodeSampler(seed=1), RandomEdgeSampler(seed=1), ForestFireSampler(seed=1)]


class TestSamplers:
    @pytest.mark.parametrize("sampler", ALL_SAMPLERS, ids=lambda s: s.name)
    def test_sample_size_close_to_target(self, sampler):
        graph = community_graph(num_communities=4, community_size=25, seed=3)
        sample = sampler.sample(graph, target_nodes=30)
        assert 0 < sample.num_nodes <= 40  # edge sampler may slightly overshoot

    @pytest.mark.parametrize("sampler", ALL_SAMPLERS, ids=lambda s: s.name)
    def test_sample_is_subgraph(self, sampler):
        graph = community_graph(num_communities=3, community_size=20, seed=4)
        sample = sampler.sample(graph, target_nodes=25)
        for node_id in sample.node_ids():
            assert graph.has_node(node_id)
        for edge in sample.edges():
            assert graph.has_edge(edge.source, edge.target)

    @pytest.mark.parametrize("sampler", ALL_SAMPLERS, ids=lambda s: s.name)
    def test_target_larger_than_graph_returns_everything(self, sampler):
        graph = path_graph(12)
        sample = sampler.sample(graph, target_nodes=100)
        assert sample.num_nodes == 12

    @pytest.mark.parametrize("sampler", ALL_SAMPLERS, ids=lambda s: s.name)
    def test_invalid_target_raises(self, sampler):
        with pytest.raises(ValueError):
            sampler.sample(path_graph(5), target_nodes=0)

    @pytest.mark.parametrize("sampler", ALL_SAMPLERS, ids=lambda s: s.name)
    def test_deterministic_given_seed(self, sampler):
        graph = community_graph(num_communities=3, community_size=15, seed=6)
        first = sampler.sample(graph, target_nodes=20)
        second = type(sampler)(seed=1).sample(graph, target_nodes=20)
        assert set(first.node_ids()) == set(second.node_ids())

    def test_edge_sampler_on_edgeless_graph(self):
        graph = Graph()
        for node_id in range(5):
            graph.add_node(node_id)
        sample = RandomEdgeSampler(seed=2).sample(graph, target_nodes=3)
        assert sample.num_nodes == 3
        assert sample.num_edges == 0

    def test_forest_fire_invalid_probability(self):
        with pytest.raises(ValueError):
            ForestFireSampler(forward_probability=1.5)

    def test_forest_fire_preserves_degree_better_than_node_sampling(self):
        graph = barabasi_albert(400, edges_per_node=3, seed=9)
        target = 80
        fire = ForestFireSampler(seed=2).sample(graph, target)
        uniform = RandomNodeSampler(seed=2).sample(graph, target)
        fire_quality = sample_quality(graph, fire)
        uniform_quality = sample_quality(graph, uniform)
        assert fire_quality.degree_ratio > uniform_quality.degree_ratio


class TestSampleQuality:
    def test_full_sample_has_full_coverage(self):
        graph = community_graph(num_communities=2, community_size=10, seed=1)
        quality = sample_quality(graph, graph.copy())
        assert quality.node_coverage == pytest.approx(1.0)
        assert quality.edge_coverage == pytest.approx(1.0)
        assert quality.degree_ratio == pytest.approx(1.0)

    def test_partial_sample_coverage_below_one(self):
        graph = community_graph(num_communities=2, community_size=15, seed=2)
        sample = RandomNodeSampler(seed=3).sample(graph, target_nodes=10)
        quality = sample_quality(graph, sample)
        assert 0 < quality.node_coverage < 1
        assert 0 <= quality.edge_coverage < 1

    def test_as_dict_fields(self):
        graph = path_graph(6)
        quality = sample_quality(graph, RandomNodeSampler(seed=1).sample(graph, 3))
        payload = quality.as_dict()
        assert set(payload) == {
            "node_coverage", "edge_coverage", "average_degree_original",
            "average_degree_sample", "degree_ratio",
        }

    def test_empty_original_graph(self):
        empty = Graph()
        quality = sample_quality(empty, Graph())
        assert quality.node_coverage == 1.0
        assert quality.edge_coverage == 1.0

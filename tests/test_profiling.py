"""Tests for PR 10: sampling profiler, memory accounting, and the bench gate.

Covers the profiler in isolation (deterministic collection under a fake
clock, collapsed-stack grammar, merge associativity, stack-count bounding),
the per-op attribution plumbing (``thread_op`` registry, span integration),
the :class:`MemorySampler` (attribution sources, refresh hooks, failure
isolation), the pool's resident-size re-estimation, the worker's
``/debug/profile`` + ``/debug/memory`` HTTP endpoints, the ``repro top``
memory pane, and the ``scripts/bench_check.py`` regression-gate logic.
"""

from __future__ import annotations

import asyncio
import http.client
import importlib.util
import json
import threading
from collections import Counter
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.config import GraphVizDBConfig, ObservabilityConfig
from repro.obs.memory import MemorySampler, read_rss_bytes, tracemalloc_top
from repro.obs.profile import (
    IDLE_OP,
    OVERFLOW_STACK,
    SamplingProfiler,
    collapse_frame,
    format_collapsed,
    merge_collapsed,
    op_totals,
    top_frames,
)
from repro.obs.trace import active_thread_ops
from repro.service.frontend import GraphVizDBService
from repro.service.http import serve_http
from repro.service.pool import DatasetPool, PooledDataset


# ---------------------------------------------------------------------------
# Fake frames: the minimal shape ``collapse_frame`` walks.
# ---------------------------------------------------------------------------


def _frame(module: str, name: str, back=None):
    return SimpleNamespace(
        f_code=SimpleNamespace(
            co_qualname=name, co_name=name, co_filename=f"{module}.py"
        ),
        f_globals={"__name__": module},
        f_back=back,
    )


def _chain(*names: str, module: str = "mod"):
    """Build a frame chain from root-first names; returns the leaf frame."""
    frame = None
    for name in names:
        frame = _frame(module, name, back=frame)
    return frame


# ---------------------------------------------------------------------------
# Collapsed-stack grammar
# ---------------------------------------------------------------------------


class TestCollapseFrame:
    def test_root_first_order_with_op_prefix(self):
        key = collapse_frame(_chain("serve", "dispatch", "query"), op="window")
        assert key == "window;mod:serve;mod:dispatch;mod:query"

    def test_missing_op_reads_idle(self):
        assert collapse_frame(_chain("f")) == f"{IDLE_OP};mod:f"
        assert collapse_frame(_chain("f"), op="") == f"{IDLE_OP};mod:f"

    def test_op_names_cannot_corrupt_the_line_grammar(self):
        # Root spans are named like "worker GET /debug/slow" — spaces would
        # break the `stack count` line format, semicolons the stack segments.
        key = collapse_frame(_chain("f"), op="worker GET /x;y")
        op_segment = key.split(";", 1)[0]
        assert " " not in op_segment and op_segment == "worker_GET_/x:y"


class TestMergeCollapsed:
    A = {"window;m:a": 3, "-;m:b": 1}
    B = {"window;m:a": 2, "filter;m:c": 5}
    C = {"-;m:b": 4}

    def test_merge_is_associative_and_commutative(self):
        left = merge_collapsed([merge_collapsed([self.A, self.B]), self.C])
        right = merge_collapsed([self.A, merge_collapsed([self.B, self.C])])
        swapped = merge_collapsed([self.C, self.B, self.A])
        assert left == right == swapped
        assert left == {"window;m:a": 5, "-;m:b": 5, "filter;m:c": 5}

    def test_merge_of_nothing_is_empty(self):
        assert merge_collapsed([]) == {}
        assert merge_collapsed([{}, {}]) == {}

    def test_format_is_deterministic_and_sorted(self):
        text = format_collapsed({"b;m:x": 2, "a;m:y": 2, "c;m:z": 9})
        assert text == "c;m:z 9\na;m:y 2\nb;m:x 2\n"  # count desc, then key

    def test_op_totals_sum_the_first_segment(self):
        stacks = {"window;m:a;m:b": 3, "window;m:a": 2, "-;m:c": 1}
        assert op_totals(stacks) == {"window": 5, "-": 1}

    def test_top_frames_self_and_total(self):
        stacks = {"w;m:a;m:b": 3, "w;m:a": 2, "-;m:c": 1}
        frames = {entry["frame"]: entry for entry in top_frames(stacks)}
        assert frames["m:b"] == {"frame": "m:b", "self": 3, "total": 3}
        assert frames["m:a"] == {"frame": "m:a", "self": 2, "total": 5}
        assert frames["m:c"] == {"frame": "m:c", "self": 1, "total": 1}
        assert len(top_frames(stacks, n=1)) == 1


# ---------------------------------------------------------------------------
# SamplingProfiler
# ---------------------------------------------------------------------------


def _fake_profiler(frames: dict, ops: dict, hz: int = 10) -> SamplingProfiler:
    """A profiler whose clock only advances when its sampler sleeps."""
    now = [0.0]

    def clock() -> float:
        return now[0]

    def sleep(seconds: float) -> None:
        now[0] += seconds

    return SamplingProfiler(
        default_hz=hz,
        clock=clock,
        sleep=sleep,
        frames_provider=lambda: frames,
        op_provider=lambda: ops,
    )


class TestSamplingProfiler:
    def test_fake_clock_collection_is_deterministic(self):
        frames = {1: _chain("a", "b"), 2: _chain("c")}
        profiler = _fake_profiler(frames, ops={1: "window"}, hz=10)
        result = profiler.collect(2.0)
        # Exactly seconds x hz ticks, two threads sampled per tick.
        assert result["ticks"] == 20
        assert result["samples"] == 40
        assert result["hz"] == 10 and result["seconds"] == 2.0
        assert result["stacks"] == {
            "window;mod:a;mod:b": 20,
            f"{IDLE_OP};mod:c": 20,
        }

    def test_explicit_hz_overrides_the_default(self):
        profiler = _fake_profiler({1: _chain("f")}, ops={}, hz=10)
        assert profiler.collect(1.0, hz=50)["ticks"] == 50

    def test_sampler_excludes_its_own_thread(self):
        # The fake frame table keyed by the sampler's own ident must not be
        # sampled (the profiler never profiles itself).
        seen = []
        frames = {}

        def provider():
            ident = next(iter(seen), None)
            return frames if ident is None else {ident: _chain("me")}

        profiler = _fake_profiler({}, ops={})
        profiler._frames = provider

        original_sample = profiler.sample_into

        def capturing(counts, exclude=frozenset()):
            seen.extend(exclude)
            return original_sample(counts, exclude)

        profiler.sample_into = capturing
        result = profiler.collect(0.5)
        assert result["samples"] == 0  # own-thread frames were excluded

    def test_max_stacks_bounds_memory_via_overflow_key(self):
        profiler = _fake_profiler({}, ops={})
        profiler.max_stacks = 2
        counts: Counter = Counter()
        for index in range(5):
            profiler._frames = lambda i=index: {1: _chain(f"fn{i}")}
            profiler.sample_into(counts)
        assert len(counts) <= 3  # two distinct + the overflow bucket
        assert counts[OVERFLOW_STACK] == 3

    def test_collection_restores_the_gil_switch_interval(self):
        import sys

        before = sys.getswitchinterval()
        profiler = _fake_profiler({1: _chain("f")}, ops={})
        profiler.collect(0.2)
        assert sys.getswitchinterval() == before

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(default_hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=0)
        profiler = _fake_profiler({}, ops={})
        with pytest.raises(ValueError):
            profiler.collect(0.0)
        with pytest.raises(ValueError):
            profiler.collect(1.0, hz=-5)


# ---------------------------------------------------------------------------
# Per-op attribution plumbing
# ---------------------------------------------------------------------------


class TestThreadOpRegistry:
    def test_thread_op_tags_and_untags_the_current_thread(self):
        ident = threading.get_ident()
        assert active_thread_ops().get(ident) is None
        with obs.thread_op("window.batch"):
            assert active_thread_ops()[ident] == "window.batch"
            with obs.thread_op("inner"):
                assert active_thread_ops()[ident] == "inner"  # innermost wins
            assert active_thread_ops()[ident] == "window.batch"
        assert active_thread_ops().get(ident) is None

    def test_span_tags_the_thread_it_runs_on(self):
        ident = threading.get_ident()
        trace, token = obs.begin_trace(name="request")
        try:
            with obs.span("window"):
                assert active_thread_ops()[ident] == "window"
        finally:
            trace.finish()
            obs.end_trace(token)
        assert active_thread_ops().get(ident) is None

    def test_profiler_attributes_samples_to_the_tagged_thread(self):
        done = threading.Event()
        release = threading.Event()
        ready = {}

        def worker():
            ready["ident"] = threading.get_ident()
            with obs.thread_op("window.batch"):
                done.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        assert done.wait(timeout=10)
        try:
            # Live registry + fake frames: the sample for the tagged thread
            # must carry its op, every other ident reads idle.
            frames = {ready["ident"]: _chain("batch_fn"), 999: _chain("other")}
            profiler = SamplingProfiler(
                frames_provider=lambda: frames, op_provider=active_thread_ops
            )
            counts: Counter = Counter()
            profiler.sample_into(counts)
            assert counts == {
                "window.batch;mod:batch_fn": 1,
                f"{IDLE_OP};mod:other": 1,
            }
        finally:
            release.set()
            thread.join(timeout=10)


# ---------------------------------------------------------------------------
# MemorySampler
# ---------------------------------------------------------------------------


class TestMemorySampler:
    def test_sample_reads_rss_and_every_source(self):
        sink: list[dict] = []
        sampler = MemorySampler(
            interval_seconds=60.0,
            sources={"pool": lambda: 1024, "journal": lambda: 10},
            on_sample=sink.append,
            rss_reader=lambda: 5000,
        )
        sample = sampler.sample_once()
        assert sample == {"rss_bytes": 5000, "pool_bytes": 1024,
                          "journal_bytes": 10}
        assert sampler.last_sample == sample and sampler.samples == 1
        assert sink == [sample]

    def test_failing_source_degrades_to_zero(self):
        def boom() -> int:
            raise RuntimeError("nope")

        sampler = MemorySampler(
            sources={"bad": boom, "good": lambda: 7}, rss_reader=lambda: 1
        )
        sample = sampler.sample_once()
        assert sample["bad_bytes"] == 0 and sample["good_bytes"] == 7

    def test_refresh_hooks_run_before_sources(self):
        order: list[str] = []
        sampler = MemorySampler(
            sources={"pool": lambda: order.append("source") or 0},
            rss_reader=lambda: 0,
        )
        sampler.add_refresh_hook(lambda: order.append("hook"))
        sampler.add_refresh_hook(lambda: 1 / 0)  # must not kill the tick
        sampler.sample_once()
        assert order == ["hook", "source"]

    def test_background_thread_starts_samples_and_stops(self):
        sampler = MemorySampler(interval_seconds=0.01, rss_reader=lambda: 1)
        assert not sampler.running
        sampler.start()
        try:
            assert sampler.running
            assert sampler.samples >= 1  # immediate first tick
        finally:
            sampler.stop()
        assert not sampler.running
        sampler.start()  # restartable
        sampler.stop()

    def test_validation_and_rss_reader(self):
        with pytest.raises(ValueError):
            MemorySampler(interval_seconds=0)
        assert read_rss_bytes() > 0  # a live Python process is never 0 RSS

    def test_tracemalloc_top_reports_disabled_when_off(self):
        import tracemalloc

        if tracemalloc.is_tracing():  # pragma: no cover - depends on runner
            pytest.skip("tracemalloc already tracing in this process")
        assert tracemalloc_top() == {"enabled": False}


# ---------------------------------------------------------------------------
# Pool resident-size re-estimation
# ---------------------------------------------------------------------------


class _FakeDatabase:
    def __init__(self, size: int) -> None:
        self.size = size

    def resident_bytes(self) -> int:
        return self.size


def _pooled(key: str, size: int) -> PooledDataset:
    return PooledDataset(
        key=key,
        database=_FakeDatabase(size),
        query_manager=None,
        opened_at=0.0,
        open_seconds=0.0,
        resident_bytes=size,
    )


class TestPoolResidentRefresh:
    def test_refresh_reestimates_stale_sizes(self):
        pool = DatasetPool(capacity=4)
        for key, size in (("a", 10), ("b", 20)):
            pool._entries[key] = _pooled(key, size)
        assert pool.total_resident_bytes() == 30
        pool._entries["a"].database.size = 500  # edits grew the dataset
        assert pool.refresh_resident_bytes() == 520
        assert pool._entries["a"].resident_bytes == 500  # entry updated

    def test_refresh_applies_the_byte_budget_to_fresh_sizes(self):
        pool = DatasetPool(capacity=4, max_resident_bytes=100)
        for key, size in (("old", 10), ("new", 10)):
            pool._entries[key] = _pooled(key, size)
        pool._entries["old"].database.size = 500
        total = pool.refresh_resident_bytes()
        # The oldest entry blew the budget post-refresh and was evicted.
        assert list(pool._entries) == ["new"] and total == 10

    def test_refresh_never_evicts_the_last_dataset(self):
        pool = DatasetPool(capacity=4, max_resident_bytes=100)
        pool._entries["only"] = _pooled("only", 10)
        pool._entries["only"].database.size = 9999
        assert pool.refresh_resident_bytes() == 9999
        assert list(pool._entries) == ["only"]  # budget degrades, not empties

    def test_one_broken_estimator_does_not_stop_the_scan(self):
        pool = DatasetPool(capacity=4)
        pool._entries["bad"] = _pooled("bad", 10)
        pool._entries["good"] = _pooled("good", 10)
        pool._entries["bad"].database.resident_bytes = None  # not callable
        pool._entries["good"].database.size = 77
        assert pool.refresh_resident_bytes() == 10 + 77  # bad keeps old value


# ---------------------------------------------------------------------------
# Worker HTTP endpoints + repro top memory pane
# ---------------------------------------------------------------------------


class TestProfilingHttp:
    @pytest.fixture
    def http_server(self, patent_result):
        service = GraphVizDBService(GraphVizDBConfig(
            observability=ObservabilityConfig(memory_sample_seconds=0.05)
        ))
        service.register_dataset("patent", patent_result.database)
        started = threading.Event()
        stop = {}

        def run_loop():
            async def main():
                async with service:
                    server = await serve_http(service, port=0)
                    stop["port"] = server.sockets[0].getsockname()[1]
                    stop["loop"] = asyncio.get_running_loop()
                    stop["event"] = asyncio.Event()
                    started.set()
                    await stop["event"].wait()
                    server.close()
                    await server.wait_closed()

            asyncio.run(main())

        thread = threading.Thread(target=run_loop, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        yield stop["port"]
        stop["loop"].call_soon_threadsafe(stop["event"].set)
        thread.join(timeout=10)

    def _get_json(self, port, path):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_debug_profile_returns_a_collapsed_profile(self, http_server):
        status, profile = self._get_json(
            http_server, "/debug/profile?seconds=0.2&hz=199"
        )
        assert status == 200
        assert profile["hz"] == 199 and profile["seconds"] == 0.2
        assert profile["ticks"] > 0 and profile["samples"] > 0
        assert "worker" in profile  # empty outside a supervised fleet
        for key, count in profile["stacks"].items():
            op, _, frames = key.partition(";")
            assert op and " " not in op
            assert frames and count > 0

    def test_debug_memory_reports_rss_and_attribution(self, http_server):
        status, report = self._get_json(http_server, "/debug/memory")
        assert status == 200
        sample = report["sample"]
        assert sample["rss_bytes"] > 0
        assert "pool_bytes" in sample and "journal_bytes" in sample
        assert report["samples"] >= 1
        assert report["tracemalloc"] == {"enabled": False}  # opt-in knob off

    def test_metrics_carry_memory_and_profile_sections(self, http_server):
        # One profile run first so the counters are nonzero.
        status, _ = self._get_json(http_server, "/debug/profile?seconds=0.1")
        assert status == 200
        status, metrics = self._get_json(http_server, "/metrics")
        assert status == 200
        assert metrics["memory"]["rss_bytes"] > 0
        assert metrics["memory"]["samples"] >= 1
        assert metrics["profile"]["runs"] >= 1
        assert metrics["profile"]["samples"] > 0

    def test_repro_top_renders_the_memory_pane(self, http_server, capsys):
        exit_code = cli_main([
            "top", "--port", str(http_server),
            "--interval", "0.05", "--iterations", "1",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        memory_lines = [
            line for line in out.splitlines() if line.startswith("memory")
        ]
        assert memory_lines, out
        assert "rss=" in memory_lines[0] and "peak=" in memory_lines[0]


# ---------------------------------------------------------------------------
# bench_check regression gate
# ---------------------------------------------------------------------------


def _load_bench_check():
    path = Path(__file__).resolve().parents[1] / "scripts" / "bench_check.py"
    spec = importlib.util.spec_from_file_location("bench_check", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_check():
    return _load_bench_check()


class TestBenchCheck:
    def test_metric_direction_conventions(self, bench_check):
        lower = ("window_p99_ms", "obs_on_ms", "overhead_ratio",
                 "recovery_ms", "per_record_ns", "latency_budget",
                 "requests_lost")
        higher = ("records_per_second", "speedup_4w", "router_2w_rps_throughput",
                  "cache_hits", "qps")
        ignored = ("recorded_at", "scale", "dataset", "requests", "seed",
                   "cpu_count", "profiler_hz")
        for key in lower:
            assert bench_check.metric_direction(key) == -1, key
        for key in higher:
            assert bench_check.metric_direction(key) == 1, key
        for key in ignored:
            assert bench_check.metric_direction(key) == 0, key

    def test_rates_win_over_embedded_time_markers(self, bench_check):
        # "_per_second" contains "second"-ish text; the rate marker must win.
        assert bench_check.metric_direction("rows_per_second") == 1

    def test_compare_entries_flags_only_bad_moves(self, bench_check):
        previous = {"p99_ms": 100.0, "rps_per_second": 1000.0, "requests": 10}
        latest = {"p99_ms": 130.0, "rps_per_second": 700.0, "requests": 99}
        found = bench_check.compare_entries(previous, latest, threshold=0.2)
        metrics = {item["metric"] for item in found}
        assert metrics == {"p99_ms", "rps_per_second"}  # requests: no direction

        improvements = bench_check.compare_entries(
            {"p99_ms": 130.0, "rps_per_second": 700.0},
            {"p99_ms": 100.0, "rps_per_second": 1000.0},
            threshold=0.2,
        )
        assert improvements == []

    def test_compare_entries_skips_unusable_values(self, bench_check):
        previous = {"p99_ms": 0.0, "speedup": True, "restart_ms": None}
        latest = {"p99_ms": 50.0, "speedup": 0.1, "restart_ms": 5.0,
                  "new_metric_ms": 9.0}
        assert bench_check.compare_entries(previous, latest, 0.2) == []

    def test_series_are_keyed_by_dataset_kind_and_scale(self, bench_check):
        a = {"dataset": "patent", "kind": "throughput", "scale": 0.5}
        b = {"dataset": "patent", "kind": "throughput", "scale": 1.0}
        assert bench_check.series_key(a) != bench_check.series_key(b)
        assert bench_check.series_key(a) == bench_check.series_key(dict(a))

    def test_main_warns_by_default_and_fails_strict(self, bench_check,
                                                    tmp_path, capsys):
        trajectory = [
            {"dataset": "d", "kind": "k", "scale": 0.5, "p99_ms": 10.0},
            {"dataset": "d", "kind": "k", "scale": 0.5, "p99_ms": 50.0},
        ]
        (tmp_path / "BENCH_test.json").write_text(json.dumps(trajectory))
        report = tmp_path / "report.txt"

        code = bench_check.main(
            ["--root", str(tmp_path), "--report", str(report)]
        )
        assert code == 0  # warn-only by default
        out = capsys.readouterr().out
        assert "REGRESSION p99_ms" in out
        assert "REGRESSION p99_ms" in report.read_text()

        code = bench_check.main(
            ["--root", str(tmp_path), "--report", str(report), "--strict"]
        )
        assert code == 1

    def test_main_with_no_trajectories_is_an_error(self, bench_check,
                                                   tmp_path, capsys):
        code = bench_check.main(
            ["--root", str(tmp_path), "--report", str(tmp_path / "r.txt")]
        )
        assert code == 2
        capsys.readouterr()

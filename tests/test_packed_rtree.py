"""PackedRTree: cross-checks against the dynamic RTree plus table fallback.

The packed index must be a drop-in replacement for the online read path:
window, count and kNN queries over randomized rectangle sets (including
degenerate zero-area rectangles) must return exactly the same result sets as
the dynamic tree, and a table built with the packed index must transparently
demote to a dynamic tree when the Edit panel mutates geometry.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.config import StorageConfig
from repro.core.json_builder import build_payload, payload_to_json, table_fragments
from repro.core.query_manager import QueryManager
from repro.errors import ConfigurationError, SpatialIndexError
from repro.spatial.geometry import Point, Rect
from repro.spatial.packed_rtree import PackedRTree, hilbert_d
from repro.spatial.rtree import RTree
from repro.storage.database import GraphVizDatabase


@pytest.fixture()
def fresh_database(patent_result):
    """A mutable copy of the patent layer-0 table under the default (packed) config."""
    database = GraphVizDatabase(name="editable")
    database.load_layer(0, list(patent_result.database.table(0).scan()))
    return database


def random_rects(rng: random.Random, count: int) -> list[tuple[Rect, int]]:
    """Random rectangles, one third of them degenerate (zero width/height/both)."""
    entries: list[tuple[Rect, int]] = []
    for index in range(count):
        x = rng.uniform(-500, 500)
        y = rng.uniform(-500, 500)
        shape = index % 3
        if shape == 0:
            w = rng.uniform(0, 60)
            h = rng.uniform(0, 60)
        elif shape == 1:
            w, h = 0.0, rng.uniform(0, 40)  # vertical segment
        else:
            w = h = 0.0  # point
        entries.append((Rect(x, y, x + w, y + h), index))
    return entries


@pytest.mark.parametrize("seed", [0, 1, 7])
@pytest.mark.parametrize("count", [0, 1, 5, 33, 400])
def test_window_and_count_match_dynamic_rtree(seed, count):
    rng = random.Random(seed)
    entries = random_rects(rng, count)
    dynamic = RTree(max_entries=8)
    for rect, item in entries:
        dynamic.insert(rect, item)
    packed = PackedRTree.bulk_load(entries, max_entries=8)
    packed.check_invariants()
    assert len(packed) == len(dynamic) == count

    windows = [
        Rect(-600, -600, 600, 600),  # everything
        Rect(500, 500, 501, 501),    # likely empty corner
    ] + [
        Rect(x, y, x + rng.uniform(0, 200), y + rng.uniform(0, 200))
        for x, y in ((rng.uniform(-550, 450), rng.uniform(-550, 450)) for _ in range(25))
    ]
    for window in windows:
        expected = sorted(dynamic.window_query(window))
        got = sorted(packed.window_query(window))
        assert got == expected
        assert packed.count_window(window) == len(expected)

    # Point queries via degenerate windows.
    for rect, _ in entries[:20]:
        point = Point(rect.min_x, rect.min_y)
        assert sorted(packed.point_query(point)) == sorted(dynamic.point_query(point))


@pytest.mark.parametrize("seed", [3, 11])
def test_knn_matches_dynamic_rtree(seed):
    rng = random.Random(seed)
    entries = random_rects(rng, 150)
    dynamic = RTree(max_entries=8)
    for rect, item in entries:
        dynamic.insert(rect, item)
    packed = PackedRTree.bulk_load(entries, max_entries=8)

    rect_by_item = {item: rect for rect, item in entries}
    for _ in range(10):
        query = Point(rng.uniform(-600, 600), rng.uniform(-600, 600))
        for k in (1, 5, 17):
            got = packed.nearest(query, k=k)
            expected = dynamic.nearest(query, k=k)
            assert len(got) == len(expected) == min(k, len(entries))
            got_d = [rect_by_item[item].min_distance_to_point(query) for item in got]
            expected_d = [
                rect_by_item[item].min_distance_to_point(query) for item in expected
            ]
            # Same distance profile; identical items whenever ties are absent.
            assert got_d == pytest.approx(expected_d)


def test_batched_window_query_matches_sequential():
    rng = random.Random(42)
    entries = random_rects(rng, 300)
    packed = PackedRTree.bulk_load(entries, max_entries=16)
    windows = [
        Rect(x, y, x + 120, y + 120)
        for x, y in ((rng.uniform(-550, 450), rng.uniform(-550, 450)) for _ in range(12))
    ]
    batched = packed.window_query_batch(windows)
    assert len(batched) == len(windows)
    for window, result in zip(windows, batched):
        assert sorted(result) == sorted(packed.window_query(window))


def test_empty_tree_queries():
    packed = PackedRTree.bulk_load([], max_entries=8)
    window = Rect(0, 0, 10, 10)
    assert packed.window_query(window) == []
    assert packed.window_query_batch([window, window]) == [[], []]
    assert packed.count_window(window) == 0
    assert packed.nearest(Point(0, 0), k=3) == []
    assert packed.bounds is None
    assert list(packed.all_items()) == []
    packed.check_invariants()


def test_packed_tree_is_immutable():
    packed = PackedRTree.bulk_load([(Rect(0, 0, 1, 1), 0)], max_entries=8)
    assert not packed.supports_updates
    with pytest.raises(SpatialIndexError):
        packed.insert(Rect(2, 2, 3, 3), 1)
    with pytest.raises(SpatialIndexError):
        packed.delete(Rect(0, 0, 1, 1), 0)


def test_stats_and_bounds():
    entries = random_rects(random.Random(5), 200)
    packed = PackedRTree.bulk_load(entries, max_entries=8)
    stats = packed.stats()
    assert stats.num_entries == 200
    assert stats.num_leaves == 25
    assert stats.height >= 2
    assert stats.max_entries == 8
    bounds = packed.bounds
    for rect, _ in entries:
        assert bounds.contains_rect(rect)


def test_hilbert_d_is_a_bijection_on_a_small_grid():
    order = 4
    side = 1 << order
    values = {hilbert_d(x, y, order) for x in range(side) for y in range(side)}
    assert values == set(range(side * side))


def test_invalid_index_kind_rejected():
    with pytest.raises(ConfigurationError):
        StorageConfig(index_kind="quadtree")


class TestPackedLayerTable:
    """LayerTable + database behaviour with the packed index active."""

    @pytest.fixture()
    def database(self, patent_result):
        # patent_result uses the default StorageConfig (packed).
        return patent_result.database

    def test_default_config_builds_packed_index(self, database):
        assert isinstance(database.table(0).rtree, PackedRTree)
        database.validate()

    def test_rtree_config_builds_dynamic_index(self, patent_result):
        config = StorageConfig(index_kind="rtree")
        rebuilt = GraphVizDatabase(name="dyn", config=config)
        rows = list(patent_result.database.table(0).scan())
        rebuilt.load_layer(0, rows)
        assert isinstance(rebuilt.table(0).rtree, RTree)

    def test_packed_and_dynamic_tables_return_identical_rows(self, patent_result):
        packed_table = patent_result.database.table(0)
        config = StorageConfig(index_kind="rtree")
        rebuilt = GraphVizDatabase(name="dyn", config=config)
        rebuilt.load_layer(0, list(packed_table.scan()))
        dynamic_table = rebuilt.table(0)
        bounds = packed_table.bounds()
        rng = random.Random(9)
        for _ in range(10):
            cx = rng.uniform(bounds.min_x, bounds.max_x)
            cy = rng.uniform(bounds.min_y, bounds.max_y)
            window = Rect.from_center(Point(cx, cy), 800, 800)
            packed_rows = [row.row_id for row in packed_table.window_query(window)]
            dynamic_rows = [row.row_id for row in dynamic_table.window_query(window)]
            assert packed_rows == dynamic_rows

    def test_edit_demotes_packed_to_dynamic(self, fresh_database):
        database = fresh_database
        table = database.table(0)
        assert isinstance(table.rtree, PackedRTree)

        victim = next(table.scan())
        table.delete_row(victim.row_id)
        assert isinstance(table.rtree, RTree)
        database.validate()

        # Re-inserting through the dynamic tree keeps everything consistent.
        table.insert(victim)
        database.validate()
        window = victim.bounding_rect().expanded(1.0)
        assert victim.row_id in {row.row_id for row in table.window_query(window)}

    def test_insert_as_first_edit_indexes_row_exactly_once(self, fresh_database):
        """An insert demoting the packed index must not double-index the row."""
        table = fresh_database.table(0)
        assert isinstance(table.rtree, PackedRTree)
        template = next(table.scan())
        new_row = type(template)(
            row_id=table.next_row_id(),
            node1_id=10**6,
            node1_label="fresh",
            edge_geometry=template.edge_geometry,
            edge_label="",
            node2_id=10**6,
            node2_label="fresh",
        )
        table.insert(new_row)
        assert isinstance(table.rtree, RTree)
        assert len(table.rtree) == table.num_rows
        matches = [
            row_id for row_id in table.rtree.window_query(new_row.bounding_rect())
            if row_id == new_row.row_id
        ]
        assert matches == [new_row.row_id]
        fresh_database.validate()

    def test_incremental_bulk_load_demotes_and_invalidates(self, fresh_database):
        """bulk_load(bulk_rtree=False) on a packed table must demote first and
        refresh per-row caches for overwritten rows."""
        table = fresh_database.table(0)
        assert isinstance(table.rtree, PackedRTree)
        manager = QueryManager(fresh_database)
        bounds = table.bounds()
        manager.window_query(bounds, layer=0)  # warm segment/fragment caches

        victim = next(table.scan())
        relabelled = type(victim)(
            row_id=victim.row_id,
            node1_id=victim.node1_id,
            node1_label="BULK-RELOADED",
            edge_geometry=victim.edge_geometry,
            edge_label=victim.edge_label,
            node2_id=victim.node2_id,
            node2_label=victim.node2_label,
        )
        table.bulk_load([relabelled], bulk_rtree=False)
        assert isinstance(table.rtree, RTree)
        result = manager.window_query(bounds, layer=0)
        labels = {node["id"]: node["label"] for node in result.payload.nodes}
        assert labels[victim.node1_id] == "BULK-RELOADED"

    def test_delete_as_first_edit(self, fresh_database):
        table = fresh_database.table(0)
        victim = next(table.scan())
        table.delete_row(victim.row_id)
        assert len(table.rtree) == table.num_rows
        assert victim.row_id not in set(table.rtree.all_items())
        fresh_database.validate()

    def test_batched_table_query_matches_sequential(self, database):
        table = database.table(0)
        bounds = table.bounds()
        rng = random.Random(13)
        windows = [
            Rect.from_center(
                Point(
                    rng.uniform(bounds.min_x, bounds.max_x),
                    rng.uniform(bounds.min_y, bounds.max_y),
                ),
                600,
                600,
            )
            for _ in range(8)
        ]
        batched = table.window_query_batch(windows)
        for window, result in zip(windows, batched):
            assert [row.row_id for row in result] == [
                row.row_id for row in table.window_query(window)
            ]


class TestZeroCopyPayload:
    def test_fragment_payload_matches_plain_payload(self, patent_result):
        table = patent_result.database.table(0)
        rows = table.window_query(table.bounds())
        plain = build_payload(rows)
        fast = build_payload(rows, fragments=table_fragments(table))
        assert fast.nodes == plain.nodes
        assert fast.edges == plain.edges
        # Concatenated pre-serialised fragments are byte-identical to a full dump.
        assert payload_to_json(fast) == payload_to_json(plain)
        assert json.loads(payload_to_json(fast)) == plain.as_dict()

    def test_fragments_are_reused_across_queries(self, patent_result):
        table = patent_result.database.table(0)
        manager = QueryManager(patent_result.database)
        window = table.bounds()
        first = manager.window_query(window, layer=0)
        second = manager.window_query(window, layer=0)
        # The cached node dictionaries are the very same objects (zero-copy).
        assert first.payload.nodes[0] is second.payload.nodes[0]

    def test_fragment_cache_invalidated_on_edit(self, fresh_database):
        database = fresh_database
        manager = QueryManager(database)
        table = database.table(0)
        bounds = table.bounds()
        before = manager.window_query(bounds, layer=0)
        assert table.fragment_cache

        from repro.core.editing import GraphEditor

        node_id = before.payload.nodes[0]["id"]
        GraphEditor(database).rename_node(node_id, "RENAMED")
        after = manager.window_query(bounds, layer=0)
        labels = {node["id"]: node["label"] for node in after.payload.nodes}
        assert labels[node_id] == "RENAMED"
        assert json.loads(payload_to_json(after.payload)) == after.payload.as_dict()

    def test_stale_window_cache_hit_does_not_poison_fragments(self, fresh_database):
        """A cache hit served between an edit and invalidate() may show stale
        rows (pre-existing window-cache semantics), but it must not write
        stale fragments back into the table's authoritative cache."""
        from repro.core.cache import CachingQueryManager
        from repro.core.editing import GraphEditor

        database = fresh_database
        caching = CachingQueryManager(QueryManager(database), prefetch_margin=0.5)
        table = database.table(0)
        window = table.bounds()
        first = caching.window_query(window, layer=0)
        node_id = first.payload.nodes[0]["id"]

        GraphEditor(database).rename_node(node_id, "RENAMED")
        # Serve a cache hit before the session invalidates the window cache.
        caching.window_query(window, layer=0)

        # A fresh (uncached) query must see the new label.
        fresh = QueryManager(database).window_query(window, layer=0)
        labels = {node["id"]: node["label"] for node in fresh.payload.nodes}
        assert labels[node_id] == "RENAMED"


class TestPackedSerialization:
    """to_bytes/from_bytes: the zero-rebuild persistence format."""

    def _tree(self, seed: int = 3, count: int = 200) -> PackedRTree:
        return PackedRTree.bulk_load(
            random_rects(random.Random(seed), count), max_entries=8
        )

    def test_round_trip_is_query_identical(self):
        tree = self._tree()
        restored = PackedRTree.from_bytes(tree.to_bytes())
        restored.check_invariants()
        assert len(restored) == len(tree)
        assert restored.stats() == tree.stats()
        assert restored.bounds == tree.bounds
        assert list(restored.all_items()) == list(tree.all_items())
        rng = random.Random(11)
        for _ in range(25):
            x, y = rng.uniform(-600, 600), rng.uniform(-600, 600)
            window = Rect(x, y, x + rng.uniform(0, 200), y + rng.uniform(0, 200))
            assert restored.window_query(window) == tree.window_query(window)
            assert restored.count_window(window) == tree.count_window(window)
            point = Point(x, y)
            assert restored.nearest(point, k=7) == tree.nearest(point, k=7)

    def test_round_trip_bytes_are_stable(self):
        """Serialising a restored tree reproduces the page byte-for-byte."""
        page = self._tree().to_bytes()
        assert PackedRTree.from_bytes(page).to_bytes() == page

    def test_empty_tree_round_trip(self):
        tree = PackedRTree.bulk_load([])
        restored = PackedRTree.from_bytes(tree.to_bytes())
        assert len(restored) == 0
        assert restored.bounds is None
        assert restored.window_query(Rect(-1, -1, 1, 1)) == []

    def test_truncated_page_rejected(self):
        page = self._tree().to_bytes()
        with pytest.raises(SpatialIndexError):
            PackedRTree.from_bytes(page[: len(page) - 9])
        with pytest.raises(SpatialIndexError):
            PackedRTree.from_bytes(page[:10])
        with pytest.raises(SpatialIndexError):
            PackedRTree.from_bytes(page + b"\x00")

    def test_bad_magic_and_version_rejected(self):
        page = bytearray(self._tree().to_bytes())
        bad_magic = bytes(page)
        bad_magic = b"XXXX" + bad_magic[4:]
        with pytest.raises(SpatialIndexError):
            PackedRTree.from_bytes(bad_magic)
        bad_version = bytes(page[:4]) + (999).to_bytes(2, "little") + bytes(page[6:])
        with pytest.raises(SpatialIndexError):
            PackedRTree.from_bytes(bad_version)

    def test_non_integer_items_not_serialisable(self):
        tree = PackedRTree.bulk_load([(Rect(0, 0, 1, 1), "not-an-int")])
        with pytest.raises(SpatialIndexError):
            tree.to_bytes()

    def test_same_length_corruption_rejected(self):
        """A flipped byte in the body must fail the checksum, not crash a query."""
        page = bytearray(self._tree().to_bytes())
        page[len(page) // 2] ^= 0xFF
        with pytest.raises(SpatialIndexError):
            PackedRTree.from_bytes(bytes(page))

    def test_out_of_bounds_topology_rejected(self):
        """A crafted page with a valid checksum but broken topology is refused."""
        import struct
        import zlib

        from repro.spatial.packed_rtree import _PAGE_HEADER

        page = bytearray(self._tree().to_bytes())
        # Corrupt the first child_first value (the topology block starts after
        # the entry columns, items and node coordinate columns).
        header = _PAGE_HEADER.unpack_from(page, 0)
        num_entries, num_nodes = header[4], header[5]
        offset = _PAGE_HEADER.size + 8 * (5 * num_entries + 4 * num_nodes)
        struct.pack_into("<q", page, offset, 10**9)
        # Re-seal the checksum so only the bounds check can catch it.
        struct.pack_into(
            "<I", page, _PAGE_HEADER.size - 4,
            zlib.crc32(bytes(page[_PAGE_HEADER.size:])),
        )
        with pytest.raises(SpatialIndexError):
            PackedRTree.from_bytes(bytes(page))


class TestRepack:
    """Edit-panel demote -> repack() -> packed round trip."""

    def test_demote_then_repack_restores_packed_index(self, fresh_database):
        from repro.core.editing import GraphEditor

        database = fresh_database
        table = database.table(0)
        editor = GraphEditor(database)
        assert isinstance(table.rtree, PackedRTree)

        node_id = next(table.scan()).node1_id
        editor.rename_node(node_id, "EDITED")
        editor.move_node(node_id, Point(12345.0, -6789.0))
        assert isinstance(table.rtree, RTree)  # demoted by the edits

        reference = {
            row.row_id for row in table.window_query(table.bounds().expanded(10))
        }
        changed = editor.repack()
        assert changed
        assert isinstance(table.rtree, PackedRTree)
        assert table.index_kind == "packed"
        assert editor.journal[-1].kind == "repack"
        repacked = {
            row.row_id for row in table.window_query(table.bounds().expanded(10))
        }
        assert repacked == reference
        database.validate()

        # Repacking an already-packed table is a no-op signal, still packed.
        assert editor.repack() is False
        assert isinstance(table.rtree, PackedRTree)

    def test_repack_then_edit_demotes_again(self, fresh_database):
        table = fresh_database.table(0)
        victim = next(table.scan())
        table.delete_row(victim.row_id)
        assert table.repack() is True
        # The packed index reflects the deletion and supports further edits.
        assert victim.row_id not in set(table.rtree.all_items())
        table.insert(victim)
        assert isinstance(table.rtree, RTree)
        fresh_database.validate()

"""Unit tests for the R-tree."""

from __future__ import annotations

import random

import pytest

from repro.errors import SpatialIndexError
from repro.spatial.geometry import Point, Rect
from repro.spatial.rtree import RTree


def random_rects(count: int, seed: int = 0, extent: float = 1000.0) -> list[Rect]:
    rng = random.Random(seed)
    rects = []
    for _ in range(count):
        x = rng.uniform(0, extent)
        y = rng.uniform(0, extent)
        w = rng.uniform(0, extent / 20)
        h = rng.uniform(0, extent / 20)
        rects.append(Rect(x, y, x + w, y + h))
    return rects


def brute_force_window(rects: list[Rect], window: Rect) -> set[int]:
    return {index for index, rect in enumerate(rects) if rect.intersects(window)}


class TestInsertAndQuery:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.bounds is None
        assert tree.window_query(Rect(0, 0, 10, 10)) == []

    def test_single_entry(self):
        tree = RTree()
        tree.insert(Rect(1, 1, 2, 2), "a")
        assert len(tree) == 1
        assert tree.window_query(Rect(0, 0, 3, 3)) == ["a"]
        assert tree.window_query(Rect(5, 5, 6, 6)) == []

    def test_window_query_matches_brute_force(self):
        rects = random_rects(300, seed=7)
        tree = RTree(max_entries=8)
        for index, rect in enumerate(rects):
            tree.insert(rect, index)
        for window_seed in range(10):
            rng = random.Random(window_seed)
            x, y = rng.uniform(0, 900), rng.uniform(0, 900)
            window = Rect(x, y, x + 150, y + 150)
            assert set(tree.window_query(window)) == brute_force_window(rects, window)

    def test_invariants_after_many_inserts(self):
        tree = RTree(max_entries=4)
        for index, rect in enumerate(random_rects(200, seed=3)):
            tree.insert(rect, index)
        tree.check_invariants()
        stats = tree.stats()
        assert stats.num_entries == 200
        assert stats.height >= 3

    def test_constructor_validation(self):
        with pytest.raises(SpatialIndexError):
            RTree(max_entries=2)
        with pytest.raises(SpatialIndexError):
            RTree(min_fill=0.9)


class TestBulkLoad:
    def test_bulk_load_matches_brute_force(self):
        rects = random_rects(500, seed=11)
        tree = RTree.bulk_load([(rect, index) for index, rect in enumerate(rects)], max_entries=16)
        assert len(tree) == 500
        tree.check_invariants()
        window = Rect(100, 100, 400, 400)
        assert set(tree.window_query(window)) == brute_force_window(rects, window)

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []

    def test_bulk_load_is_shallower_than_repeated_insert(self):
        rects = random_rects(400, seed=5)
        entries = [(rect, index) for index, rect in enumerate(rects)]
        bulk = RTree.bulk_load(entries, max_entries=8)
        incremental = RTree(max_entries=8)
        for rect, item in entries:
            incremental.insert(rect, item)
        assert bulk.stats().num_nodes <= incremental.stats().num_nodes


class TestPointAndNearest:
    def test_point_query(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 10, 10), "big")
        tree.insert(Rect(20, 20, 30, 30), "far")
        assert tree.point_query(Point(5, 5)) == ["big"]
        assert tree.point_query(Point(15, 15)) == []

    def test_nearest_orders_by_distance(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 1, 1), "near")
        tree.insert(Rect(10, 10, 11, 11), "mid")
        tree.insert(Rect(100, 100, 101, 101), "far")
        assert tree.nearest(Point(0, 0), k=2) == ["near", "mid"]

    def test_nearest_k_larger_than_size(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 1, 1), "only")
        assert tree.nearest(Point(5, 5), k=10) == ["only"]

    def test_nearest_empty_or_zero_k(self):
        tree = RTree()
        assert tree.nearest(Point(0, 0)) == []
        tree.insert(Rect(0, 0, 1, 1), "x")
        assert tree.nearest(Point(0, 0), k=0) == []


class TestDeletion:
    def test_delete_existing(self):
        tree = RTree()
        rect = Rect(0, 0, 1, 1)
        tree.insert(rect, "a")
        tree.insert(Rect(5, 5, 6, 6), "b")
        assert tree.delete(rect, "a") is True
        assert len(tree) == 1
        assert tree.window_query(Rect(-1, -1, 2, 2)) == []

    def test_delete_missing_returns_false(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 1, 1), "a")
        assert tree.delete(Rect(0, 0, 1, 1), "other") is False
        assert len(tree) == 1

    def test_delete_many_keeps_queries_correct(self):
        rects = random_rects(120, seed=9)
        tree = RTree(max_entries=6)
        for index, rect in enumerate(rects):
            tree.insert(rect, index)
        for index in range(0, 120, 2):
            assert tree.delete(rects[index], index)
        window = Rect(0, 0, 1000, 1000)
        remaining = set(tree.window_query(window))
        assert remaining == set(range(1, 120, 2))

    def test_count_window(self):
        rects = random_rects(100, seed=2)
        tree = RTree.bulk_load([(rect, index) for index, rect in enumerate(rects)])
        window = Rect(0, 0, 500, 500)
        assert tree.count_window(window) == len(brute_force_window(rects, window))

    def test_all_items(self):
        tree = RTree()
        for index, rect in enumerate(random_rects(30, seed=1)):
            tree.insert(rect, index)
        assert set(tree.all_items()) == set(range(30))

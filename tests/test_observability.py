"""Unit and integration tests for the observability subsystem (``repro.obs``).

Covers the PR 8 tentpole end to end: the log-bucketed streaming histogram
(bucket boundaries, merge associativity, percentile accuracy against a sorted
reference), the bounded ``QueryLog`` riding on it, contextvars-based trace
plumbing, the bounded trace ring + slow-query log, trace propagation over a
live worker HTTP server, the Prometheus text exposition (golden file), and
the ``repro top`` CLI against a live server.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import threading
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.config import GraphVizDBConfig, ObservabilityConfig, SLOConfig
from repro.core.monitoring import QueryLog, ServiceMetrics
from repro.obs import (
    NUM_BUCKETS,
    Histogram,
    TraceStore,
    bucket_index,
    bucket_upper_bound,
    percentiles_from_state,
    render_prometheus,
)
from repro.obs.trace import sanitize_trace_id
from repro.service.frontend import GraphVizDBService
from repro.service.http import serve_http

#: sqrt(2): adjacent bucket bounds differ by this ratio (two per octave).
_BUCKET_RATIO = math.sqrt(2.0)

#: Deterministic latency-like sample spread over ~6 orders of magnitude.
_SAMPLES = [1.7e-5 * (1.31 ** (index % 47)) + 1e-7 * index for index in range(400)]


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------


class TestHistogramBuckets:
    def test_small_and_nonpositive_values_land_in_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-3.0) == 0
        assert bucket_index(1e-9) == 0
        assert bucket_index(1e-5) == 0  # exactly the bucket-0 upper bound

    def test_boundary_values_land_in_the_bounded_bucket(self):
        # A value exactly on a bucket's upper bound belongs to that bucket,
        # despite floating-point log jitter.
        for index in range(NUM_BUCKETS - 1):
            assert bucket_index(bucket_upper_bound(index)) == index

    def test_values_just_past_a_boundary_move_up_one_bucket(self):
        for index in range(NUM_BUCKETS - 2):
            nudged = bucket_upper_bound(index) * (1 + 1e-6)
            assert bucket_index(nudged) == index + 1

    def test_bounds_grow_by_sqrt_two_and_overflow_is_infinite(self):
        for index in range(NUM_BUCKETS - 2):
            ratio = bucket_upper_bound(index + 1) / bucket_upper_bound(index)
            assert ratio == pytest.approx(_BUCKET_RATIO)
        assert bucket_upper_bound(NUM_BUCKETS - 1) == math.inf
        assert bucket_index(1e12) == NUM_BUCKETS - 1

    def test_every_value_is_covered_by_its_bucket(self):
        for value in _SAMPLES:
            index = bucket_index(value)
            assert value <= bucket_upper_bound(index) * (1 + 1e-12)
            if index > 0:
                assert value > bucket_upper_bound(index - 1) * (1 - 1e-12)


class TestHistogramMerge:
    @staticmethod
    def _filled(values) -> Histogram:
        histogram = Histogram()
        for value in values:
            histogram.record(value)
        return histogram

    def test_merge_is_associative(self):
        chunks = (_SAMPLES[0::3], _SAMPLES[1::3], _SAMPLES[2::3])

        left = self._filled(chunks[0])  # (a + b) + c
        left.merge(self._filled(chunks[1]))
        left.merge(self._filled(chunks[2]))

        tail = self._filled(chunks[1])  # a + (b + c)
        tail.merge(self._filled(chunks[2]))
        right = self._filled(chunks[0])
        right.merge(tail)

        assert left.state() == right.state()

    def test_merge_equals_recording_the_union(self):
        merged = self._filled(_SAMPLES[:200])
        merged.merge(self._filled(_SAMPLES[200:]))
        merged_state = merged.state()
        union_state = self._filled(_SAMPLES).state()
        # The running totals are float sums in different association orders.
        assert merged_state.pop("sum_seconds") == pytest.approx(
            union_state.pop("sum_seconds")
        )
        assert merged_state == union_state

    def test_percentiles_from_state_recomputes_after_summing(self):
        # Simulate what merge_summaries does to two worker states: sum the
        # bucket dicts key-wise, max the peak — then the embedded percentile
        # fields are garbage and percentiles_from_state must recover them.
        state_a = self._filled(_SAMPLES[:150]).state()
        state_b = self._filled(_SAMPLES[150:]).state()
        summed_buckets = dict(state_a["buckets"])
        for key, value in state_b["buckets"].items():
            summed_buckets[key] = summed_buckets.get(key, 0) + value
        summed = {
            "buckets": summed_buckets,
            "peak_seconds": max(state_a["peak_seconds"], state_b["peak_seconds"]),
        }
        expected = self._filled(_SAMPLES)
        recomputed = percentiles_from_state(summed)
        for name, quantile in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            assert recomputed[name] == expected.percentile(quantile)


class TestHistogramPercentiles:
    def test_percentile_within_one_bucket_of_sorted_reference(self):
        histogram = Histogram()
        for value in _SAMPLES:
            histogram.record(value)
        reference = sorted(_SAMPLES)
        for quantile in (0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            rank = max(1, math.ceil(quantile * len(reference)))
            exact = reference[rank - 1]
            estimate = histogram.percentile(quantile)
            # The estimate is the containing bucket's upper bound, clamped to
            # the exact max: never below the true value, never more than one
            # bucket width (sqrt 2) above it.
            assert exact * (1 - 1e-12) <= estimate
            assert estimate <= exact * _BUCKET_RATIO * (1 + 1e-9)

    def test_p100_is_the_exact_maximum(self):
        histogram = Histogram()
        for value in (0.002, 0.5, 123.456):
            histogram.record(value)
        assert histogram.percentile(1.0) == 123.456
        assert histogram.peak == 123.456

    def test_quantile_validation_and_empty_histogram(self):
        histogram = Histogram()
        assert histogram.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_negative_values_clamp_and_clear_resets(self):
        histogram = Histogram()
        histogram.record(-5.0)
        assert histogram.count == 1 and histogram.peak == 0.0
        histogram.clear()
        assert histogram.count == 0 and len(histogram) == 0
        assert histogram.state()["buckets"] == {}


# ---------------------------------------------------------------------------
# Bounded QueryLog
# ---------------------------------------------------------------------------


def _window_result(seconds: float, layer: int = 0, num_objects: int = 5):
    return SimpleNamespace(
        layer=layer,
        window=SimpleNamespace(area=1.0),
        rows=[],
        num_objects=num_objects,
        db_query_seconds=seconds,
        json_build_seconds=0.0,
        filter_seconds=0.0,
    )


class TestQueryLogBounded:
    def test_deque_is_bounded_but_aggregates_stay_exact(self):
        log = QueryLog(max_records=8)
        for index in range(30):
            log.record_window(_window_result(0.001 * (index + 1), layer=index % 3))
        assert len(log.window_queries) == 8  # bounded
        assert log.num_window_queries == 30  # exact beyond the bound
        assert log.queries_per_layer() == {0: 10, 1: 10, 2: 10}
        assert log.average_objects_per_window() == 5.0

    def test_percentiles_exact_until_eviction_then_histogram_backed(self):
        log = QueryLog(max_records=100)
        values = [0.001 * (index + 1) for index in range(10)]
        for value in values:
            log.record_window(_window_result(value))
        # Nothing evicted: the sorted-sample path is exact (nearest-rank by
        # rounding: p50 of 10 samples is index round(0.5 * 9) = 4).
        assert log.latency_percentiles((0.5,))[0.5] == pytest.approx(0.005)

        small = QueryLog(max_records=4)
        for value in values:
            small.record_window(_window_result(value))
        estimate = small.latency_percentiles((0.5,))[0.5]
        exact = sorted(values)[max(1, math.ceil(0.5 * len(values))) - 1]
        assert exact * (1 - 1e-12) <= estimate <= exact * _BUCKET_RATIO * (1 + 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryLog(max_records=0)
        with pytest.raises(ValueError):
            QueryLog().latency_percentiles((1.5,))


# ---------------------------------------------------------------------------
# Trace context plumbing
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_new_trace_id_is_sixteen_hex(self):
        trace_id = obs.new_trace_id()
        assert len(trace_id) == 16
        assert set(trace_id) <= set("0123456789abcdef")

    def test_sanitize_trace_id(self):
        assert sanitize_trace_id("FeedFaceCafeBeef") == "feedfacecafebeef"
        assert sanitize_trace_id("  abc123  ") == "abc123"
        assert sanitize_trace_id(None) is None
        assert sanitize_trace_id("") is None
        assert sanitize_trace_id("not-hex!") is None
        assert sanitize_trace_id("a" * 65) is None

    def test_span_tree_nests_and_restores_context(self):
        trace, token = obs.begin_trace(name="request")
        try:
            with obs.span("outer", dataset="d") as outer:
                with obs.span("inner"):
                    obs.annotate(rows=3)
                obs.add_phase("measured", 0.25, source="timer")
            assert obs.current_span() is trace.root
        finally:
            trace.finish()
            obs.end_trace(token)
        assert obs.current_trace() is None
        tree = trace.to_dict()
        assert tree["root"]["children"][0]["name"] == "outer"
        inner, measured = tree["root"]["children"][0]["children"]
        assert inner["name"] == "inner" and inner["annotations"] == {"rows": 3}
        assert measured["duration_ms"] == 250.0
        assert outer.annotations["dataset"] == "d"

    def test_span_marks_error_on_exception(self):
        trace, token = obs.begin_trace()
        try:
            with pytest.raises(RuntimeError):
                with obs.span("boom"):
                    raise RuntimeError("nope")
        finally:
            trace.finish("error")
            obs.end_trace(token)
        assert trace.root.children[0].status == "error"

    def test_instrumentation_is_a_noop_without_a_trace(self):
        assert obs.current_trace_id() is None
        with obs.span("ignored") as nothing:
            assert nothing is None
        obs.add_phase("ignored", 1.0)
        obs.annotate(ignored=True)  # must not raise

    def test_trace_context_crosses_copied_thread_context(self):
        # The frontend runs executor work under contextvars.copy_context();
        # the span opened on the worker thread must attach to the trace.
        trace, token = obs.begin_trace(name="request")
        try:
            context = __import__("contextvars").copy_context()

            def blocking_work():
                with obs.span("pool-thread"):
                    return obs.current_trace_id()

            holder = {}
            thread = threading.Thread(
                target=lambda: holder.setdefault("id", context.run(blocking_work))
            )
            thread.start()
            thread.join(timeout=5)
        finally:
            trace.finish()
            obs.end_trace(token)
        assert holder["id"] == trace.trace_id
        assert [child.name for child in trace.root.children] == ["pool-thread"]


class TestTraceStore:
    @staticmethod
    def _finished(trace_id: str, seconds: float) -> obs.Trace:
        trace = obs.Trace(trace_id=trace_id)
        trace.root.duration_seconds = seconds
        return trace

    def test_ring_evicts_oldest(self):
        store = TraceStore(ring_size=2, slow_threshold_seconds=10.0)
        for index in range(3):
            store.add(self._finished(f"{index:016x}", 0.001))
        assert len(store) == 2
        assert store.get(f"{0:016x}") is None
        assert store.get(f"{2:016x}")["trace_id"] == f"{2:016x}"

    def test_slow_log_keeps_worst_above_threshold_slowest_first(self):
        store = TraceStore(slow_threshold_seconds=0.1, slow_log_size=2)
        for index, seconds in enumerate((0.05, 0.3, 0.2, 0.9)):
            store.add(self._finished(f"{index:016x}", seconds))
        slow = store.slowest(10)
        assert [entry["trace_id"] for entry in slow] == [f"{3:016x}", f"{1:016x}"]
        assert store.slowest(1) == slow[:1]
        assert store.slowest(0) == []

    def test_threshold_zero_catches_everything(self):
        store = TraceStore(slow_threshold_seconds=0.0)
        store.add(self._finished("a" * 16, 0.0))
        assert len(store.slowest()) == 1


# ---------------------------------------------------------------------------
# Live worker HTTP: propagation, debug endpoints, exposition, repro top
# ---------------------------------------------------------------------------


class TestObservabilityHttp:
    @pytest.fixture
    def http_server(self, patent_result):
        # slow_trace_seconds=0 so every request lands in the slow log — the
        # threshold contract, not a timing race, is what's under test.
        service = GraphVizDBService(GraphVizDBConfig(
            observability=ObservabilityConfig(slow_trace_seconds=0.0)
        ))
        service.register_dataset("patent", patent_result.database)
        started = threading.Event()
        stop = {}

        def run_loop():
            async def main():
                async with service:
                    server = await serve_http(service, port=0)
                    stop["port"] = server.sockets[0].getsockname()[1]
                    stop["loop"] = asyncio.get_running_loop()
                    stop["event"] = asyncio.Event()
                    started.set()
                    await stop["event"].wait()
                    server.close()
                    await server.wait_closed()

            asyncio.run(main())

        thread = threading.Thread(target=run_loop, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        yield stop["port"]
        stop["loop"].call_soon_threadsafe(stop["event"].set)
        thread.join(timeout=10)

    def _get(self, port, path, headers=None):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.request("GET", path, headers=headers or {})
            response = connection.getresponse()
            payload = response.read()
            response_headers = {
                key.lower(): value for key, value in response.getheaders()
            }
            return response.status, payload, response_headers
        finally:
            connection.close()

    def _get_json(self, port, path, headers=None):
        status, payload, response_headers = self._get(port, path, headers)
        return status, json.loads(payload), response_headers

    @staticmethod
    def _span_names(span, into=None):
        names = into if into is not None else []
        names.append(span["name"])
        for child in span.get("children", []):
            TestObservabilityHttp._span_names(child, names)
        return names

    def test_client_trace_id_is_honored_echoed_and_queryable(self, http_server):
        trace_id = "deadbeef00c0ffee"
        status, body, headers = self._get_json(
            http_server, "/window?dataset=patent",
            headers={"X-GVDB-Trace-Id": trace_id},
        )
        assert status == 200 and body["num_objects"] > 0
        assert headers.get("x-gvdb-trace-id") == trace_id

        status, tree, _ = self._get_json(http_server, f"/debug/trace/{trace_id}")
        assert status == 200
        assert tree["trace_id"] == trace_id
        assert tree["status"] == "ok"
        assert tree["root"]["name"] == "worker GET /window"
        names = self._span_names(tree["root"])
        for phase in ("window", "queue", "db", "filter", "json"):
            assert phase in names, (phase, names)

    def test_server_mints_a_trace_id_when_the_client_sends_none(self, http_server):
        status, _, headers = self._get_json(http_server, "/window?dataset=patent")
        assert status == 200
        minted = headers.get("x-gvdb-trace-id")
        assert minted and len(minted) == 16
        status, tree, _ = self._get_json(http_server, f"/debug/trace/{minted}")
        assert status == 200 and tree["trace_id"] == minted

    def test_unknown_trace_id_is_404(self, http_server):
        status, _, _ = self._get_json(http_server, "/debug/trace/0123456789abcdef")
        assert status == 404

    def test_slow_log_threshold_and_n_parameter(self, http_server):
        for _ in range(3):
            status, _, _ = self._get_json(http_server, "/window?dataset=patent")
            assert status == 200
        status, slow, _ = self._get_json(http_server, "/debug/slow")
        assert status == 200
        assert slow["threshold_seconds"] == 0.0
        assert len(slow["traces"]) >= 3
        durations = [entry["duration_ms"] for entry in slow["traces"]]
        assert durations == sorted(durations, reverse=True)  # slowest first
        status, one, _ = self._get_json(http_server, "/debug/slow?n=1")
        assert status == 200 and len(one["traces"]) == 1

    def test_prometheus_exposition_over_http(self, http_server):
        status, _, _ = self._get_json(http_server, "/window?dataset=patent")
        assert status == 200
        status, payload, headers = self._get(
            http_server, "/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        text = payload.decode()
        assert "# TYPE gvdb_latency_seconds histogram" in text
        assert 'gvdb_latency_seconds_bucket{op="window",le="+Inf"}' in text
        assert "gvdb_requests_admitted_total" in text
        # JSON stays the default shape.
        status, metrics, _ = self._get_json(http_server, "/metrics")
        assert status == 200 and metrics["latency"]["window"]["count"] >= 1

    def test_repro_top_renders_live_tables(self, http_server, capsys):
        for _ in range(2):
            status, _, _ = self._get_json(http_server, "/window?dataset=patent")
            assert status == 200
        exit_code = cli_main([
            "top", "--port", str(http_server),
            "--interval", "0.05", "--iterations", "2",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "p99 ms" in out and "dataset" in out
        window_rows = [
            line for line in out.splitlines() if line.startswith("window")
        ]
        assert window_rows and any(
            int(row.split()[1]) >= 2 for row in window_rows
        ), window_rows
        assert any(line.startswith("patent") for line in out.splitlines())


# ---------------------------------------------------------------------------
# Prometheus golden file
# ---------------------------------------------------------------------------

_GOLDEN_PATH = Path(__file__).parent / "data" / "prometheus_golden.txt"


def _deterministic_metrics() -> ServiceMetrics:
    metrics = ServiceMetrics()
    for _ in range(3):
        assert metrics.try_admit("patent", limit=8) is not None
    metrics.record_completed("patent")
    metrics.record_completed("patent")
    assert metrics.try_admit("wiki", limit=8) is not None
    metrics.record_batch(num_requests=4, num_unique=2)
    metrics.record_pool_hit()
    metrics.record_pool_miss()
    metrics.record_cache_hit()
    metrics.record_proxied()
    metrics.record_write()
    metrics.record_journal_append(synced=True)
    metrics.record_replication_poll()
    metrics.record_promotion(latency_ms=12.5)
    # Exactly-on-boundary values so bucket placement is deterministic.
    metrics.record_latency("window", 0.001)
    metrics.record_latency("window", 0.004)
    metrics.record_latency("window", 0.016)
    metrics.record_latency("keyword", 0.002)
    # Resource accounting (PR 10) with fixed byte values, no real RSS read.
    metrics.record_memory_sample({
        "rss_bytes": 104_857_600,
        "pool_bytes": 8_388_608,
        "cache_bytes": 1_048_576,
        "journal_bytes": 65_536,
    })
    metrics.record_profile_run(samples=194)
    # SLO engine on a frozen clock: burn rates and budgets are exact.
    metrics.configure_slo(SLOConfig(), clock=lambda: 1000.0)
    metrics.record_op_outcome("window", 0.001, 200)
    metrics.record_op_outcome("window", 0.004, 200)
    metrics.record_op_outcome("window", 9.0, 503)
    metrics.record_op_outcome("keyword", 0.002, 200)
    return metrics


class TestPrometheusGolden:
    def test_rendering_matches_the_golden_file(self):
        rendered = render_prometheus(
            _deterministic_metrics().summary(), {"worker": "w0"}
        )
        assert _GOLDEN_PATH.exists(), (
            f"golden file missing: {_GOLDEN_PATH} — regenerate with "
            "tests/test_observability.py::TestPrometheusGolden (see docstring)"
        )
        assert rendered == _GOLDEN_PATH.read_text()

    def test_golden_shape_invariants(self):
        # Independent of the exact golden bytes: grammar-level invariants the
        # exposition must keep even when counters are added.
        rendered = render_prometheus(_deterministic_metrics().summary())
        lines = rendered.splitlines()
        assert lines[-1]  # no trailing blank line inside (one final newline)
        helped = {
            line.split()[2] for line in lines if line.startswith("# HELP")
        }
        typed = {
            line.split()[2] for line in lines if line.startswith("# TYPE")
        }
        assert helped == typed  # every family declares both
        # Cumulative buckets: the +Inf bucket equals _count for every op.
        for op in ("window", "keyword"):
            inf_line = next(
                line for line in lines
                if line.startswith("gvdb_latency_seconds_bucket")
                and f'op="{op}"' in line and 'le="+Inf"' in line
            )
            count_line = next(
                line for line in lines
                if line.startswith("gvdb_latency_seconds_count")
                and f'op="{op}"' in line
            )
            assert inf_line.split()[-1] == count_line.split()[-1]
        # Counters end in _total; gauges never do.
        for line in lines:
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split()
                if kind == "counter":
                    assert name.endswith("_total"), line
                elif name.endswith("_total"):
                    raise AssertionError(f"gauge named like a counter: {line}")
        # PR 10 resource-accounting families are present with bounded labels:
        # one gvdb_memory_bytes series per attribution component (plus rss),
        # never one per sample or per request.
        component_lines = [
            line for line in lines
            if line.startswith("gvdb_memory_bytes{")
        ]
        components = {
            line.split('component="', 1)[1].split('"', 1)[0]
            for line in component_lines
        }
        assert components == {"rss", "pool", "cache", "journal"}
        assert len(component_lines) == len(components)  # no duplicate series
        assert "gvdb_memory_peak_rss_bytes" in typed
        assert "gvdb_memory_samples_total" in typed
        assert "gvdb_profile_runs_total" in typed
        assert "gvdb_profile_samples_total" in typed

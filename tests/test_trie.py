"""Unit tests for the trie and the full-text label index."""

from __future__ import annotations

import pytest

from repro.spatial.trie import FullTextIndex, Trie, tokenize


class TestTokenize:
    def test_basic_tokenisation(self):
        assert tokenize("Christos Faloutsos") == ["christos", "faloutsos"]

    def test_punctuation_splits_tokens(self):
        assert tokenize("graph-viz_db (2016)!") == ["graph", "viz", "db", "2016"]

    def test_empty_and_whitespace(self):
        assert tokenize("") == []
        assert tokenize("   ") == []


class TestTrie:
    def test_insert_and_exact(self):
        trie = Trie()
        trie.insert("graph", 1)
        trie.insert("graph", 2)
        assert trie.exact("graph") == {1, 2}
        assert trie.exact("gra") == set()
        assert len(trie) == 1

    def test_starts_with(self):
        trie = Trie()
        trie.insert("graph", 1)
        trie.insert("graphs", 2)
        trie.insert("grid", 3)
        assert trie.starts_with("graph") == {1, 2}
        assert trie.starts_with("gr") == {1, 2, 3}
        assert trie.starts_with("z") == set()

    def test_remove_prunes_branches(self):
        trie = Trie()
        trie.insert("abc", 1)
        assert trie.remove("abc", 1) is True
        assert trie.exact("abc") == set()
        assert len(trie) == 0
        assert list(trie.words()) == []

    def test_remove_missing(self):
        trie = Trie()
        trie.insert("abc", 1)
        assert trie.remove("abd", 1) is False
        assert trie.remove("abc", 99) is False

    def test_words_in_order(self):
        trie = Trie()
        for word in ["pear", "apple", "peach"]:
            trie.insert(word, word)
        assert list(trie.words()) == ["apple", "peach", "pear"]


class TestFullTextIndex:
    @pytest.fixture
    def index(self) -> FullTextIndex:
        index = FullTextIndex()
        index.add(1, "Christos Faloutsos")
        index.add(2, "Graph Databases")
        index.add(3, "database indexing")
        return index

    def test_exact_mode(self, index):
        assert index.search("faloutsos", mode="exact") == [1]
        assert index.search("falout", mode="exact") == []

    def test_prefix_mode(self, index):
        assert set(index.search("data", mode="prefix")) == {2, 3}

    def test_contains_mode_substring(self, index):
        # 'base' appears inside 'databases' and 'database'.
        assert set(index.search("base", mode="contains")) == {2, 3}

    def test_multiple_tokens_are_intersected(self, index):
        assert index.search("christos faloutsos") == [1]
        assert index.search("christos databases") == []

    def test_case_insensitive(self, index):
        assert index.search("FALOUTSOS") == [1]

    def test_empty_keyword_returns_nothing(self, index):
        assert index.search("") == []
        assert index.search("   ") == []

    def test_unknown_mode_raises(self, index):
        with pytest.raises(ValueError):
            index.search("graph", mode="regex")

    def test_reindexing_replaces_old_label(self, index):
        index.add(1, "Renamed Person")
        assert index.search("faloutsos") == []
        assert index.search("renamed") == [1]

    def test_remove_document(self, index):
        assert index.remove(2) is True
        assert index.search("graph") == []
        assert index.remove(2) is False
        assert len(index) == 2

    def test_results_sorted_by_label(self):
        index = FullTextIndex()
        index.add(10, "zebra graph")
        index.add(11, "alpha graph")
        assert index.search("graph") == [11, 10]

    def test_contains_without_substring_index(self):
        index = FullTextIndex(index_substrings=False)
        index.add(1, "Databases")
        assert index.search("base", mode="contains") == [1]
        assert index.search("atabase", mode="contains") == [1]

    def test_label_of(self, index):
        assert index.label_of(1) == "Christos Faloutsos"
        assert index.label_of(99) is None

"""Unit tests for the partition organizer (paper Step 3)."""

from __future__ import annotations

import pytest

from repro.errors import OrganizerError
from repro.graph.generators import community_graph
from repro.layout.circular import CircularLayout
from repro.layout.force_directed import ForceDirectedLayout
from repro.organizer.cost import placement_cost
from repro.organizer.placement import PartitionOrganizer
from repro.organizer.spiral import CandidateGenerator
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.simple import BFSPartitioner, RandomPartitioner
from repro.layout.base import Layout
from repro.spatial.geometry import Point, Rect


@pytest.fixture
def organized():
    """A partitioned + organized community graph shared by several tests."""
    graph = community_graph(num_communities=4, community_size=20, inter_edges=3, seed=8)
    partition_result = MultilevelPartitioner(seed=2).partition(graph, 4)
    layouts = [
        ForceDirectedLayout(iterations=25, seed=3).layout(subgraph)
        for subgraph in partition_result.subgraphs()
    ]
    organizer = PartitionOrganizer(padding=30.0)
    return graph, partition_result, organizer.organize(partition_result, layouts)


class TestCandidateGenerator:
    def test_first_candidate_on_empty_plane_is_origin_cell(self):
        generator = CandidateGenerator(gap=10)
        candidates = list(generator.candidates([], 100, 50))
        assert candidates == [Rect(0, 0, 100, 50)]

    def test_candidates_do_not_overlap_occupied(self):
        generator = CandidateGenerator(gap=5)
        occupied = [Rect(0, 0, 100, 100)]
        for candidate in generator.candidates(occupied, 50, 50, max_rings=2):
            assert not candidate.intersects(Rect(1, 1, 99, 99))

    def test_candidates_surround_the_occupied_region(self):
        generator = CandidateGenerator(gap=5)
        occupied = [Rect(0, 0, 100, 100)]
        candidates = list(generator.candidates(occupied, 40, 40, max_rings=1))
        assert len(candidates) >= 4
        # There must be candidates on at least three different sides.
        sides = set()
        for candidate in candidates:
            if candidate.min_x >= 100:
                sides.add("right")
            if candidate.max_x <= 0:
                sides.add("left")
            if candidate.min_y >= 100:
                sides.add("top")
            if candidate.max_y <= 0:
                sides.add("bottom")
        assert len(sides) >= 3

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            CandidateGenerator(gap=-1)


class TestPlacementCost:
    def test_cost_prefers_nearby_cell(self, small_graph):
        # Edge 1 -> 2 crosses partitions; candidate A keeps node 1 near node 2.
        edge = small_graph.edge(1, 2)
        placed = {2: Point(0.0, 0.0)}
        near = Layout({1: Point(10.0, 0.0), 4: Point(12.0, 0.0)})
        far = Layout({1: Point(500.0, 0.0), 4: Point(502.0, 0.0)})
        assert placement_cost(near, [edge], placed) < placement_cost(far, [edge], placed)

    def test_unplaced_neighbours_contribute_small_bias(self, small_graph):
        edge = small_graph.edge(1, 2)
        candidate = Layout({1: Point(10.0, 0.0)})
        cost = placement_cost(candidate, [edge], {})
        assert 0 < cost < 10


class TestOrganizer:
    def test_all_nodes_get_global_coordinates(self, organized):
        graph, _, global_layout = organized
        assert set(global_layout.layout.positions) == set(graph.node_ids())

    def test_partition_cells_do_not_overlap(self, organized):
        _, _, global_layout = organized
        cells = [placement.bounds for placement in global_layout.placements]
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                intersection = cells[i].intersection(cells[j])
                if intersection is not None:
                    assert intersection.area == pytest.approx(0.0, abs=1e-6)

    def test_nodes_stay_inside_their_cell(self, organized):
        _, partition_result, global_layout = organized
        for placement in global_layout.placements:
            for node_id in partition_result.members(placement.partition):
                assert placement.bounds.contains_point(global_layout.layout.position(node_id))

    def test_first_placed_partition_has_most_crossing_edges(self, organized):
        _, partition_result, global_layout = organized
        counts = partition_result.crossing_edge_counts()
        first = global_layout.placement_order[0]
        assert counts[first] == max(counts)

    def test_every_partition_placed_exactly_once(self, organized):
        _, partition_result, global_layout = organized
        assert sorted(global_layout.placement_order) == list(range(partition_result.num_partitions))

    def test_organizer_beats_arbitrary_order_on_crossing_length(self):
        graph = community_graph(num_communities=5, community_size=15, inter_edges=4, seed=3)
        partition_result = BFSPartitioner(seed=1).partition(graph, 5)
        layouts = [
            CircularLayout(area_per_node=400.0).layout(sub) for sub in partition_result.subgraphs()
        ]
        organizer = PartitionOrganizer(padding=20.0)
        organized_layout = organizer.organize(partition_result, layouts)

        # Baseline: place partitions left-to-right in index order.
        from repro.layout.scale import normalize_layout

        offset = 0.0
        arbitrary_positions = {}
        for part, layout in enumerate(layouts):
            normalized = normalize_layout(layout)
            shifted = normalized.translated(offset, 0.0)
            arbitrary_positions.update(shifted.positions)
            offset += normalized.bounding_rect().width + 40.0
        arbitrary_total = sum(
            arbitrary_positions[e.source].distance_to(arbitrary_positions[e.target])
            for e in partition_result.crossing_edges()
        )
        organized_total = organized_layout.total_crossing_length(partition_result)
        assert organized_total <= arbitrary_total * 1.25

    def test_wrong_number_of_layouts_raises(self, communities):
        partition_result = BFSPartitioner().partition(communities, 3)
        with pytest.raises(OrganizerError):
            PartitionOrganizer().organize(partition_result, [])

    def test_layout_missing_nodes_raises(self, communities):
        partition_result = BFSPartitioner().partition(communities, 2)
        incomplete = [Layout({}), Layout({})]
        with pytest.raises(OrganizerError):
            PartitionOrganizer().organize(partition_result, incomplete)

    def test_single_partition(self, small_graph):
        partition_result = BFSPartitioner().partition(small_graph, 1)
        layouts = [CircularLayout().layout(small_graph)]
        global_layout = PartitionOrganizer().organize(partition_result, layouts)
        assert len(global_layout.placements) == 1
        assert set(global_layout.layout.positions) == set(small_graph.node_ids())

    def test_cell_of_unknown_partition_raises(self, organized):
        _, _, global_layout = organized
        with pytest.raises(OrganizerError):
            global_layout.cell_of(99)

    def test_invalid_parameters(self):
        with pytest.raises(OrganizerError):
            PartitionOrganizer(padding=-1)
        with pytest.raises(OrganizerError):
            PartitionOrganizer(max_candidates=0)

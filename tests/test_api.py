"""Unit tests for the JSON API layer (the web endpoints of the prototype)."""

from __future__ import annotations

import json

import pytest

from repro.core.api import ApiError, GraphVizDBApi
from repro.core.server import GraphVizDBServer
from repro.graph.datasets import acm_like


@pytest.fixture(scope="module")
def api(request):
    config = request.getfixturevalue("small_config")
    server = GraphVizDBServer(config)
    server.load_dataset(acm_like(num_articles=150, num_authors=40, seed=5), name="acm")
    return GraphVizDBApi(server)


def _window_request(api: GraphVizDBApi, fraction: float = 0.5) -> dict[str, object]:
    bounds = api.server.dataset("acm").database.bounds(0)
    window = bounds.scaled(fraction)
    return {
        "min_x": window.min_x, "min_y": window.min_y,
        "max_x": window.max_x, "max_y": window.max_y,
    }


class TestDatasetEndpoints:
    def test_list_datasets(self, api):
        response = api.list_datasets()
        assert len(response["datasets"]) == 1
        entry = response["datasets"][0]
        assert entry["name"] == "acm"
        assert entry["num_nodes"] > 0
        assert 0 in entry["layers"]

    def test_dataset_info(self, api):
        response = api.dataset_info("acm")
        assert response["statistics"]["num_nodes"] > 0
        assert len(response["layers"]) >= 1
        assert response["layers"][0]["layer"] == 0

    def test_unknown_dataset_is_404(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.dataset_info("dbpedia")
        assert excinfo.value.status == 404
        assert "dbpedia" in excinfo.value.as_dict()["error"]


class TestWindowEndpoints:
    def test_window_returns_payload(self, api):
        response = api.window("acm", _window_request(api))
        assert response["num_objects"] == len(response["nodes"]) + len(response["edges"])
        assert response["num_objects"] > 0
        assert response["timings_ms"]["db_query"] >= 0
        # The response must be JSON-serialisable as-is.
        json.dumps(response)

    def test_window_missing_fields_is_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.window("acm", {"min_x": 0})
        assert excinfo.value.status == 400

    def test_window_invalid_rect_is_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.window("acm", {"min_x": 10, "min_y": 0, "max_x": 0, "max_y": 5})
        assert excinfo.value.status == 400

    def test_window_unknown_layer_is_404(self, api):
        request = _window_request(api)
        request["layer"] = 99
        with pytest.raises(ApiError) as excinfo:
            api.window("acm", request)
        assert excinfo.value.status == 404

    def test_layer_endpoint_requires_layer(self, api):
        request = _window_request(api)
        with pytest.raises(ApiError):
            api.layer("acm", request)
        request["layer"] = api.server.dataset("acm").database.layers()[-1]
        response = api.layer("acm", request)
        assert response["layer"] == request["layer"]


class TestSearchAndFocus:
    def test_search(self, api):
        response = api.search("acm", {"keyword": "faloutsos", "limit": 5})
        assert response["num_matches"] >= 1
        assert all("faloutsos" in match["label"].lower() for match in response["matches"])

    def test_search_empty_keyword_is_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.search("acm", {"keyword": "   "})
        assert excinfo.value.status == 400

    def test_focus_on_search_result(self, api):
        matches = api.search("acm", {"keyword": "faloutsos", "limit": 1})["matches"]
        node_id = matches[0]["node_id"]
        response = api.focus("acm", {
            "node_id": node_id, "viewport_width": 800, "viewport_height": 600,
        })
        assert response["center"]["x"] == pytest.approx(matches[0]["x"])
        assert any(node["id"] == node_id for node in response["nodes"])

    def test_focus_unknown_node_is_404(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.focus("acm", {"node_id": 10**9})
        assert excinfo.value.status == 404

    def test_node_info_endpoint(self, api):
        matches = api.search("acm", {"keyword": "ICDE", "limit": 1})["matches"]
        info = api.node("acm", matches[0]["node_id"])
        assert info["label"] == "ICDE"
        assert info["degree"] > 0

    def test_birdview_endpoint(self, api):
        response = api.birdview("acm", width=20, height=10)
        assert response["width"] == 20
        assert len(response["grid"]) == 10
        assert all(len(row) == 20 for row in response["grid"])


class TestEditEndpoint:
    def test_rename_and_search_roundtrip(self, api):
        matches = api.search("acm", {"keyword": "article", "limit": 1})["matches"]
        node_id = matches[0]["node_id"]
        response = api.edit("acm", {
            "operation": "rename_node", "node_id": node_id, "label": "renamed-article-x",
        })
        assert response["rows_touched"] >= 1
        assert api.search("acm", {"keyword": "renamed-article-x"})["num_matches"] == 1

    def test_add_and_delete_edge(self, api):
        hits = api.search("acm", {"keyword": "ICDE", "limit": 1})["matches"]
        venue = hits[0]["node_id"]
        author = api.search("acm", {"keyword": "turing", "limit": 1})["matches"][0]["node_id"]
        added = api.edit("acm", {
            "operation": "add_edge", "source": author, "target": venue, "label": "pc-member",
        })
        assert added["rows_touched"] == 1
        deleted = api.edit("acm", {
            "operation": "delete_edge", "source": author, "target": venue,
        })
        assert deleted["rows_touched"] == 1

    def test_unknown_operation_is_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.edit("acm", {"operation": "truncate"})
        assert excinfo.value.status == 400

    def test_missing_arguments_is_400(self, api):
        with pytest.raises(ApiError):
            api.edit("acm", {"operation": "rename_node"})

    def test_edit_unknown_node_is_400(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.edit("acm", {"operation": "rename_node", "node_id": 10**9, "label": "x"})
        assert excinfo.value.status == 400

"""Property-based tests on pipeline-level invariants (organizer, storage, queries)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AbstractionConfig,
    GraphVizDBConfig,
    LayoutConfig,
    PartitionConfig,
)
from repro.core.pipeline import PreprocessingPipeline
from repro.graph.generators import community_graph, erdos_renyi
from repro.layout.circular import CircularLayout
from repro.organizer.placement import PartitionOrganizer
from repro.partition.simple import BFSPartitioner
from repro.spatial.geometry import Rect


def fast_config(num_layers: int = 1) -> GraphVizDBConfig:
    return GraphVizDBConfig(
        partition=PartitionConfig(max_partition_nodes=40),
        layout=LayoutConfig(algorithm="circular", iterations=5, area_per_node=400.0),
        abstraction=AbstractionConfig(num_layers=num_layers),
    )


class TestOrganizerProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        num_communities=st.integers(min_value=1, max_value=5),
        community_size=st.integers(min_value=3, max_value=15),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_cells_never_overlap_and_cover_all_nodes(
        self, num_communities, community_size, k, seed
    ):
        graph = community_graph(
            num_communities=num_communities, community_size=community_size,
            inter_edges=2, seed=seed,
        )
        partition_result = BFSPartitioner(seed=seed).partition(
            graph, min(k, graph.num_nodes)
        )
        layouts = [
            CircularLayout(area_per_node=100.0).layout(subgraph)
            for subgraph in partition_result.subgraphs()
        ]
        global_layout = PartitionOrganizer(padding=10.0).organize(partition_result, layouts)

        # Every node is placed.
        assert set(global_layout.layout.positions) == set(graph.node_ids())
        # Cells are pairwise non-overlapping (boundary contact allowed).
        cells = [placement.bounds for placement in global_layout.placements]
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                overlap = cells[i].intersection(cells[j])
                assert overlap is None or overlap.area < 1e-9
        # Every node lies inside its partition's cell.
        for placement in global_layout.placements:
            for node_id in partition_result.members(placement.partition):
                assert placement.bounds.contains_point(
                    global_layout.layout.position(node_id)
                )


class TestPipelineProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        num_nodes=st.integers(min_value=2, max_value=60),
        edge_probability=st.floats(min_value=0.0, max_value=0.2),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_full_bounds_window_returns_every_row(self, num_nodes, edge_probability, seed):
        graph = erdos_renyi(num_nodes, edge_probability, seed=seed, name="hyp-er")
        result = PreprocessingPipeline(fast_config()).run(graph)
        database = result.database
        for layer in database.layers():
            table = database.table(layer)
            bounds = database.bounds(layer)
            if bounds is None:
                assert table.num_rows == 0
                continue
            everything = table.window_query(bounds.expanded(1.0))
            assert len(everything) == table.num_rows

    @settings(max_examples=10, deadline=None)
    @given(
        num_nodes=st.integers(min_value=2, max_value=50),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_every_node_is_searchable_and_locatable(self, num_nodes, seed):
        graph = erdos_renyi(num_nodes, 0.1, seed=seed, name="hyp-search")
        result = PreprocessingPipeline(fast_config()).run(graph)
        table = result.database.table(0)
        for node in list(graph.nodes())[:10]:
            position = table.node_position(node.node_id)
            assert position is not None
            # The label ("n<id>") must be findable through the trie.
            matches = dict(table.keyword_search(node.label, mode="exact"))
            assert node.node_id in matches

    @settings(max_examples=8, deadline=None)
    @given(
        num_nodes=st.integers(min_value=5, max_value=50),
        seed=st.integers(min_value=0, max_value=30),
    )
    def test_abstraction_layers_are_subsets_for_filter_criteria(self, num_nodes, seed):
        graph = erdos_renyi(num_nodes, 0.15, seed=seed, name="hyp-layers")
        result = PreprocessingPipeline(fast_config(num_layers=2)).run(graph)
        hierarchy = result.hierarchy
        for level in range(1, hierarchy.num_layers):
            lower = set(hierarchy.layer(level - 1).graph.node_ids())
            upper = set(hierarchy.layer(level).graph.node_ids())
            assert upper <= lower
            assert len(upper) <= len(lower)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_window_queries_consistent_between_rtree_and_scan(self, seed):
        graph = community_graph(num_communities=2, community_size=12, seed=seed)
        result = PreprocessingPipeline(fast_config()).run(graph)
        table = result.database.table(0)
        bounds = result.database.bounds(0)
        # A quarter-sized window positioned by the seed.
        window = Rect.from_center(bounds.center, bounds.width / 2, bounds.height / 2)
        via_index = {row.row_id for row in table.window_query(window)}
        via_scan = {
            row.row_id for row in table.scan() if row.segment().intersects_rect(window)
        }
        assert via_index == via_scan

"""Unit tests for the graph data model."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateNodeError, EdgeNotFoundError, NodeNotFoundError
from repro.graph.model import Edge, Graph, Node


class TestNodeAndEdge:
    def test_node_copy_is_independent(self):
        node = Node(1, label="a", properties={"k": 1})
        clone = node.copy()
        clone.properties["k"] = 2
        assert node.properties["k"] == 1

    def test_edge_other_endpoint(self):
        edge = Edge(1, 2)
        assert edge.other(1) == 2
        assert edge.other(2) == 1

    def test_edge_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Edge(1, 2).other(3)

    def test_edge_key(self):
        assert Edge(3, 7).key() == (3, 7)


class TestGraphNodes:
    def test_add_and_get_node(self):
        graph = Graph()
        graph.add_node(1, label="x", node_type="t")
        node = graph.node(1)
        assert node.label == "x"
        assert node.node_type == "t"
        assert graph.num_nodes == 1

    def test_duplicate_node_raises(self):
        graph = Graph()
        graph.add_node(1)
        with pytest.raises(DuplicateNodeError):
            graph.add_node(1)

    def test_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.node(42)

    def test_ensure_node_is_idempotent(self):
        graph = Graph()
        first = graph.ensure_node(5, label="a")
        second = graph.ensure_node(5, label="ignored")
        assert first is second
        assert graph.node(5).label == "a"

    def test_contains_and_len(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(2)
        assert 1 in graph
        assert 3 not in graph
        assert len(graph) == 2

    def test_remove_node_removes_incident_edges(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 1)
        graph.remove_node(2)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.has_edge(3, 1)

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().remove_node(1)


class TestGraphEdges:
    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        graph.add_edge(1, 2, label="knows")
        assert graph.has_node(1) and graph.has_node(2)
        assert graph.edge(1, 2).label == "knows"

    def test_add_edge_twice_overwrites_attributes(self):
        graph = Graph()
        graph.add_edge(1, 2, label="a", weight=1.0)
        graph.add_edge(1, 2, label="b", weight=3.0)
        assert graph.num_edges == 1
        assert graph.edge(1, 2).label == "b"
        assert graph.edge(1, 2).weight == 3.0

    def test_directed_edge_orientation(self):
        graph = Graph(directed=True)
        graph.add_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_undirected_edge_both_orientations(self):
        graph = Graph(directed=False)
        graph.add_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert graph.edge(2, 1) is graph.edge(1, 2)

    def test_missing_edge_raises(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(2)
        with pytest.raises(EdgeNotFoundError):
            graph.edge(1, 2)

    def test_remove_edge(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.remove_edge(1, 2)
        assert graph.num_edges == 0
        assert graph.has_node(1)

    def test_remove_undirected_edge_by_reverse_orientation(self):
        graph = Graph(directed=False)
        graph.add_edge(1, 2)
        graph.remove_edge(2, 1)
        assert graph.num_edges == 0

    def test_self_loop_allowed(self):
        graph = Graph()
        graph.add_edge(1, 1, label="self")
        assert graph.has_edge(1, 1)
        assert graph.edge(1, 1).other(1) == 1


class TestAdjacency:
    def test_successors_predecessors_neighbors(self, small_graph):
        assert small_graph.successors(1) == {2, 4}
        assert small_graph.predecessors(4) == {1, 3}
        assert small_graph.neighbors(2) == {1, 3}

    def test_degrees_directed(self, small_graph):
        assert small_graph.out_degree(1) == 2
        assert small_graph.in_degree(1) == 0
        assert small_graph.degree(1) == 2
        assert small_graph.degree(4) == 2

    def test_degree_undirected(self):
        graph = Graph(directed=False)
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        assert graph.degree(1) == 2

    def test_incident_edges(self, small_graph):
        labels = sorted(edge.label for edge in small_graph.incident_edges(1))
        assert labels == ["knows", "likes"]

    def test_adjacency_unknown_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.neighbors(9)
        with pytest.raises(NodeNotFoundError):
            graph.degree(9)


class TestGraphOperations:
    def test_subgraph_induces_edges(self, small_graph):
        sub = small_graph.subgraph([1, 2, 4])
        assert sub.num_nodes == 3
        assert sub.has_edge(1, 2)
        assert sub.has_edge(1, 4)
        assert not sub.has_edge(3, 4)

    def test_subgraph_copies_attributes(self, small_graph):
        sub = small_graph.subgraph([1, 2])
        assert sub.node(1).label == "Alice"
        sub.node(1).label = "changed"
        assert small_graph.node(1).label == "Alice"

    def test_copy_is_deep_for_structure(self, small_graph):
        clone = small_graph.copy()
        clone.remove_node(1)
        assert small_graph.has_node(1)
        assert clone.num_nodes == small_graph.num_nodes - 1

    def test_relabel_remaps_edges(self, small_graph):
        relabeled = small_graph.relabel({1: 10, 2: 20})
        assert relabeled.has_edge(10, 20)
        assert relabeled.has_edge(10, 4)
        assert not relabeled.has_node(1)

    def test_relabel_merging_nodes_drops_self_loops(self):
        graph = Graph()
        graph.add_edge(1, 2)
        merged = graph.relabel({2: 1})
        assert merged.num_nodes == 1
        assert merged.num_edges == 0

    def test_node_and_edge_types(self, small_graph):
        assert small_graph.node_types() == {"person", "topic"}
        assert small_graph.edge_types() == {""}

"""Unit tests for graph statistics."""

from __future__ import annotations

import pytest

from repro.graph.generators import complete_graph, path_graph, star_graph
from repro.graph.metrics import (
    average_degree,
    clustering_coefficient,
    compute_statistics,
    degree_histogram,
    density,
)
from repro.graph.model import Graph


class TestDegreeMetrics:
    def test_degree_histogram_star(self):
        graph = star_graph(5)
        histogram = degree_histogram(graph)
        assert histogram == {5: 1, 1: 5}

    def test_average_degree(self):
        graph = path_graph(4)  # 3 edges, 4 nodes
        assert average_degree(graph) == pytest.approx(1.5)

    def test_average_degree_empty_graph(self):
        assert average_degree(Graph()) == 0.0


class TestDensity:
    def test_density_complete_graph_is_one(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)

    def test_density_directed(self):
        graph = Graph(directed=True)
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        # 2 edges of 2 possible.
        assert density(graph) == pytest.approx(1.0)

    def test_density_single_node(self):
        graph = Graph()
        graph.add_node(1)
        assert density(graph) == 0.0


class TestClustering:
    def test_triangle_has_full_clustering(self):
        assert clustering_coefficient(complete_graph(3)) == pytest.approx(1.0)

    def test_path_has_zero_clustering(self):
        assert clustering_coefficient(path_graph(5)) == 0.0

    def test_sampled_clustering_is_bounded(self):
        graph = complete_graph(10)
        value = clustering_coefficient(graph, sample=4, seed=1)
        assert 0.0 <= value <= 1.0

    def test_empty_graph(self):
        assert clustering_coefficient(Graph()) == 0.0


class TestStatisticsBundle:
    def test_compute_statistics_fields(self, small_graph):
        stats = compute_statistics(small_graph)
        assert stats.num_nodes == 4
        assert stats.num_edges == 4
        assert stats.directed is True
        assert stats.num_components == 1
        assert stats.largest_component_size == 4
        assert stats.max_degree == 2
        assert stats.num_node_types == 2

    def test_statistics_as_dict_roundtrip(self, small_graph):
        stats = compute_statistics(small_graph).as_dict()
        assert stats["name"] == "small"
        assert stats["average_degree"] == pytest.approx(2.0)

"""Failure-injection tests: corrupted files, malformed blobs, damaged databases.

A production storage engine must fail loudly and precisely when its on-disk
artefacts are damaged; these tests corrupt every persistent format the library
writes and assert that the right error surfaces (never a silent wrong answer).
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import GeometryError, GraphFormatError, StorageError
from repro.graph.generators import community_graph
from repro.graph.io import read_edge_list, read_json, write_edge_list, write_json
from repro.layout.base import Layout
from repro.layout.circular import CircularLayout
from repro.spatial.geometry import decode_segment
from repro.storage.database import GraphVizDatabase
from repro.storage.schema import EdgeRow, rows_from_graph
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite
from repro.storage.table import FileRowStore, LayerTable


@pytest.fixture
def graph():
    return community_graph(num_communities=2, community_size=10, seed=1)


@pytest.fixture
def rows(graph):
    layout = CircularLayout(area_per_node=100.0).layout(graph)
    return rows_from_graph(graph, layout)


class TestCorruptGraphFiles:
    def test_truncated_json_graph(self, tmp_path, graph):
        path = tmp_path / "graph.json"
        write_json(graph, path)
        data = path.read_text()
        path.write_text(data[: len(data) // 2])
        with pytest.raises(GraphFormatError):
            read_json(path)

    def test_binary_garbage_edge_list(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_bytes(bytes([0xFF, 0xFE]) + b"not numbers at all\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_edge_list_with_partial_corruption_reports_line(self, tmp_path, graph):
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("13 banana\n")
        with pytest.raises(GraphFormatError) as excinfo:
            read_edge_list(path)
        assert "line" in str(excinfo.value)


class TestCorruptRowFiles:
    def test_truncated_row_file(self, tmp_path, rows):
        store = FileRowStore(tmp_path / "layer.rows")
        for row in rows:
            store.put(row)
        path = tmp_path / "layer.rows"
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        with pytest.raises(StorageError):
            FileRowStore(path)

    def test_garbage_prefix_row_file(self, tmp_path):
        path = tmp_path / "layer.rows"
        path.write_bytes(b"\x10\x00\x00\x00" + b"x" * 16)
        with pytest.raises(StorageError):
            FileRowStore(path)


class TestCorruptGeometry:
    def test_malformed_geometry_blob_raises(self, rows):
        bad = EdgeRow(
            row_id=999,
            node1_id=1,
            node1_label="a",
            edge_geometry=b"\x00\x01broken",
            edge_label="x",
            node2_id=2,
            node2_label="b",
        )
        with pytest.raises(GeometryError):
            bad.segment()
        with pytest.raises(GeometryError):
            decode_segment(b"")

    def test_table_insert_with_bad_geometry_fails_fast(self, rows):
        table = LayerTable(layer=0)
        bad = EdgeRow(
            row_id=0, node1_id=1, node1_label="a", edge_geometry=b"junk",
            edge_label="", node2_id=2, node2_label="b",
        )
        with pytest.raises(GeometryError):
            table.insert(bad)
        # Nothing half-indexed: the table is still empty and consistent.
        assert table.num_rows <= 1  # row store may hold it, but indexes failed loudly


class TestCorruptSqlite:
    def test_truncated_sqlite_file(self, tmp_path, graph, rows):
        database = GraphVizDatabase(name="x")
        database.load_layer(0, rows)
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises((StorageError, sqlite3.DatabaseError)):
            load_from_sqlite(path)

    def test_sqlite_with_dropped_layer_table(self, tmp_path, rows):
        database = GraphVizDatabase(name="x")
        database.load_layer(0, rows)
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        with sqlite3.connect(path) as connection:
            connection.execute("DROP TABLE layer_0")
        with pytest.raises(sqlite3.OperationalError):
            load_from_sqlite(path)

    def test_sqlite_meta_without_layers_key(self, tmp_path):
        path = tmp_path / "weird.db"
        with sqlite3.connect(path) as connection:
            connection.execute(
                "CREATE TABLE graphvizdb_meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            connection.execute(
                "INSERT INTO graphvizdb_meta VALUES ('name', 'empty-ish')"
            )
        loaded = load_from_sqlite(path)
        assert loaded.num_layers == 0
        assert loaded.name == "empty-ish"


class TestDatabaseConsistencyChecks:
    def test_validate_detects_missing_btree_entry(self, rows):
        database = GraphVizDatabase(name="x")
        database.load_layer(0, rows)
        table = database.table(0)
        victim = next(table.scan())
        table.node1_index.remove(victim.node1_id, victim.row_id)
        with pytest.raises(StorageError):
            database.validate()

    def test_validate_detects_extra_rtree_entry(self, rows):
        database = GraphVizDatabase(name="x")
        database.load_layer(0, rows)
        table = database.table(0)
        from repro.spatial.geometry import Rect

        table.ensure_dynamic_index()
        table.rtree.insert(Rect(0, 0, 1, 1), 10**9)
        with pytest.raises(StorageError):
            database.validate()

    def test_empty_layer_is_valid(self):
        database = GraphVizDatabase(name="x")
        database.create_layer(0)
        database.validate()

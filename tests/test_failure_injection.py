"""Failure-injection tests: corrupted files, malformed blobs, damaged databases.

A production storage engine must fail loudly and precisely when its on-disk
artefacts are damaged; these tests corrupt every persistent format the library
writes and assert that the right error surfaces (never a silent wrong answer).
Alongside the artefact-corruption coverage sits the unit suite for the
:mod:`repro.faults` registry itself — the seeded schedules every
crash-consistency and chaos test in the repo is built on.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import faults
from repro.errors import GeometryError, GraphFormatError, StorageError
from repro.faults import FaultInjected, FaultPlan, FaultRule, fault_check
from repro.graph.generators import community_graph
from repro.graph.io import read_edge_list, read_json, write_edge_list, write_json
from repro.layout.base import Layout
from repro.layout.circular import CircularLayout
from repro.spatial.geometry import decode_segment
from repro.storage.database import GraphVizDatabase
from repro.storage.schema import EdgeRow, rows_from_graph
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite
from repro.storage.table import FileRowStore, LayerTable


@pytest.fixture
def graph():
    return community_graph(num_communities=2, community_size=10, seed=1)


@pytest.fixture
def rows(graph):
    layout = CircularLayout(area_per_node=100.0).layout(graph)
    return rows_from_graph(graph, layout)


class TestCorruptGraphFiles:
    def test_truncated_json_graph(self, tmp_path, graph):
        path = tmp_path / "graph.json"
        write_json(graph, path)
        data = path.read_text()
        path.write_text(data[: len(data) // 2])
        with pytest.raises(GraphFormatError):
            read_json(path)

    def test_binary_garbage_edge_list(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_bytes(bytes([0xFF, 0xFE]) + b"not numbers at all\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_edge_list_with_partial_corruption_reports_line(self, tmp_path, graph):
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("13 banana\n")
        with pytest.raises(GraphFormatError) as excinfo:
            read_edge_list(path)
        assert "line" in str(excinfo.value)


class TestCorruptRowFiles:
    def test_truncated_row_file(self, tmp_path, rows):
        store = FileRowStore(tmp_path / "layer.rows")
        for row in rows:
            store.put(row)
        path = tmp_path / "layer.rows"
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        with pytest.raises(StorageError):
            FileRowStore(path)

    def test_garbage_prefix_row_file(self, tmp_path):
        path = tmp_path / "layer.rows"
        path.write_bytes(b"\x10\x00\x00\x00" + b"x" * 16)
        with pytest.raises(StorageError):
            FileRowStore(path)


class TestCorruptGeometry:
    def test_malformed_geometry_blob_raises(self, rows):
        bad = EdgeRow(
            row_id=999,
            node1_id=1,
            node1_label="a",
            edge_geometry=b"\x00\x01broken",
            edge_label="x",
            node2_id=2,
            node2_label="b",
        )
        with pytest.raises(GeometryError):
            bad.segment()
        with pytest.raises(GeometryError):
            decode_segment(b"")

    def test_table_insert_with_bad_geometry_fails_fast(self, rows):
        table = LayerTable(layer=0)
        bad = EdgeRow(
            row_id=0, node1_id=1, node1_label="a", edge_geometry=b"junk",
            edge_label="", node2_id=2, node2_label="b",
        )
        with pytest.raises(GeometryError):
            table.insert(bad)
        # Nothing half-indexed: the table is still empty and consistent.
        assert table.num_rows <= 1  # row store may hold it, but indexes failed loudly


class TestCorruptSqlite:
    def test_truncated_sqlite_file(self, tmp_path, graph, rows):
        database = GraphVizDatabase(name="x")
        database.load_layer(0, rows)
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises((StorageError, sqlite3.DatabaseError)):
            load_from_sqlite(path)

    def test_sqlite_with_dropped_layer_table(self, tmp_path, rows):
        database = GraphVizDatabase(name="x")
        database.load_layer(0, rows)
        path = tmp_path / "graph.db"
        save_to_sqlite(database, path)
        with sqlite3.connect(path) as connection:
            connection.execute("DROP TABLE layer_0")
        with pytest.raises(sqlite3.OperationalError):
            load_from_sqlite(path)

    def test_sqlite_meta_without_layers_key(self, tmp_path):
        path = tmp_path / "weird.db"
        with sqlite3.connect(path) as connection:
            connection.execute(
                "CREATE TABLE graphvizdb_meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            connection.execute(
                "INSERT INTO graphvizdb_meta VALUES ('name', 'empty-ish')"
            )
        loaded = load_from_sqlite(path)
        assert loaded.num_layers == 0
        assert loaded.name == "empty-ish"


@pytest.fixture
def registry():
    """Install-and-clear harness: tests leave no plan (or identity) behind."""

    def _install(*rules: FaultRule, seed: int = 0) -> FaultPlan:
        return faults.install(FaultPlan(list(rules), seed=seed))

    yield _install
    faults.clear()
    faults.set_identity("")


def _fire_pattern(point: str, hits: int) -> list[bool]:
    """Which of ``hits`` consecutive checks of ``point`` raised."""
    pattern = []
    for _ in range(hits):
        try:
            fault_check(point)
        except FaultInjected:
            pattern.append(True)
        else:
            pattern.append(False)
    return pattern


class TestFaultRegistry:
    def test_no_plan_is_a_noop(self):
        assert faults.active_plan() is None
        fault_check("journal.append", path="x")  # must not raise

    def test_nth_fires_exactly_once(self, registry):
        registry(FaultRule(point="p", nth=3))
        assert _fire_pattern("p", 5) == [False, False, True, False, False]

    def test_every_fires_periodically(self, registry):
        registry(FaultRule(point="p", every=2))
        assert _fire_pattern("p", 6) == [False, True, False, True, False, True]

    def test_after_offsets_the_schedule(self, registry):
        registry(FaultRule(point="p", after=2, every=1))
        assert _fire_pattern("p", 5) == [False, False, True, True, True]

    def test_times_caps_total_fires(self, registry):
        registry(FaultRule(point="p", every=1, times=2))
        assert _fire_pattern("p", 5) == [True, True, False, False, False]

    def test_points_are_independent(self, registry):
        plan = registry(
            FaultRule(point="p", nth=1), FaultRule(point="q", nth=2)
        )
        assert _fire_pattern("q", 2) == [False, True]
        assert _fire_pattern("p", 1) == [True]
        assert plan.fire_count() == 2
        assert plan.fire_count("p") == 1 and plan.hit_count("q") == 2

    def test_probability_is_deterministic_for_a_seed(self, registry):
        first = registry(FaultRule(point="p", probability=0.5), seed=42)
        pattern_a = _fire_pattern("p", 64)
        faults.clear()
        registry(FaultRule(point="p", probability=0.5), seed=42)
        pattern_b = _fire_pattern("p", 64)
        assert pattern_a == pattern_b  # same seed: identical misfires
        assert 0 < sum(pattern_a) < 64  # and actually probabilistic
        assert first.fire_count("p") == sum(pattern_a)
        # A different seed misfires on different hits.
        faults.clear()
        registry(FaultRule(point="p", probability=0.5), seed=43)
        assert _fire_pattern("p", 64) != pattern_a

    def test_worker_scoping_follows_identity(self, registry):
        registry(FaultRule(point="p", worker="w1", every=1))
        faults.set_identity("w0")
        assert _fire_pattern("p", 3) == [False, False, False]
        faults.set_identity("w1")
        assert _fire_pattern("p", 2) == [True, True]

    def test_match_scopes_by_context_substring(self, registry):
        registry(FaultRule(point="p", match="/edit/", every=1))
        fault_check("p", target="/window?dataset=a")  # no match: no fire
        with pytest.raises(FaultInjected) as excinfo:
            fault_check("p", target="/edit/add_node?dataset=a")
        assert excinfo.value.point == "p"
        assert excinfo.value.action == "error"

    def test_first_matching_rule_wins_per_hit(self, registry):
        registry(
            FaultRule(point="p", every=1, name="first"),
            FaultRule(point="p", every=1, name="second"),
        )
        with pytest.raises(FaultInjected) as excinfo:
            fault_check("p")
        assert excinfo.value.rule == "first"

    def test_json_round_trip(self):
        plan = FaultPlan(
            [FaultRule(point="journal.fsync", nth=3, worker="w1", name="r")],
            seed=7, name="chaos",
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.name == "chaos" and restored.seed == 7
        assert restored.rules == plan.rules

    def test_install_from_env(self, registry, monkeypatch):
        plan = FaultPlan([FaultRule(point="p", nth=1)], seed=1, name="env")
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        installed = faults.install_from_env()
        assert installed is not None and installed.name == "env"
        assert faults.active_plan() is installed
        with pytest.raises(FaultInjected):
            fault_check("p")
        monkeypatch.delenv(faults.ENV_VAR)
        assert faults.install_from_env() is None

    def test_delay_action_sleeps_and_continues(self, registry):
        import time

        registry(FaultRule(point="p", action="delay", delay_ms=30, nth=1))
        start = time.perf_counter()
        fault_check("p")  # must not raise
        assert time.perf_counter() - start >= 0.025

    def test_invalid_rules_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(point="p", action="explode")
        with pytest.raises(ValueError):
            FaultRule(point="")
        with pytest.raises(ValueError):
            FaultRule(point="p", probability=1.5)


class TestDatabaseConsistencyChecks:
    def test_validate_detects_missing_btree_entry(self, rows):
        database = GraphVizDatabase(name="x")
        database.load_layer(0, rows)
        table = database.table(0)
        victim = next(table.scan())
        table.node1_index.remove(victim.node1_id, victim.row_id)
        with pytest.raises(StorageError):
            database.validate()

    def test_validate_detects_extra_rtree_entry(self, rows):
        database = GraphVizDatabase(name="x")
        database.load_layer(0, rows)
        table = database.table(0)
        from repro.spatial.geometry import Rect

        table.ensure_dynamic_index()
        table.rtree.insert(Rect(0, 0, 1, 1), 10**9)
        with pytest.raises(StorageError):
            database.validate()

    def test_empty_layer_is_valid(self):
        database = GraphVizDatabase(name="x")
        database.create_layer(0)
        database.validate()

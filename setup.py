"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package installs in environments
without the ``wheel`` module (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()

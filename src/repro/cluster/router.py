"""The cluster router: one front door for a fleet of worker processes.

The router owns no query engine.  It binds the public HTTP port, keeps a
:class:`~repro.cluster.worker.WorkerHandle` (OS process + persistent
keep-alive client) per worker, and for every request:

1. answers **locally** when it can — ``/datasets`` (static union), cluster
   ``/health``, aggregated ``/metrics``, and any ``/window`` found in the
   cross-request :class:`~repro.cluster.cache.WindowResultCache`;
2. otherwise resolves the request's dataset (query parameter, or the session
   registry for ``/session/<id>/...``), picks the owning worker by rendezvous
   hashing over the *healthy* fleet, and proxies the verbatim target over the
   worker's pooled connections.

Supervision runs alongside: a health loop probes ``GET /health`` on every
worker each ``health_interval_seconds``, feeding per-dataset edit counters to
the window cache (edit-driven invalidation) and counting failures.  A worker
that fails ``max_health_failures`` probes, dies as an OS process, or breaks
mid-proxy is marked unhealthy *immediately* — the rendezvous ring shrinks, so
its datasets re-home to survivors on the very next request (every worker has
every dataset attached lazily; the survivor cold-opens from SQLite and
replays the dataset's write-ahead journal, which PR 2/PR 5 made cheap) — and
the supervisor respawns it in the background.  Session cursors are replicated
router-side (:class:`~repro.cluster.sessions.SessionDirectory`), so a session
whose worker crashed is transparently reopened on the new owner and the
command retried; the client never observes a reset.

Writes (``POST /edit/*``) proxy to the rendezvous owner like reads.  Every
edit carries an idempotency key (client-supplied or router-minted), journalled
with the edit itself, so a write whose connection broke mid-exchange — whose
outcome on the dead worker is ambiguous — can be safely resent to the next
owner: the write coordinator deduplicates keys it has already applied, replay
included.  A write acknowledgement additionally invalidates the router's
window cache eagerly, using the post-edit counter the worker returns, so
read-after-write is consistent without waiting for the next health probe.

Failure handling is deadline- and budget-bounded (PR 6): clients may cap a
request with ``X-GVDB-Deadline-Ms`` (propagated to workers, who refuse to
start work past it), failed attempts retry with jittered exponential backoff
up to ``retry_budget`` times, and per-worker circuit breakers take
persistently failing workers out of the ring between probes.

Replication (PR 7) rides on the write-ahead journal: each supervision pass
reconciles every dataset's rendezvous ranks 1..k into journal-feed
subscribers of the owner (``/replicate/start`` control calls; the workers
stream ``GET /journal/tail`` among themselves), and their ``applied_seq``
watermarks come back on health probes.  When an owner dies, the router
promotes the most-caught-up replica (``/replicate/promote``) and routes the
dataset's reads *and* writes to it through a promotion overlay until
rendezvous routing catches up or the home owner returns.  When an owner is
merely saturated (503), reads fall back to a replica whose lag fits the
staleness bound (``replica_max_lag_records``, or the request's
``X-GVDB-Max-Staleness`` header), answered with ``X-GVDB-Replica`` /
``X-GVDB-Replica-Lag`` provenance headers.  Only when there is no owner
*and* no in-bound replica does a ``/window`` fall back to the stale archive
of the router cache — explicitly marked ``X-GVDB-Stale`` — instead of going
dark.

Observability (PR 8) threads through all of the above: every routed request
runs under a 16-hex trace id (honored from ``X-GVDB-Trace-Id`` or minted
here, echoed in the response, and propagated on every proxied hop), with
``proxy`` / ``proxy.replica`` / ``retry.backoff`` spans recorded into a
bounded :class:`~repro.obs.trace.TraceStore` behind ``GET /debug/trace/<id>``
(the successfully proxied worker's own span tree is grafted under the proxy
span) and a slow-query log behind ``GET /debug/slow``.  The aggregated
``/metrics`` merges per-worker latency histograms bucket-wise and recomputes
fleet-wide p50/p95/p99 (percentiles are not additive), and
``/metrics?format=prometheus`` renders the Prometheus text exposition — see
``docs/observability.md``.  ``GET /debug/profile`` fans a sampling-profiler
collection out to every alive worker and merges the collapsed stacks
fleet-wide; ``GET /debug/memory`` aggregates per-worker memory samples with
the router's own footprint (process RSS plus result-cache bytes), which is
also folded into the merged ``/metrics`` ``memory`` section.

Shutdown is a **drain**: stop admitting (503 + ``Retry-After``), close the
listener, wait for in-flight proxied requests to finish (bounded by
``drain_timeout_seconds``), then SIGTERM the fleet — each worker in turn
drains its own thread pool before exiting.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import json
import random
import threading
import uuid
from collections import OrderedDict
from urllib.parse import parse_qs, urlencode, urlsplit

from .. import obs
from ..config import ClusterConfig, GraphVizDBConfig
from ..core.monitoring import ServiceMetrics
from ..errors import ClusterError, WorkerUnavailableError
from ..obs import percentiles_from_state, render_prometheus
from ..service.http import DEADLINE_HEADER, serve_connection
from ..slo.slo import slo_op_for_path
from .cache import WindowResultCache
from .client import WorkerClient
from .hashing import rendezvous_owner, rendezvous_ranking, rendezvous_replicas
from .resilience import CircuitBreaker, jittered_backoff
from .sessions import SessionDirectory
from .worker import WorkerHandle, WorkerSpec

__all__ = ["ClusterRouter", "ClusterRuntime", "merge_summaries", "STALENESS_HEADER"]

#: Request header letting a client cap how many journal records a replica-
#: served read may trail the owner by (overrides the configured
#: ``replica_max_lag_records`` for that request; ``0`` demands an owner-fresh
#: answer).  Lowercase, because the HTTP layer lowercases header names.
STALENESS_HEADER = "x-gvdb-max-staleness"

#: Absolute (event-loop clock) deadline of the request currently being
#: dispatched, from the client's ``X-GVDB-Deadline-Ms`` header.  A contextvar
#: rather than a parameter because the deadline must reach :meth:`_proxy`
#: through every dispatch path (windows, sessions, edits) without widening
#: each signature; connection handlers are separate tasks, so contexts never
#: bleed between concurrent requests.
_request_deadline: contextvars.ContextVar[float | None] = contextvars.ContextVar(
    "gvdb_request_deadline", default=None
)

#: Per-request staleness bound from ``X-GVDB-Max-Staleness`` (same contextvar
#: pattern as the deadline: it must reach the replica fallback through every
#: read dispatch path without widening signatures).
_request_max_staleness: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "gvdb_request_max_staleness", default=None
)


def merge_summaries(summaries: list[dict]) -> dict:
    """Merge worker metrics snapshots: sum numbers, ``max`` the ``peak_*`` ones."""
    merged: dict = {}
    for summary in summaries:
        _merge_into(merged, summary)
    return merged


def _merge_into(target: dict, source: dict) -> dict:
    for key, value in source.items():
        if isinstance(value, dict):
            existing = target.setdefault(key, {})
            if isinstance(existing, dict):
                _merge_into(existing, value)
            else:
                target[key] = dict(value)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            target[key] = value
        elif key.startswith("peak"):
            target[key] = max(target.get(key, 0), value)
        else:
            target[key] = target.get(key, 0) + value
    return target


class ClusterRouter:
    """Sharded multi-process serving: router, supervisor, and window cache.

    Parameters
    ----------
    datasets:
        ``name -> SQLite path`` of every served dataset.
    config:
        Full configuration; ``config.cluster`` drives fleet size, supervision
        and the cache, and the rest is handed to each worker process (with
        ``service.max_workers`` overridden by ``cluster.worker_threads``).
    metrics:
        Optional externally-owned metrics sink (cluster counters land here).
    """

    def __init__(
        self,
        datasets: dict[str, str],
        config: GraphVizDBConfig | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.config = config or GraphVizDBConfig()
        self.cluster_config: ClusterConfig = self.config.cluster
        if self.cluster_config.num_workers <= 0:
            raise ClusterError("ClusterRouter needs cluster.num_workers >= 1")
        if not datasets:
            raise ClusterError("ClusterRouter needs at least one dataset")
        self.datasets = {name: str(path) for name, path in datasets.items()}
        self.obs_config = self.config.observability
        self.metrics = metrics or ServiceMetrics(
            histograms_enabled=self.obs_config.histogram_enabled
        )
        # The router is where clients experience the cluster, so it runs its
        # own SLO engine over dispatch outcomes; worker-local SLO sections
        # are ignored in the merged view (burn rates don't sum).
        self.metrics.configure_slo(self.config.slo)
        #: Completed request traces (the router's own ring; worker-side span
        #: trees are grafted in on demand by ``/debug/trace/<id>``).
        self.traces = obs.TraceStore(
            ring_size=self.obs_config.trace_ring_size,
            slow_threshold_seconds=self.obs_config.slow_trace_seconds,
            slow_log_size=self.obs_config.slow_log_size,
        )
        self.cache = WindowResultCache(
            capacity=self.cluster_config.cache_capacity,
            # Adaptive sizing: when the workers' dataset pools run under a
            # byte budget, the router cache takes a configured fraction of
            # the same budget instead of an unrelated static knob.
            max_bytes=self.cluster_config.effective_cache_max_bytes(
                self.config.service.pool_max_resident_bytes
            ),
            metrics=self.metrics,
            stale_capacity=(
                self.cluster_config.degraded_stale_entries
                if self.cluster_config.degraded_stale_reads else 0
            ),
            stale_max_bytes=self.cluster_config.degraded_stale_max_bytes,
        )
        self._handles: dict[str, WorkerHandle] = {}
        self._clients: dict[str, WorkerClient] = {}
        #: Per-worker circuit breakers over connection-level failures; an
        #: open breaker removes the worker from the routing ring until a
        #: probe (or proxied request) observes a success.
        self._breakers: dict[str, CircuitBreaker] = {}
        self._backoff_rng = random.Random()
        #: Replicated session cursors (dataset, layer, viewport): the state
        #: that lets a crashed owner's sessions transparently reopen on the
        #: next owner.  Entries leave on close, on an unrecoverable worker
        #: 404, or via the idle sweep in :meth:`probe_workers`.
        self.sessions = SessionDirectory()
        #: Recently seen canonical /keyword and /nearest targets: the
        #: repeat-rate measurement that justified caching those op classes
        #: (bounded sliding windows; still reported so hit rates have a
        #: live denominator to compare against).
        self._repeat_windows: dict[str, OrderedDict[str, None]] = {
            "keyword": OrderedDict(), "nearest": OrderedDict(),
        }
        self._restarting: set[str] = set()
        #: Promotion overlay: ``dataset -> worker`` routed *instead of* the
        #: rendezvous owner after that owner died and a caught-up replica was
        #: promoted.  Entries clear themselves in the reconcile pass once
        #: plain rendezvous routing would pick the same worker (or the home
        #: owner's replacement is back and fresh from disk).
        self._promoted: dict[str, str] = {}
        #: ``dataset -> replica workers`` under the current fleet (rendezvous
        #: ranks 1..k, recomputed each reconcile pass).
        self._replica_sets: dict[str, tuple[str, ...]] = {}
        #: Last replication watermarks each worker reported on ``/health``:
        #: ``worker -> dataset -> {applied_seq, lag, ...}``.  Promotion picks
        #: the most-caught-up candidate from these; the replica read fallback
        #: enforces its staleness bound with them.
        self._replica_status: dict[str, dict[str, dict]] = {}
        #: Control-plane state: ``(replica, dataset) -> (owner, owner_port)``
        #: of the last successful ``/replicate/start``, so the reconcile pass
        #: only re-sends when the assignment (or the owner's endpoint, e.g.
        #: after a restart) actually changed.
        self._replica_sent: dict[tuple[str, str], tuple[str, int]] = {}
        self._inflight = 0
        self._draining = False
        self._server: asyncio.AbstractServer | None = None
        self._health_task: asyncio.Task | None = None
        self._restart_tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ start

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "ClusterRouter":
        """Spawn the fleet and bind the public endpoint."""
        if self.cluster_config.fault_plan:
            # Configured fault plans cover the router process too (the
            # ``client.exchange`` injection point lives here); workers
            # install the same plan in their own interpreters on spawn.
            from .. import faults

            if faults.active_plan() is None:
                faults.install(
                    faults.FaultPlan.from_json(self.cluster_config.fault_plan)
                )
        worker_config = GraphVizDBConfig(
            partition=self.config.partition,
            layout=self.config.layout,
            abstraction=self.config.abstraction,
            storage=self.config.storage,
            client=self.config.client,
            service=self._worker_service_config(),
            cluster=self.cluster_config,
            write=self.config.write,
            observability=self.config.observability,
            slo=self.config.slo,
        )
        dataset_items = tuple(sorted(self.datasets.items()))
        loop = asyncio.get_running_loop()
        handles = [
            WorkerHandle(spec=WorkerSpec(
                worker_id=f"w{index}",
                datasets=dataset_items,
                config=worker_config,
                host=host,
            ))
            for index in range(self.cluster_config.num_workers)
        ]
        # Register handles before spawning, so a partial spawn failure (or a
        # caller's stop()) can terminate whatever did come up.
        for handle in handles:
            self._handles[handle.worker_id] = handle
        try:
            await asyncio.gather(
                *(loop.run_in_executor(None, handle.spawn) for handle in handles)
            )
        except Exception:
            await asyncio.gather(*(
                loop.run_in_executor(None, handle.terminate) for handle in handles
            ))
            raise
        for handle in handles:
            self._clients[handle.worker_id] = self._make_client(handle)
        try:
            self._server = await asyncio.start_server(
                self._handle, host=host, port=port
            )
        except OSError:
            # The public bind failed (port already in use): the fleet must
            # not be left running — callers that never call stop() (e.g. a
            # failed ClusterRuntime constructor) would otherwise leak N
            # worker processes.
            for client in self._clients.values():
                client.close()
            await asyncio.gather(*(
                loop.run_in_executor(None, handle.terminate) for handle in handles
            ))
            raise
        self._health_task = asyncio.create_task(self._health_loop())
        return self

    def _worker_service_config(self):
        from dataclasses import replace

        return replace(
            self.config.service, max_workers=self.cluster_config.worker_threads
        )

    def _make_client(self, handle: WorkerHandle) -> WorkerClient:
        # Pooled proxy connections expire client-side well inside the
        # worker's keep-alive window, so a stale socket (which would be
        # mistaken for a crash and trigger a restart) stays rare.
        keepalive = self.config.service.http_keepalive_seconds
        return WorkerClient(
            handle.worker_id, handle.spec.host, handle.port,
            timeout_seconds=self.cluster_config.proxy_timeout_seconds,
            idle_expiry_seconds=keepalive / 3 if keepalive > 0 else 0.0,
            metrics=self.metrics,
        )

    @property
    def port(self) -> int:
        """The bound public port (after :meth:`start`)."""
        if self._server is None:
            raise ClusterError("router is not started")
        return self._server.sockets[0].getsockname()[1]

    # ---------------------------------------------------------------- routing

    def alive_workers(self) -> list[str]:
        """Worker ids currently eligible for routing (healthy, in id order).

        A worker whose circuit breaker is open is excluded even if its
        process looks healthy: it has failed ``circuit_breaker_failures``
        consecutive exchanges, and routing to it again only taxes requests
        with connect timeouts.  The health loop keeps probing it; the first
        successful probe closes the circuit and readmits it.
        """
        return [
            worker_id
            for worker_id, handle in sorted(self._handles.items())
            if handle.healthy and not self._breaker(worker_id).is_open
        ]

    def _breaker(self, worker_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(worker_id)
        if breaker is None:
            breaker = CircuitBreaker(self.cluster_config.circuit_breaker_failures)
            self._breakers[worker_id] = breaker
        return breaker

    def _note_worker_failure(self, worker_id: str) -> None:
        """One connection-level failure: feed the breaker, shrink the ring."""
        if self._breaker(worker_id).record_failure():
            self.metrics.record_circuit_open()
        self._mark_worker_failed(worker_id)

    def _note_worker_success(self, worker_id: str) -> None:
        self._breaker(worker_id).record_success()

    def worker_for(self, dataset: str) -> str | None:
        """The dataset's current route target (``None``: no healthy worker).

        Normally the rendezvous owner over the healthy fleet; while a
        promotion overlay entry is live (the natural owner died and a
        caught-up replica took over), the promoted worker is the target for
        reads *and* writes until reconcile re-homes the dataset.
        """
        alive = self.alive_workers()
        promoted = self._promoted.get(dataset)
        if promoted is not None and promoted in alive:
            return promoted
        return rendezvous_owner(dataset, alive)

    def assignment(self) -> dict[str, str | None]:
        """``dataset -> owning worker`` under the current healthy fleet."""
        return {name: self.worker_for(name) for name in sorted(self.datasets)}

    # ------------------------------------------------------------- HTTP server

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Track the connection task so stop() can cancel parked keep-alive
        # reads: on Python >= 3.12 ``wait_closed`` waits for every handler,
        # and an idle connection would otherwise stall the drain until its
        # keep-alive window expires.
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await serve_connection(
                reader, writer, self._respond,
                self.config.service.http_keepalive_seconds,
            )
        finally:
            if task is not None:
                self._conn_tasks.discard(task)

    async def _respond(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ):
        if not self.obs_config.trace_enabled:
            return await self._respond_inner(method, target, body, headers)
        # The router mints the request's trace id (or honours the client's
        # ``X-GVDB-Trace-Id``); the contextvar travels through every dispatch
        # path and across the proxy hop (the worker client re-sends the
        # header), so router and worker spans land in one tree.
        trace, trace_token = obs.begin_trace(
            (headers or {}).get(obs.TRACE_HEADER),
            name=f"router {method} {urlsplit(target).path}",
        )
        status = 500
        try:
            result = await self._respond_inner(method, target, body, headers)
            status = result[0]
            extra = dict(result[2]) if len(result) > 2 else {}
            extra.setdefault(obs.TRACE_HEADER_WIRE, trace.trace_id)
            return result[0], result[1], extra
        finally:
            trace.finish("ok" if status < 500 else "error")
            self.traces.add(trace)
            obs.end_trace(trace_token)

    async def _respond_inner(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ):
        self._inflight += 1
        token = None
        staleness_token = None
        remaining = _header_deadline_seconds(headers)
        if remaining is not None:
            if remaining <= 0:
                self._inflight -= 1
                self.metrics.record_deadline_rejection()
                return 504, _json_bytes(
                    {"error": "deadline expired before admission"}
                )
            token = _request_deadline.set(
                asyncio.get_running_loop().time() + remaining
            )
        raw_staleness = (headers or {}).get(STALENESS_HEADER)
        if raw_staleness is not None:
            try:
                staleness_token = _request_max_staleness.set(
                    max(0, int(raw_staleness))
                )
            except ValueError:
                pass  # an unparseable bound falls back to the configured one
        try:
            loop = asyncio.get_running_loop()
            started = loop.time()
            result = await self._dispatch(method, target, body)
            # Feed the SLO engine with the outcome the *client* experienced:
            # full dispatch wall time (cache hits, retries, replica fallbacks
            # and failures included), per operation class.
            op = slo_op_for_path(urlsplit(target).path.rstrip("/") or "/")
            if op is not None:
                self.metrics.record_op_outcome(
                    op, loop.time() - started, result[0]
                )
            return result
        except Exception:  # defence: a router bug must not kill the router
            return 500, _json_bytes({"error": "internal router error"})
        finally:
            if token is not None:
                _request_deadline.reset(token)
            if staleness_token is not None:
                _request_max_staleness.reset(staleness_token)
            self._inflight -= 1

    async def _dispatch(self, method: str, target: str, body: bytes) -> tuple[int, bytes]:
        """Answer one request target: locally, from cache, or via a worker."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = {key: values[-1] for key, values in parse_qs(split.query).items()}
        if self._draining:
            return 503, _json_bytes({"error": "router is draining; retry elsewhere"})
        if path == "/datasets":
            return 200, _json_bytes({"datasets": sorted(self.datasets)})
        if path == "/health":
            return 200, _json_bytes(self.health_summary())
        if path == "/metrics":
            summary = await self.metrics_summary()
            if params.get("format") == "prometheus":
                return 200, render_prometheus(summary).encode(), {
                    "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
                }
            return 200, _json_bytes(summary)
        if path.startswith("/debug/trace/"):
            payload = self.traces.get(path.rpartition("/")[2])
            if payload is None:
                return 404, _json_bytes({"error": "unknown trace id"})
            return 200, _json_bytes(await self._grafted_trace(payload))
        if path == "/debug/slow":
            try:
                count = max(1, int(params.get("n", "10")))
            except ValueError:
                count = 10
            return 200, _json_bytes({
                "threshold_seconds": self.traces.slow_threshold_seconds,
                "traces": self.traces.slowest(count),
            })
        if path == "/debug/profile":
            return await self._fanout_profile(params)
        if path == "/debug/memory":
            return await self._fanout_memory(params)

        # Everything else belongs to one dataset's owner.
        if path == "/session/new":
            return await self._proxy_session_new(target, params)
        if path.startswith("/session/"):
            return await self._proxy_session(path, target)
        dataset = params.get("dataset")
        if dataset is None:
            return 400, _json_bytes({"error": "bad request: 'dataset'"})
        if dataset not in self.datasets:
            return 404, _json_bytes({
                "error": f"dataset {dataset!r} is not served; available: "
                + (", ".join(sorted(self.datasets)) or "none")
            })
        if path.startswith("/edit/"):
            return await self._proxy_edit(method, target, body, dataset)
        if path == "/window":
            return await self._window(target, params, dataset)
        if path in ("/keyword", "/nearest"):
            return await self._cached_read(path, target, params, dataset)
        return await self._proxy(target, dataset)

    async def _cached_read(
        self, path: str, target: str, params: dict[str, str], dataset: str
    ) -> tuple[int, bytes]:
        """Serve ``/keyword`` or ``/nearest`` through the result cache.

        The repeat-rate counters (PR 5) measured these op classes earning
        double-digit hit rates under session traffic, so they now ride the
        same cache as windows: canonical target key (prefixed with the path
        so op classes can't collide), counter snapshot before the round
        trip, and the shared edit-driven invalidation.  Misses keep the
        replica fallback windows always had.
        """
        kind = path.lstrip("/")
        canonical = _cache_key(params)
        self._record_repeat(kind, canonical)
        key = f"{path}?{canonical}"
        if self.cluster_config.cache_capacity:
            entry = self.cache.get(key, op=kind)
            if entry is not None:
                return entry.status, entry.body
        counter = self.cache.counter_snapshot(dataset)
        status, body = await self._proxy(target, dataset)
        if status == 200 and self.cluster_config.cache_capacity:
            self.cache.put(key, dataset, status, body, counter=counter)
            return status, body
        if status == 503:
            # Owner saturated (or gone): a replica inside the staleness
            # bound beats a 503.
            replica = await self._proxy_replica(target, dataset)
            if replica is not None:
                return replica
        return status, body

    def _record_repeat(self, kind: str, key: str) -> None:
        """Track whether a keyword/kNN target repeats within the recent window.

        This settled the ROADMAP "measure before caching" question with live
        numbers: the repeat rate these counters expose is exactly the hit
        rate the keyword/kNN result cache (enabled since PR 9) can earn.
        """
        window = self._repeat_windows[kind]
        repeat = key in window
        self.metrics.record_read_repeat(kind, repeat)
        if repeat:
            window.move_to_end(key)
        else:
            window[key] = None
            while len(window) > 4096:
                window.popitem(last=False)

    # ------------------------------------------------------------------- edits

    async def _proxy_edit(
        self, method: str, target: str, body: bytes, dataset: str
    ) -> tuple[int, bytes]:
        """Forward a write to the dataset's owner and invalidate eagerly.

        Every proxied edit carries an **idempotency key** (the client's, or
        one the router mints here), persisted in the owner's write-ahead
        journal alongside the edit itself.  That key is what makes write
        retries safe: a broken worker connection is ambiguous — the dead
        worker may have journalled (and durably committed) the edit before
        dying — but resending the same key is harmless, because the write
        coordinator deduplicates keys it has already applied (including
        across journal replay on the next owner).  So unlike the pre-key
        contract, a failed write *is* retried on the next rendezvous owner,
        up to ``retry_budget`` times within the request deadline; the edit
        lands exactly once no matter which attempt got through.  On a 200
        the worker's acknowledgement carries its post-edit edit counter,
        which feeds the window cache *now* — a read-after-write through the
        router must never see a pre-edit cached window, no matter where the
        health probe cadence stands.
        """
        split = urlsplit(target)
        if "idempotency_key" not in parse_qs(split.query):
            separator = "&" if split.query else "?"
            target = f"{target}{separator}idempotency_key={uuid.uuid4().hex}"
        status, response = await self._proxy(
            target, dataset, method=method, body=body, retryable=True
        )
        if status == 200:
            counter: int | None = None
            try:
                counter = int(json.loads(response).get("edit_counter"))
            except (ValueError, TypeError):
                counter = None
            self.cache.note_write(dataset, counter)
        return status, response

    # ------------------------------------------------------------------ window

    async def _window(self, target: str, params: dict[str, str], dataset: str):
        key = f"/window?{_cache_key(params)}"
        entry = self.cache.get(key) if self.cluster_config.cache_capacity else None
        if entry is not None:
            return entry.status, entry.body
        # Snapshot the edit counter before the round trip: if an edit (and
        # its invalidation) lands while the query is in flight, put() sees a
        # moved counter and drops the now-pre-edit response.
        counter = self.cache.counter_snapshot(dataset)
        status, body = await self._proxy(target, dataset)
        if status == 200 and self.cluster_config.cache_capacity:
            self.cache.put(key, dataset, status, body, counter=counter)
            return status, body
        if status == 503:
            # Owner saturated or gone: a replica within the staleness bound
            # is the first fallback — it serves a live (bounded-stale) index,
            # not an archived response.  Replica answers are deliberately not
            # cached: the window cache must only ever hold owner-fresh bodies.
            replica = await self._proxy_replica(target, dataset)
            if replica is not None:
                return replica
        if (
            status in (503, 504)
            and self.cluster_config.degraded_stale_reads
            and self.worker_for(dataset) is None
        ):
            # Last resort: no healthy owner, no replica inside the bound.  A
            # last-known-good window beats a blank viewport mid-incident —
            # but only with the staleness declared, so clients can render it
            # greyed out and keep polling for the live response.
            stale = self.cache.get_stale(key)
            if stale is not None:
                self.metrics.record_degraded_read()
                return 200, stale.body, {
                    "X-GVDB-Stale": "1",
                    "X-GVDB-Degraded": "no-healthy-owner",
                }
        return status, body

    # ---------------------------------------------------------------- sessions

    async def _proxy_session_new(
        self, target: str, params: dict[str, str]
    ) -> tuple[int, bytes]:
        dataset = params.get("dataset")
        if dataset is None:
            return 400, _json_bytes({"error": "bad request: 'dataset'"})
        status, body = await self._proxy(target, dataset)
        if status == 200:
            decoded = json.loads(body)
            session_id = decoded.get("session_id")
            if session_id:
                cursor = self.sessions.record(session_id, dataset)
                reported = decoded.get("cursor")
                if isinstance(reported, dict):
                    cursor.update(reported)
        return status, body

    async def _proxy_session(self, path: str, target: str) -> tuple[int, bytes]:
        _, _, rest = path.partition("/session/")
        session_id, _, op = rest.partition("/")
        cursor = self.sessions.get(session_id)
        if cursor is None:
            return 404, _json_bytes({
                "error": f"session {session_id!r} does not exist on this cluster"
            })
        cursor.touch()
        status, body = await self._proxy(target, cursor.dataset)
        session_alive = True
        if status == 404 and op != "close":
            # 404 is ambiguous: the worker may not know the *session* (its
            # previous owner crashed, or it idle-expired) — or the session
            # is fine and the *command itself* 404'd (e.g. focus_on an
            # unknown node id).  Reopen in place from the replicated cursor
            # on the dataset's current owner and retry once: a recovered
            # session answers the retry (failover), while a command-level
            # 404 repeats — in which case the session provably exists (the
            # reopen just succeeded) and must be neither dropped nor counted
            # as a failover.
            reopen_status, _ = await self._proxy(
                cursor.reopen_target(), cursor.dataset
            )
            if reopen_status == 200:
                status, body = await self._proxy(target, cursor.dataset)
                if status != 404:
                    self.metrics.record_session_failover()
            else:
                session_alive = False
        if status == 200 and op != "close":
            reported = _extract_cursor(body)
            if reported is not None:
                cursor.update(reported)
        if (op == "close" and status in (200, 404)) or not session_alive:
            # An explicit close (or a close on a session no worker knows),
            # or a session that could not even be reopened: drop the
            # directory entry so the map cannot grow with sessions nobody
            # will ever close.
            self.sessions.drop(session_id)
        return status, body

    # ------------------------------------------------------------------- proxy

    async def _proxy(
        self,
        target: str,
        dataset: str,
        method: str = "GET",
        body: bytes = b"",
        retryable: bool | None = None,
    ) -> tuple[int, bytes]:
        """Forward ``target`` to the dataset's owner, retrying within budget.

        Every attempt runs under the request's **deadline** — the router's
        ``proxy_timeout_seconds``, tightened by the client's
        ``X-GVDB-Deadline-Ms`` header if present — and the remaining time is
        propagated to the worker in the same header, so a worker never spends
        longer computing an answer than anyone is still waiting for.

        A broken worker connection feeds the worker's circuit breaker, marks
        it unhealthy (scheduling its restart) and — when the request is
        retryable — retries on the dataset's next rendezvous owner after a
        jittered exponential backoff, up to ``retry_budget`` extra attempts
        or until the deadline runs out, whichever comes first.  GETs are
        retryable by definition; edits are retryable because
        :meth:`_proxy_edit` gives every one an idempotency key the worker
        deduplicates.  With nobody healthy (or the budget exhausted) the
        client gets 503 + ``Retry-After``; a deadline that expires mid-retry
        gets 504.
        """
        if retryable is None:
            retryable = method == "GET"
        loop = asyncio.get_running_loop()
        proxy_started = loop.time()
        deadline = proxy_started + self.cluster_config.proxy_timeout_seconds
        client_deadline = _request_deadline.get()
        if client_deadline is not None:
            deadline = min(deadline, client_deadline)
        attempts = 1 + (self.cluster_config.retry_budget if retryable else 0)
        for attempt in range(attempts):
            remaining = deadline - loop.time()
            if remaining <= 0:
                self.metrics.record_deadline_rejection()
                return 504, _json_bytes({
                    "error": f"deadline exhausted while proxying {method} {target}"
                })
            worker_id = self.worker_for(dataset)
            if worker_id is None:
                break
            client = self._clients[worker_id]
            try:
                with obs.span(
                    "proxy", worker=worker_id, dataset=dataset,
                    attempt=attempt + 1,
                ):
                    status, _, response = await client.request(
                        method, target, body,
                        timeout_seconds=remaining,
                        headers={
                            "X-GVDB-Deadline-Ms": str(max(1, int(remaining * 1000)))
                        },
                        idempotent=retryable and method != "GET",
                    )
            except WorkerUnavailableError:
                self._note_worker_failure(worker_id)
                if attempt + 1 < attempts:
                    self.metrics.record_proxy_retry()
                    if method != "GET":
                        self.metrics.record_edit_retry()
                    delay = jittered_backoff(
                        attempt + 1,
                        self.cluster_config.retry_backoff_base_seconds,
                        self.cluster_config.retry_backoff_max_seconds,
                        self.cluster_config.retry_backoff_jitter,
                        self._backoff_rng,
                    )
                    # Sleeping past the deadline helps nobody; skip straight
                    # to the next attempt and let the deadline check rule.
                    if delay > 0 and loop.time() + delay < deadline:
                        with obs.span("retry.backoff", attempt=attempt + 1):
                            await asyncio.sleep(delay)
                continue
            self._note_worker_success(worker_id)
            self.metrics.record_proxied()
            self.metrics.record_latency("proxy", loop.time() - proxy_started)
            self.metrics.record_latency("proxy.attempts", attempt + 1)
            return status, response
        return 503, _json_bytes({
            "error": f"no healthy worker for dataset {dataset!r}; retry later"
        })

    async def _proxy_replica(self, target: str, dataset: str):
        """Try the dataset's replicas, most-caught-up first, within the bound.

        The staleness bound is the request's ``X-GVDB-Max-Staleness`` header
        if present, otherwise ``replica_max_lag_records``.  A replica is only
        eligible when its last-reported lag fits the bound — a lagging
        replica is skipped entirely (the caller falls through to the owner's
        error or the degraded archive), never silently served.  Successful
        answers carry honest provenance headers: which replica answered and
        how many records it trailed the owner by when last probed.

        Returns ``None`` when no eligible replica produced a 200.
        """
        bound = _request_max_staleness.get()
        if bound is None:
            bound = self.cluster_config.replica_max_lag_records
        alive = set(self.alive_workers())
        owner = self.worker_for(dataset)
        candidates: list[tuple[int, int, str]] = []
        for worker_id in self._replica_sets.get(dataset, ()):
            if worker_id == owner or worker_id not in alive:
                continue
            status = (self._replica_status.get(worker_id) or {}).get(dataset)
            if not isinstance(status, dict) or "applied_seq" not in status:
                continue  # never heard a watermark: staleness is unknowable
            lag = max(0, int(status.get("lag", 0)))
            if lag > bound:
                continue
            candidates.append((lag, -int(status.get("applied_seq", 0)), worker_id))
        candidates.sort()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.cluster_config.proxy_timeout_seconds
        client_deadline = _request_deadline.get()
        if client_deadline is not None:
            deadline = min(deadline, client_deadline)
        for lag, _, worker_id in candidates:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return None
            client = self._clients.get(worker_id)
            if client is None:
                continue
            try:
                with obs.span(
                    "proxy.replica", worker=worker_id, dataset=dataset, lag=lag
                ):
                    status, _, body = await client.request(
                        "GET", target, b"",
                        timeout_seconds=remaining,
                        headers={
                            "X-GVDB-Deadline-Ms": str(max(1, int(remaining * 1000)))
                        },
                    )
            except WorkerUnavailableError:
                self._note_worker_failure(worker_id)
                continue
            if status == 200:
                self._note_worker_success(worker_id)
                self.metrics.record_replica_read()
                headers = {
                    "X-GVDB-Replica": worker_id,
                    "X-GVDB-Replica-Lag": str(lag),
                }
                if lag > 0:
                    headers["X-GVDB-Stale"] = "1"
                return 200, body, headers
        return None

    # -------------------------------------------------------------- supervision

    async def _health_loop(self) -> None:
        interval = self.cluster_config.health_interval_seconds
        jitter = self.cluster_config.health_interval_jitter
        while True:
            # Jittered cadence: many routers (tests, CI, colocated fleets)
            # must not probe — and reconcile-replicate — in lockstep.
            delay = (
                jittered_backoff(1, interval, interval * 2, jitter,
                                 self._backoff_rng)
                if jitter > 0 else interval
            )
            await asyncio.sleep(delay)
            await self.probe_workers()

    async def probe_workers(self) -> None:
        """One supervision pass: probe the fleet concurrently, prune sessions.

        Probes run in parallel (``gather``), so one hung worker costs only
        its own ``health_timeout_seconds`` — not a serial stall that delays
        failure detection and cache invalidation for everyone else.
        """
        await asyncio.gather(*(
            self._probe_worker(worker_id)
            for worker_id in list(self._handles)
            if worker_id not in self._restarting
        ))
        await self._reconcile_replication()
        self._expire_idle_sessions()

    def _expire_idle_sessions(self) -> None:
        """Drop session directory entries idle past the workers' expiry clock.

        Workers expire the sessions themselves after ``session_idle_seconds``;
        this is the router-side mirror, so abandoned sessions (browsers that
        disconnect) do not leak directory entries the lazy 404 path would
        never touch.
        """
        self.sessions.expire_idle(self.config.service.session_idle_seconds)

    async def _probe_worker(self, worker_id: str) -> None:
        handle = self._handles.get(worker_id)
        if handle is None:
            return
        if not handle.is_alive():
            self._mark_worker_failed(worker_id)
            return
        client = self._clients[worker_id]
        try:
            status, health = await client.get_json(
                "/health",
                timeout_seconds=self.cluster_config.health_timeout_seconds,
            )
        except WorkerUnavailableError:
            status, health = 0, {}
            # Probe connections feed the breaker like proxied requests do —
            # the probe of an open-circuit worker *is* the half-open trial.
            if self._breaker(worker_id).record_failure():
                self.metrics.record_circuit_open()
        if status != 200 or health.get("status") != "ok":
            handle.consecutive_failures += 1
            if handle.consecutive_failures >= self.cluster_config.max_health_failures:
                self._mark_worker_failed(worker_id)
        else:
            self._note_worker_success(worker_id)
            handle.consecutive_failures = 0
            handle.healthy = True
            counters = {
                str(name): int(counter)
                for name, counter in health.get("datasets", {}).items()
            }
            handle.edit_counters = counters
            replication = health.get("replication")
            if isinstance(replication, dict):
                self._replica_status[worker_id] = {
                    str(name): status
                    for name, status in replication.items()
                    if isinstance(status, dict)
                }
            # Only the *owner's* counter feeds cache invalidation: every
            # worker reports every dataset (non-owners report 0 since they
            # never opened it), so mixing workers into one counter stream
            # would flap owner/non-owner values and drop the dataset's cache
            # on every probe after the first edit.  An ownership change also
            # changes whose counter is tracked — that difference invalidates
            # too, which is correct: the new owner's state is fresh from
            # disk, not the old owner's in-memory edits.
            owned = {
                dataset: counter
                for dataset, counter in counters.items()
                if self.worker_for(dataset) == worker_id
            }
            self.cache.observe_edit_counters(owned)

    def _mark_worker_failed(self, worker_id: str) -> None:
        """Shrink the routing ring now; restart the worker in the background."""
        handle = self._handles.get(worker_id)
        if handle is None:
            return
        was_routable = handle.healthy
        handle.healthy = False
        # Any promotion overlay pointing at the failed worker is dead weight:
        # routing falls straight back to rendezvous over the survivors.
        for dataset, promoted in list(self._promoted.items()):
            if promoted == worker_id:
                del self._promoted[dataset]
        if was_routable and not self._draining:
            # Datasets this worker was serving lose their owner right now;
            # kick off promotion of their most-caught-up replicas in the
            # background.  Routing does not wait: rendezvous failover (cold
            # open + journal replay on the next-ranked worker) remains the
            # correctness path — promotion is the warm path that usually
            # wins the race.
            lost = [
                dataset for dataset in self.datasets
                if rendezvous_owner(
                    dataset, sorted(set(self.alive_workers()) | {worker_id})
                ) == worker_id
            ]
            if lost and self.cluster_config.replicas_per_dataset > 0:
                task = asyncio.get_running_loop().create_task(
                    self._promote_replicas(worker_id, lost)
                )
                self._restart_tasks.add(task)
                task.add_done_callback(self._restart_tasks.discard)
        if worker_id in self._restarting or self._draining:
            return
        self._restarting.add(worker_id)
        task = asyncio.get_running_loop().create_task(self._restart_worker(worker_id))
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    async def _restart_worker(self, worker_id: str) -> None:
        handle = self._handles[worker_id]
        loop = asyncio.get_running_loop()
        try:
            backoff = self.cluster_config.restart_backoff_seconds
            if self.cluster_config.restart_backoff_jitter > 0:
                # Decorrelate restarts: a correlated fleet failure (OOM
                # killer sweep, machine stall) must not respawn every worker
                # in the same instant and recreate the thundering herd that
                # killed them.
                backoff *= 1.0 + self._backoff_rng.uniform(
                    0.0, self.cluster_config.restart_backoff_jitter
                )
            await asyncio.sleep(backoff)
            self._clients[worker_id].close()
            await loop.run_in_executor(None, handle.terminate, 1.0)
            spawn_future = loop.run_in_executor(None, handle.spawn)
            try:
                await asyncio.shield(spawn_future)
            except asyncio.CancelledError:
                # stop() cancelled the restart mid-spawn.  The executor
                # thread finishes regardless and may assign a live process
                # *after* the fleet was terminated — tear down whatever it
                # produces on a plain thread (the loop may be closing).
                spawn_future.add_done_callback(
                    lambda f: threading.Thread(
                        target=handle.terminate, daemon=True
                    ).start() if f.exception() is None else None
                )
                raise
            if self._draining:
                # Drain raced the respawn: this worker must not outlive it.
                await loop.run_in_executor(None, handle.terminate)
                return
            self._clients[worker_id] = self._make_client(handle)
            # A fresh process has no subscriptions and no watermarks: forget
            # the control-plane state so reconcile re-sends what it needs.
            self._replica_status.pop(worker_id, None)
            for key in list(self._replica_sent):
                if key[0] == worker_id:
                    del self._replica_sent[key]
            self.metrics.record_worker_restart()
        except Exception:
            # The worker stays unhealthy; the next health pass (which skips
            # only workers mid-restart) will find it dead and try again.
            handle.healthy = False
        finally:
            self._restarting.discard(worker_id)

    # -------------------------------------------------------------- replication

    async def _reconcile_replication(self) -> None:
        """Drive every worker's subscriptions toward the desired topology.

        Runs at the end of each supervision pass.  For every dataset: the
        replica set is the rendezvous ranks 1..k over the healthy fleet
        (excluding the current route target), and each replica must be
        subscribed to the *current owner's* endpoint.  Control calls only go
        out when the desired state differs from the last acknowledged one —
        a stable fleet reconciles with zero requests.  The same pass retires
        promotion overlay entries once plain rendezvous routing would pick
        the promoted worker anyway, or the home owner's replacement is back
        (fresh from disk + journal replay, so re-homing loses nothing).
        """
        if (
            self.cluster_config.replicas_per_dataset <= 0
            or not self.config.write.journal_enabled
        ):
            return
        alive = self.alive_workers()
        alive_set = set(alive)
        for dataset, promoted in list(self._promoted.items()):
            if promoted not in alive_set:
                del self._promoted[dataset]
                continue
            if rendezvous_owner(dataset, alive) == promoted:
                del self._promoted[dataset]  # the overlay became the default
                continue
            home = rendezvous_owner(dataset, sorted(self._handles))
            if home in alive_set:
                del self._promoted[dataset]  # the home owner is back
        calls = []
        desired: set[tuple[str, str]] = set()
        for dataset in self.datasets:
            owner = self.worker_for(dataset)
            if owner is None:
                self._replica_sets[dataset] = ()
                continue
            if self._promoted.get(dataset) == owner:
                # Under an overlay the replica set is everyone ranked below
                # the *promoted* owner, which plain rank-slicing cannot
                # express — take the top alive workers that are not it.
                ranked = [
                    worker_id
                    for worker_id in rendezvous_ranking(dataset, alive)
                    if worker_id != owner
                ][: self.cluster_config.replicas_per_dataset]
                replicas = tuple(ranked)
            else:
                replicas = tuple(
                    worker_id
                    for worker_id in rendezvous_replicas(
                        dataset, alive, self.cluster_config.replicas_per_dataset
                    )
                )
            self._replica_sets[dataset] = replicas
            owner_handle = self._handles[owner]
            endpoint = (owner, owner_handle.port)
            for worker_id in replicas:
                desired.add((worker_id, dataset))
                if self._replica_sent.get((worker_id, dataset)) != endpoint:
                    calls.append(self._replicate_start(
                        worker_id, dataset, owner, owner_handle
                    ))
        for key in list(self._replica_sent):
            if key not in desired:
                del self._replica_sent[key]
                if key[0] in alive_set:
                    calls.append(self._replicate_stop(key[0], key[1]))
        if calls:
            await asyncio.gather(*calls, return_exceptions=True)

    async def _replicate_start(
        self, worker_id: str, dataset: str, owner: str, owner_handle: WorkerHandle
    ) -> None:
        client = self._clients.get(worker_id)
        if client is None:
            return
        body = json.dumps({
            "owner_id": owner,
            "owner_host": owner_handle.spec.host,
            "owner_port": owner_handle.port,
        }).encode()
        try:
            status, _, response = await client.request(
                "POST", f"/replicate/start?dataset={dataset}", body,
                timeout_seconds=self.cluster_config.health_timeout_seconds,
            )
        except WorkerUnavailableError:
            return
        if status == 200:
            self._replica_sent[(worker_id, dataset)] = (owner, owner_handle.port)
            # The acknowledgement carries the subscription's watermark —
            # seed the status map so a promotion between health probes has
            # something to rank by.
            try:
                decoded = json.loads(response)
            except ValueError:
                return
            if isinstance(decoded, dict) and "applied_seq" in decoded:
                self._replica_status.setdefault(worker_id, {})[dataset] = {
                    key: value for key, value in decoded.items()
                    if key != "dataset"
                }

    async def _replicate_stop(self, worker_id: str, dataset: str) -> None:
        client = self._clients.get(worker_id)
        if client is None:
            return
        with contextlib.suppress(WorkerUnavailableError):
            await client.request(
                "POST", f"/replicate/stop?dataset={dataset}", b"",
                timeout_seconds=self.cluster_config.health_timeout_seconds,
            )
        status = self._replica_status.get(worker_id)
        if status is not None:
            status.pop(dataset, None)

    async def _promote_replicas(
        self, failed_worker: str, datasets: list[str]
    ) -> None:
        """Promote the most-caught-up replica of each dataset the dead owner held.

        Candidates are ranked by their last-reported ``applied_seq`` (health
        probes and start acknowledgements keep it current).  A successful
        ``/replicate/promote`` — the replica stops its feed, drains its local
        journal copy, and catches up from the authoritative journal — puts
        the worker into the promotion overlay, after which reads *and writes*
        route to it.  Failures simply leave the overlay unset: rendezvous
        failover over the survivors (cold open + replay + idempotency-key
        dedup) already guarantees correctness; promotion only buys the warm
        copy and the most-caught-up choice.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        for dataset in datasets:
            alive = set(self.alive_workers())
            candidates: list[tuple[int, str]] = []
            for worker_id in self._replica_sets.get(dataset, ()):
                if worker_id == failed_worker or worker_id not in alive:
                    continue
                status = (self._replica_status.get(worker_id) or {}).get(dataset)
                if not isinstance(status, dict):
                    continue
                candidates.append((int(status.get("applied_seq", 0)), worker_id))
            candidates.sort(reverse=True)
            for _, worker_id in candidates:
                client = self._clients.get(worker_id)
                if client is None:
                    continue
                try:
                    status_code, _, response = await client.request(
                        "POST", f"/replicate/promote?dataset={dataset}", b"",
                        timeout_seconds=self.cluster_config.health_timeout_seconds,
                    )
                except WorkerUnavailableError:
                    self._note_worker_failure(worker_id)
                    continue
                if status_code != 200:
                    continue
                self._promoted[dataset] = worker_id
                self._replica_sent.pop((worker_id, dataset), None)
                # Ownership moved: cached windows keyed to the old owner's
                # counter stream are no longer trustworthy.
                self.cache.invalidate_dataset(dataset)
                self.metrics.record_promotion((loop.time() - started) * 1000.0)
                await self._reopen_sessions(dataset)
                break

    async def _reopen_sessions(self, dataset: str) -> None:
        """Best-effort: rebuild the dataset's sessions on its new owner now.

        The lazy 404-triggered reopen in :meth:`_proxy_session` remains the
        correctness path; doing it eagerly at promotion just means the first
        post-failover command of each session does not pay the reopen round
        trip.
        """
        for _, cursor in self.sessions.for_dataset(dataset):
            with contextlib.suppress(Exception):
                await self._proxy(cursor.reopen_target(), dataset)

    # ---------------------------------------------------------------- summaries

    def health_summary(self) -> dict[str, object]:
        """The cluster's own health view (no worker round trips)."""
        return {
            "status": "draining" if self._draining else "ok",
            "workers": {
                worker_id: {
                    "healthy": handle.healthy,
                    "alive": handle.is_alive(),
                    "port": handle.port,
                    "generation": handle.generation,
                    "consecutive_failures": handle.consecutive_failures,
                    "circuit": self._breaker(worker_id).state,
                }
                for worker_id, handle in sorted(self._handles.items())
            },
            "assignment": self.assignment(),
            "replication": {
                "promoted": dict(sorted(self._promoted.items())),
                "replica_sets": {
                    dataset: list(replicas)
                    for dataset, replicas in sorted(self._replica_sets.items())
                },
                "watermarks": {
                    worker_id: status
                    for worker_id, status in sorted(self._replica_status.items())
                    if status
                },
            },
            "sessions": len(self.sessions),
            "inflight": self._inflight,
            "cache": self.cache.summary(),
            "slo": self._slo_health(),
        }

    def _slo_health(self) -> dict[str, object]:
        """Non-ok SLO alerts from the router's own engine (client view)."""
        engine = self.metrics.slo
        if engine is None:
            return {}
        return {
            "alerts": {
                op: engine.alert(op)
                for op in sorted(engine.ops())
                if engine.alert(op) != "ok"
            },
        }

    async def metrics_summary(self) -> dict[str, object]:
        """Aggregate worker ``/metrics`` plus the router's own counters."""
        summaries = []
        for worker_id in self.alive_workers():
            client = self._clients[worker_id]
            try:
                status, summary = await client.get_json(
                    "/metrics",
                    timeout_seconds=self.cluster_config.health_timeout_seconds,
                )
            except WorkerUnavailableError:
                continue
            if status == 200 and isinstance(summary, dict):
                summaries.append(summary)
        merged = merge_summaries(summaries)
        coalescer = merged.get("coalescer")
        if isinstance(coalescer, dict):
            # Ratios are not additive across workers; recompute from the
            # summed numerator/denominator.
            batches = coalescer.get("batches", 0)
            coalescer["ratio"] = (
                coalescer.get("requests", 0) / batches if batches else 0.0
            )
        router_summary = self.metrics.summary()
        merged["cluster"] = router_summary["cluster"]
        # The SLO view is the router's own: burn rates and budgets are
        # windowed ratios that cannot be summed across workers, and the
        # router is where clients experience latency and 503s anyway.
        merged["slo"] = router_summary.get("slo", {})
        router_latency = router_summary.get("latency")
        if isinstance(router_latency, dict) and router_latency:
            # The router's own histograms (proxy round trips, attempt counts)
            # merge into the fleet's under the same bucket-summing rules.
            _merge_into(merged.setdefault("latency", {}), router_latency)
        latency = merged.get("latency")
        if isinstance(latency, dict):
            # Percentiles are not additive either; recompute every op's
            # quantiles from the summed bucket counts (same move as the
            # coalescer ratio above).
            for state in latency.values():
                if isinstance(state, dict) and "buckets" in state:
                    state.update(percentiles_from_state(state))
        # Resource accounting (PR 10): fold the router's own footprint into
        # the merged ``memory`` section.  Byte gauges sum (the fleet total
        # now includes the router process and its result cache); the RSS
        # high-water mark rides the same ``peak*`` max rule as the workers'.
        memory = merged.setdefault("memory", {})
        if isinstance(memory, dict):
            router_memory = self._memory_contribution()
            _merge_into(memory, router_memory)
            memory["peak_rss_bytes"] = max(
                int(memory.get("peak_rss_bytes", 0) or 0),
                int(router_memory.get("rss_bytes", 0)),
            )
        merged["router"] = self.health_summary()
        return merged

    def _memory_contribution(self) -> dict[str, int]:
        """The router process's own attributed bytes (merge-ready keys)."""
        cache = self.cache.summary()
        return {
            "rss_bytes": obs.read_rss_bytes(),
            "cache_bytes": int(cache.get("bytes", 0)),
            "cache_stale_bytes": int(cache.get("stale_bytes", 0)),
        }

    async def _fanout_profile(self, params: dict[str, str]) -> tuple[int, bytes]:
        """Profile the whole fleet: collect on every alive worker, merge stacks.

        Every worker samples concurrently for the same window, so wall-clock
        cost is one collection, not one per worker.  Collapsed stacks merge
        by key-wise count summing (:func:`repro.obs.merge_collapsed` — the
        frame format omits line numbers precisely so stacks from different
        processes land on the same keys); per-worker sample counts stay
        visible so a worker drowning in its own work stands out.
        """
        try:
            seconds = float(params.get("seconds", "2"))
        except ValueError:
            seconds = 2.0
        seconds = min(max(seconds, 0.05), self.obs_config.profile_max_seconds)
        query: dict[str, str] = {"seconds": f"{seconds:g}"}
        if "hz" in params:
            with contextlib.suppress(ValueError):
                query["hz"] = str(int(params["hz"]))
        target = "/debug/profile?" + urlencode(query)
        timeout = seconds + 10.0

        async def collect(worker_id: str) -> tuple[str, dict | None]:
            client = self._clients[worker_id]
            try:
                status, decoded = await client.get_json(
                    target, timeout_seconds=timeout
                )
            except WorkerUnavailableError:
                return worker_id, None
            if status == 200 and isinstance(decoded, dict):
                return worker_id, decoded
            return worker_id, None

        results = await asyncio.gather(
            *(collect(worker_id) for worker_id in self.alive_workers())
        )
        profiles = {wid: decoded for wid, decoded in results if decoded is not None}
        if not profiles:
            return 503, _json_bytes({"error": "no worker produced a profile"})
        merged_stacks = obs.merge_collapsed(
            [dict(p.get("stacks", {})) for p in profiles.values()]
        )
        return 200, _json_bytes({
            "seconds": seconds,
            "hz": max(int(p.get("hz", 0)) for p in profiles.values()),
            "samples": sum(int(p.get("samples", 0)) for p in profiles.values()),
            "ticks": sum(int(p.get("ticks", 0)) for p in profiles.values()),
            "stacks": merged_stacks,
            "workers": {
                wid: {
                    "samples": int(p.get("samples", 0)),
                    "ticks": int(p.get("ticks", 0)),
                }
                for wid, p in sorted(profiles.items())
            },
        })

    async def _fanout_memory(self, params: dict[str, str]) -> tuple[int, bytes]:
        """Fleet memory debug: per-worker samples plus the router's own."""
        try:
            top_n = max(1, min(int(params.get("n", "10")), 100))
        except ValueError:
            top_n = 10
        target = f"/debug/memory?n={top_n}"

        async def collect(worker_id: str) -> tuple[str, dict | None]:
            client = self._clients[worker_id]
            try:
                status, decoded = await client.get_json(
                    target,
                    timeout_seconds=self.cluster_config.health_timeout_seconds,
                )
            except WorkerUnavailableError:
                return worker_id, None
            if status == 200 and isinstance(decoded, dict):
                return worker_id, decoded
            return worker_id, None

        results = await asyncio.gather(
            *(collect(worker_id) for worker_id in self.alive_workers())
        )
        workers = {wid: decoded for wid, decoded in results if decoded is not None}
        fleet: dict[str, object] = {}
        for decoded in workers.values():
            sample = decoded.get("sample")
            if isinstance(sample, dict):
                _merge_into(fleet, sample)
        router_memory = self._memory_contribution()
        _merge_into(fleet, router_memory)
        return 200, _json_bytes({
            "fleet": fleet,
            "router": router_memory,
            "workers": dict(sorted(workers.items())),
        })

    async def _grafted_trace(self, payload: dict) -> dict:
        """Attach worker-side span trees to the router's view of one trace.

        The router's ring only holds its own spans (dispatch, proxy attempts,
        backoff).  For every successful proxy span, the worker that answered
        holds the matching server-side trace — same id, because the worker
        client propagates the header — so fetch it and graft its root under
        the proxy span.  The result is the full request tree: queue wait,
        filter, JSON build and journal phases nested inside the hop that
        incurred them.  Best-effort: an unreachable worker (or an id already
        evicted from its ring) just leaves that hop ungrafted.
        """
        grafted = json.loads(json.dumps(payload))  # deep copy; ring stays pure
        trace_id = str(grafted.get("trace_id", ""))
        by_worker: dict[str, dict] = {}
        pending = [grafted.get("root") or {}]
        while pending:
            span = pending.pop()
            if (
                span.get("name") in ("proxy", "proxy.replica")
                and span.get("status") == "ok"
            ):
                worker_id = (span.get("annotations") or {}).get("worker")
                if worker_id:
                    # One graft per worker: retries reuse the trace id, so a
                    # worker's ring holds only its latest attempt anyway.
                    by_worker[str(worker_id)] = span
            pending.extend(span.get("children") or [])
        for worker_id, span in by_worker.items():
            client = self._clients.get(worker_id)
            if client is None:
                continue
            try:
                status, decoded = await client.get_json(
                    f"/debug/trace/{trace_id}",
                    timeout_seconds=self.cluster_config.health_timeout_seconds,
                )
            except WorkerUnavailableError:
                continue
            if (
                status == 200 and isinstance(decoded, dict)
                and isinstance(decoded.get("root"), dict)
            ):
                span.setdefault("children", []).append(decoded["root"])
        return grafted

    # --------------------------------------------------------------- lifecycle

    async def stop(self) -> None:
        """Graceful drain: stop admitting, flush in-flight, terminate the fleet."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        deadline = (
            asyncio.get_running_loop().time()
            + self.cluster_config.drain_timeout_seconds
        )
        while self._inflight > 0 and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        # In-flight work is done (or timed out): cancel lingering connection
        # handlers — idle keep-alive reads must not hold the drain hostage —
        # then let the server finish closing (bounded; on Python >= 3.12
        # wait_closed also waits for handlers, which have just been ended).
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), 1.0)
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
        for task in list(self._restart_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        for client in self._clients.values():
            client.close()
        loop = asyncio.get_running_loop()
        await asyncio.gather(*(
            loop.run_in_executor(None, handle.terminate)
            for handle in self._handles.values()
        ))

    async def __aenter__(self) -> "ClusterRouter":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()


def _json_bytes(body: object) -> bytes:
    return json.dumps(body).encode()


def _header_deadline_seconds(headers: dict[str, str] | None) -> float | None:
    """Seconds of budget a client granted via ``X-GVDB-Deadline-Ms``, if any."""
    raw = (headers or {}).get(DEADLINE_HEADER)
    if raw is None:
        return None
    try:
        return float(raw) / 1000.0
    except ValueError:
        return None


#: Session-response bodies past this size are not parsed for their cursor
#: (a payload-carrying pan can be megabytes; the directory then keeps the
#: previous replica, which costs a failed-over session at most one stale
#: viewport — not worth a megabyte JSON parse on the router's event loop).
_CURSOR_PARSE_LIMIT = 256 * 1024


def _extract_cursor(body: bytes) -> dict[str, object] | None:
    """Pull the ``cursor`` object out of a worker session response, if cheap."""
    if len(body) > _CURSOR_PARSE_LIMIT:
        return None
    try:
        decoded = json.loads(body)
    except ValueError:
        return None
    if not isinstance(decoded, dict):
        return None
    cursor = decoded.get("cursor")
    if cursor is None and isinstance(decoded.get("meta"), dict):
        cursor = decoded["meta"].get("cursor")
    return cursor if isinstance(cursor, dict) else None


async def _cancel_pending_tasks() -> None:
    """Cancel and await every other task on the current loop (teardown helper)."""
    tasks = [
        task for task in asyncio.all_tasks() if task is not asyncio.current_task()
    ]
    for task in tasks:
        task.cancel()
    await asyncio.gather(*tasks, return_exceptions=True)


def _cache_key(params: dict[str, str]) -> str:
    """Canonical cache key: sorted query items, so param order cannot split hits."""
    return urlencode(sorted(params.items()))


class ClusterRuntime:
    """A :class:`ClusterRouter` running on a background event-loop thread.

    The synchronous face of the cluster, mirroring
    :class:`~repro.service.frontend.ServiceRuntime`: the CLI, benchmarks and
    tests start a fleet with one call and talk plain blocking HTTP to
    ``http://host:port``.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(
        self,
        datasets: dict[str, str],
        config: GraphVizDBConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.router = ClusterRouter(datasets, config=config, metrics=metrics)
        self.host = host
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="graphvizdb-cluster", daemon=True
        )
        self._thread.start()
        try:
            self._call(self.router.start(host=host, port=port))
        except BaseException:
            self._shutdown_loop()
            raise

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    @property
    def port(self) -> int:
        """The router's bound public port."""
        return self.router.port

    def probe_workers(self) -> None:
        """Run one supervision pass now (deterministic tests)."""
        self._call(self.router.probe_workers())

    def metrics_summary(self) -> dict[str, object]:
        """Blocking aggregated :meth:`ClusterRouter.metrics_summary`."""
        return self._call(self.router.metrics_summary())

    def health_summary(self) -> dict[str, object]:
        """The router's :meth:`ClusterRouter.health_summary`."""
        return self.router.health_summary()

    def close(self) -> None:
        """Drain the cluster and tear the loop thread down (idempotent)."""
        if not self._thread.is_alive():
            return
        self._call(self.router.stop())
        self._shutdown_loop()

    def _shutdown_loop(self) -> None:
        with contextlib.suppress(Exception):
            # Cancel whatever is still parked on the loop (idle keep-alive
            # connections outlive the drained router) so nothing is destroyed
            # pending when the loop closes.
            self._call(_cancel_pending_tasks())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()

    def __enter__(self) -> "ClusterRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Retry and circuit-breaking primitives for the cluster router.

Two small, dependency-free pieces the router composes into its proxy path:

* :func:`jittered_backoff` — exponential backoff with decorrelating jitter
  between failover retries, so a burst of clients whose owner just died does
  not hammer the survivor in lockstep;
* :class:`CircuitBreaker` — a per-worker breaker over *connection-level*
  failures (:class:`~repro.errors.WorkerUnavailableError`).  After N
  consecutive failures the circuit opens and the worker leaves the routing
  ring entirely, so requests stop paying a connect-timeout tax to a host that
  keeps refusing.  The health loop keeps probing it regardless; the first
  successful probe is the half-open trial that closes the circuit.

The breaker is deliberately not reset when the supervisor respawns the
worker process: a worker that comes up and immediately starts failing again
must not be handed live traffic just because its PID is new.  Only an
observed success (probe or proxied request) closes the circuit.
"""

from __future__ import annotations

import random
import threading

__all__ = ["CircuitBreaker", "jittered_backoff"]


class CircuitBreaker:
    """Open after ``threshold`` consecutive failures; close on any success.

    ``threshold <= 0`` disables the breaker (it never opens).  Thread-safe,
    though the router drives it from one event loop.
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._open = False

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def state(self) -> str:
        """``"open"`` or ``"closed"`` (half-open is the probe's perspective)."""
        return "open" if self._open else "closed"

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def record_failure(self) -> bool:
        """Count one connection-level failure; ``True`` if this one opened
        the circuit (callers use the edge to count ``circuit_opens`` once)."""
        with self._lock:
            self._consecutive_failures += 1
            if (
                not self._open
                and self.threshold > 0
                and self._consecutive_failures >= self.threshold
            ):
                self._open = True
                return True
            return False

    def record_success(self) -> bool:
        """Count one success; ``True`` if it closed an open circuit."""
        with self._lock:
            was_open = self._open
            self._consecutive_failures = 0
            self._open = False
            return was_open


def jittered_backoff(
    attempt: int,
    base_seconds: float,
    max_seconds: float,
    jitter_fraction: float,
    rng: random.Random | None = None,
) -> float:
    """The wait before retry ``attempt`` (1-based): capped exponential + jitter.

    ``base * 2**(attempt-1)``, capped at ``max_seconds``, then extended by a
    uniform random fraction up to ``jitter_fraction`` — the decorrelation
    that keeps a fleet of synchronized failures from retrying as one wave.
    """
    if base_seconds <= 0:
        return 0.0
    delay = min(max_seconds, base_seconds * (2 ** max(0, attempt - 1)))
    if jitter_fraction > 0:
        delay *= 1.0 + (rng or random).uniform(0.0, jitter_fraction)
    return delay

"""Router-side session directory: replicated cursors for failover.

PR 4 kept only ``session id -> dataset`` in the router; the session's actual
state (layer, viewport) lived solely in its worker and died with it.  The
:class:`SessionDirectory` replicates the *cursor* of every proxied session —
dataset, abstraction layer, viewport centre and zoom, as reported in the
``cursor`` object workers attach to session responses — so that when the
owning worker crashes, the router can transparently reopen the session on
the dataset's next rendezvous owner (``/session/new`` with the original
public session id and the replicated cursor) and retry the command.  The
client observes one slightly slower request, not a 404-and-reset.

The directory is bookkeeping, not a source of truth: a cursor is whatever
the worker last reported, which is exactly what a reopened session needs to
resume where the user left off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from urllib.parse import urlencode

__all__ = ["SessionCursor", "SessionDirectory"]


@dataclass
class SessionCursor:
    """One session's replicated cursor."""

    session_id: str
    dataset: str
    layer: int = 0
    x: float | None = None
    y: float | None = None
    zoom: float | None = None
    last_used: float = field(default_factory=time.monotonic)

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def update(self, cursor: dict[str, object]) -> None:
        """Absorb a ``cursor`` object from a worker's session response."""
        try:
            if "layer" in cursor:
                self.layer = int(cursor["layer"])  # type: ignore[arg-type]
            if "x" in cursor and "y" in cursor:
                self.x = float(cursor["x"])  # type: ignore[arg-type]
                self.y = float(cursor["y"])  # type: ignore[arg-type]
            if "zoom" in cursor:
                self.zoom = float(cursor["zoom"])  # type: ignore[arg-type]
        except (TypeError, ValueError):
            # A malformed cursor must never fail the request it rode on; the
            # directory simply keeps the previous replica.
            pass

    def reopen_target(self) -> str:
        """The ``/session/new`` request that recreates this session in place."""
        params: dict[str, str] = {
            "dataset": self.dataset,
            "session_id": self.session_id,
            "layer": str(self.layer),
        }
        if self.x is not None and self.y is not None:
            params["x"] = repr(self.x)
            params["y"] = repr(self.y)
        if self.zoom is not None:
            params["zoom"] = repr(self.zoom)
        return "/session/new?" + urlencode(params)


class SessionDirectory:
    """All replicated session cursors, keyed by public session id.

    Single-threaded by design: every access happens on the router's event
    loop.  Entries leave on explicit close, on an unrecoverable worker 404,
    or via :meth:`expire_idle` (mirroring the workers' own idle expiry, so
    abandoned browser sessions cannot grow the directory forever).
    """

    def __init__(self) -> None:
        self._cursors: dict[str, SessionCursor] = {}

    def __len__(self) -> int:
        return len(self._cursors)

    def get(self, session_id: str) -> SessionCursor | None:
        """The session's cursor, or ``None`` when unknown."""
        return self._cursors.get(session_id)

    def record(self, session_id: str, dataset: str) -> SessionCursor:
        """Register a session observed through ``/session/new`` (idempotent)."""
        cursor = self._cursors.get(session_id)
        if cursor is None or cursor.dataset != dataset:
            cursor = SessionCursor(session_id=session_id, dataset=dataset)
            self._cursors[session_id] = cursor
        cursor.touch()
        return cursor

    def drop(self, session_id: str) -> None:
        """Forget a session (closed, or confirmed gone)."""
        self._cursors.pop(session_id, None)

    def for_dataset(self, dataset: str) -> list[tuple[str, SessionCursor]]:
        """Every live ``(session_id, cursor)`` of one dataset.

        The promotion path uses this to eagerly rebuild a dead owner's
        sessions on the promoted replica, instead of waiting for each
        session's next command to 404 its way through the lazy reopen.
        """
        return [
            (session_id, cursor)
            for session_id, cursor in list(self._cursors.items())
            if cursor.dataset == dataset
        ]

    def expire_idle(self, idle_seconds: float) -> list[str]:
        """Drop cursors idle past ``idle_seconds``; returns the expired ids."""
        if idle_seconds <= 0:
            return []
        now = time.monotonic()
        expired = [
            session_id
            for session_id, cursor in list(self._cursors.items())
            if now - cursor.last_used >= idle_seconds
        ]
        for session_id in expired:
            self._cursors.pop(session_id, None)
        return expired

"""Rendezvous (highest-random-weight) dataset-to-worker assignment.

The router shards *datasets*, not requests: every request for one dataset goes
to the same worker, so that worker's pool, row caches and JSON fragment caches
stay hot for it.  Rendezvous hashing gives that mapping three properties a
supervised fleet needs:

* **No shared state** — the owner is a pure function of ``(dataset, alive
  workers)``; router restarts and concurrent lookups need no coordination.
* **Minimal disruption** — when a worker dies, only *its* datasets move (each
  to its second-highest scorer); every other assignment is untouched.  When
  the worker comes back, exactly those datasets move home again.
* **Balance** — scores are independent uniform hashes, so datasets spread
  evenly across workers in expectation.

Scores hash ``worker_id || dataset`` with blake2b; ties (astronomically rare)
break on the worker id so the choice stays deterministic everywhere.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

__all__ = [
    "rendezvous_score",
    "rendezvous_owner",
    "rendezvous_ranking",
    "rendezvous_replicas",
]


def rendezvous_score(dataset: str, worker_id: str) -> int:
    """The HRW score of ``worker_id`` for ``dataset`` (64-bit uniform hash)."""
    digest = hashlib.blake2b(
        worker_id.encode() + b"\x00" + dataset.encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_owner(dataset: str, worker_ids: Iterable[str]) -> str | None:
    """The owning worker for ``dataset`` among ``worker_ids`` (``None`` if empty)."""
    best: str | None = None
    best_score = -1
    for worker_id in worker_ids:
        score = rendezvous_score(dataset, worker_id)
        if score > best_score or (score == best_score and worker_id > (best or "")):
            best, best_score = worker_id, score
    return best


def rendezvous_ranking(dataset: str, worker_ids: Sequence[str]) -> list[str]:
    """Workers ordered by descending score — the dataset's failover order.

    ``ranking[0]`` is the owner; if it dies, ``ranking[1]`` takes over, which
    is exactly what :func:`rendezvous_owner` over the surviving set returns.
    """
    return sorted(
        worker_ids,
        key=lambda worker_id: (rendezvous_score(dataset, worker_id), worker_id),
        reverse=True,
    )


def rendezvous_replicas(
    dataset: str, worker_ids: Sequence[str], count: int
) -> list[str]:
    """The ``count`` workers ranked directly below the owner.

    These are the dataset's replica set: the workers rendezvous hashing would
    promote to owner (in order) if the fleet shrank, so streaming the journal
    to them pre-warms exactly the machines failover lands on.
    """
    if count <= 0:
        return []
    return rendezvous_ranking(dataset, worker_ids)[1:1 + count]

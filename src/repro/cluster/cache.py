"""Cross-request window-result cache for the cluster router.

The PR 3 coalescer dedups window queries that are in flight *concurrently*;
this cache closes the temporal gap: a window anyone queried recently is served
from the router without touching a worker at all — the common "many users
crowd the same popular region over minutes" pattern costs one payload build
cluster-wide instead of one per request.

Entries hold the worker's verbatim response bytes, so a hit is a dict lookup
plus a socket write.  Invalidation is edit-driven: every worker ``/health``
response carries a monotonic per-dataset edit counter
(:meth:`~repro.storage.database.GraphVizDatabase.edit_counter`); the router
feeds those snapshots to :meth:`WindowResultCache.observe_edit_counters`, and
*any* change (including the reset that comes with a pool eviction) drops the
dataset's cached windows.  Bounded both by entry count and by payload bytes —
window payloads vary by orders of magnitude with zoom level, so a pure entry
cap would let a few layer-0 megawindows dominate memory.

Since PR 9 the cache also holds ``/keyword`` and ``/nearest`` responses
(keys are canonical targets prefixed with the request path, so the op
classes can never collide); the live ``keyword_repeats``/``nearest_repeats``
counters measured the earnable hit rate first.  Invalidation is identical —
entries carry their dataset, so the same edit-counter machinery covers all
three op classes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..core.monitoring import ServiceMetrics

__all__ = ["CachedResponse", "WindowResultCache"]


@dataclass
class CachedResponse:
    """One cached worker response: the bytes on the wire plus bookkeeping."""

    key: str
    dataset: str
    status: int
    body: bytes
    hits: int = 0


class WindowResultCache:
    """LRU cache of window-query responses keyed by canonical request target.

    Parameters
    ----------
    capacity:
        Maximum number of cached responses (``0`` disables the cache: every
        ``get`` misses and every ``put`` is dropped).
    max_bytes:
        Budget over the cached body bytes; exceeding it evicts least recently
        used entries.
    metrics:
        Optional shared :class:`ServiceMetrics` receiving hit / miss /
        invalidation counts.
    stale_capacity:
        Entries kept in the *stale archive*: responses leaving the live cache
        (edit-driven invalidation or LRU eviction) are retained here rather
        than discarded, so the router can serve a last-known-good window —
        explicitly marked stale — while a dataset has no healthy owner at
        all.  ``0`` disables archiving.
    stale_max_bytes:
        Byte budget over the archived bodies.  The entry cap alone is not a
        memory bound — archived windows are exactly the big, popular,
        long-lived responses, so a few hundred layer-0 megawindows could
        dwarf the live cache.  Exceeding the budget evicts the oldest
        archived entries; ``0`` means unbounded (entries-only).
    """

    def __init__(
        self,
        capacity: int = 1024,
        max_bytes: int = 64 * 1024 * 1024,
        metrics: ServiceMetrics | None = None,
        stale_capacity: int = 256,
        stale_max_bytes: int = 0,
    ) -> None:
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.metrics = metrics
        self.stale_capacity = stale_capacity
        self.stale_max_bytes = stale_max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, CachedResponse] = OrderedDict()
        self._stale: OrderedDict[str, CachedResponse] = OrderedDict()
        self._total_bytes = 0
        self._stale_bytes = 0
        self._dataset_counters: dict[str, int] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Bytes currently held in cached response bodies."""
        with self._lock:
            return self._total_bytes

    # ------------------------------------------------------------------ lookup

    def get(self, key: str, op: str = "window") -> CachedResponse | None:
        """The cached response for ``key``, or ``None`` (counting hit/miss).

        ``op`` attributes the hit to its operation class — windows, keyword
        searches and kNN probes share this cache (PR 9) but report separate
        hit counters, since their hit rates justify caching independently.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if self.metrics is not None:
                    self.metrics.record_cache_miss(op)
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
        if self.metrics is not None:
            self.metrics.record_cache_hit(op)
        return entry

    def counter_snapshot(self, dataset: str) -> int | None:
        """The dataset's last observed edit counter (``None`` before any probe).

        Capture it *before* dispatching the query whose response will be
        cached, and hand it back to :meth:`put` — closing the race where an
        edit and its invalidation land while the query is in flight, which
        would otherwise let the pre-edit response enter the cache *after*
        the invalidation and be served stale until the next edit.
        """
        with self._lock:
            return self._dataset_counters.get(dataset)

    def put(
        self,
        key: str,
        dataset: str,
        status: int,
        body: bytes,
        counter: int | None = None,
    ) -> None:
        """Cache one response, evicting LRU entries past either budget.

        ``counter`` is the :meth:`counter_snapshot` taken before the response
        was computed; if the dataset's observed counter has moved since, the
        response predates an invalidation and is dropped instead of cached.
        """
        if self.capacity <= 0:
            return
        with self._lock:
            if self._dataset_counters.get(dataset) != counter:
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._total_bytes -= len(old.body)
            self._entries[key] = CachedResponse(
                key=key, dataset=dataset, status=status, body=body
            )
            # A fresh response supersedes whatever the archive held.
            superseded = self._stale.pop(key, None)
            if superseded is not None:
                self._stale_bytes -= len(superseded.body)
            self._total_bytes += len(body)
            while len(self._entries) > self.capacity or (
                self.max_bytes and self._total_bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                _, evicted = self._entries.popitem(last=False)
                self._total_bytes -= len(evicted.body)
                self._archive_locked(evicted)

    def _archive_locked(self, entry: CachedResponse) -> None:
        """Move a response leaving the live cache into the stale archive.

        The archive is bounded by entries *and* bytes; breaching either
        budget drops the oldest archived responses (but never the one just
        archived — a single over-budget megawindow still beats an empty
        archive during an incident).
        """
        if self.stale_capacity <= 0 or entry.status != 200:
            return
        previous = self._stale.pop(entry.key, None)
        if previous is not None:
            self._stale_bytes -= len(previous.body)
        self._stale[entry.key] = entry
        self._stale_bytes += len(entry.body)
        while len(self._stale) > self.stale_capacity or (
            self.stale_max_bytes
            and self._stale_bytes > self.stale_max_bytes
            and len(self._stale) > 1
        ):
            _, dropped = self._stale.popitem(last=False)
            self._stale_bytes -= len(dropped.body)

    def get_stale(self, key: str) -> CachedResponse | None:
        """The archived (known-stale) response for ``key``, if any.

        The degraded-read path: only consulted when a dataset has no healthy
        owner, and always served with an explicit staleness header — the
        archive never silently substitutes for a live response.
        """
        with self._lock:
            entry = self._stale.get(key)
            if entry is not None:
                self._stale.move_to_end(key)
            return entry

    # -------------------------------------------------------------- invalidation

    def invalidate_dataset(self, dataset: str) -> int:
        """Drop every cached response of ``dataset``; returns how many."""
        with self._lock:
            doomed = [
                key for key, entry in self._entries.items()
                if entry.dataset == dataset
            ]
            for key in doomed:
                entry = self._entries.pop(key)
                self._total_bytes -= len(entry.body)
                self._archive_locked(entry)
        if doomed and self.metrics is not None:
            self.metrics.record_cache_invalidation(len(doomed))
        return len(doomed)

    def note_write(self, dataset: str, counter: int | None = None) -> int:
        """Eagerly invalidate after a write the router itself proxied.

        Health probes deliver edit counters only every
        ``health_interval_seconds`` — a read-after-write inside that window
        would be served a stale cached response.  The router therefore calls
        this the moment a worker acknowledges a ``POST /edit/*``: the
        dataset's entries drop *now*, and ``counter`` (the worker's post-edit
        counter, carried in the acknowledgement) becomes the new baseline so
        the next health probe does not re-invalidate what this write already
        handled.  Unlike :meth:`observe_edit_counters`, the entries drop even
        when no counter was ever observed before (a write can precede the
        first probe).  Returns the number of invalidated entries.
        """
        with self._lock:
            if counter is not None:
                self._dataset_counters[dataset] = counter
            else:
                # No authoritative value: advance the baseline so in-flight
                # put()s with pre-write snapshots are rejected.
                self._dataset_counters[dataset] = (
                    self._dataset_counters.get(dataset) or 0
                ) + 1
        return self.invalidate_dataset(dataset)

    def observe_edit_counters(self, counters: dict[str, int]) -> int:
        """Compare a health snapshot's edit counters against the last one seen.

        Any dataset whose counter *differs* (not just grew — a pool eviction
        resets the worker-side counter, and the re-opened state differs from
        what post-edit cached responses captured) has its entries dropped.
        Returns the number of invalidated entries.
        """
        dropped = 0
        for dataset, counter in counters.items():
            with self._lock:
                known = self._dataset_counters.get(dataset)
                self._dataset_counters[dataset] = counter
            if known is not None and known != counter:
                dropped += self.invalidate_dataset(dataset)
        return dropped

    def clear(self) -> None:
        """Drop every entry, stale archive included (not counted as invalidations)."""
        with self._lock:
            self._entries.clear()
            self._stale.clear()
            self._total_bytes = 0
            self._stale_bytes = 0

    # ------------------------------------------------------------------ summary

    def summary(self) -> dict[str, object]:
        """JSON-serialisable cache state for the cluster ``/health`` view."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._total_bytes,
                "capacity": self.capacity,
                "max_bytes": self.max_bytes,
                "stale_entries": len(self._stale),
                "stale_bytes": self._stale_bytes,
                "stale_max_bytes": self.stale_max_bytes,
            }

"""Journal-streaming read replicas with bounded staleness (worker side).

PR 5's write-ahead journal is a checksummed, sequence-numbered, replayable op
log — i.e. a replication log the cluster gets for free.  This module is the
worker-side half of PR 7's replication story:

* a :class:`ReplicationManager` lives in every worker process (created by
  ``_worker_serve``, reachable through the worker's HTTP control endpoints
  ``POST /replicate/{start,stop,promote}``);
* for each dataset the router assigns it, the manager runs one
  :class:`_Subscription` thread that polls the **owner worker's**
  ``GET /journal/tail`` feed (bounded long-poll), verifies each record's
  blake2b digest, appends the verbatim frame to a **local journal copy**
  (``<db>.journal.<worker_id>``), re-applies the record through the same
  ops-registry path journal replay uses, and advances an ``applied_seq``
  watermark;
* on **promotion** (the router picked this worker as the most-caught-up
  replica after the owner died) the subscription stops and drains: any
  record sitting in the local copy past the watermark — received but not yet
  applied when the feed stopped — is applied before the worker starts
  serving reads *and writes* for the dataset.

The watermark protocol is what keeps re-application exactly-once: a record
is applied iff ``seq == applied_seq + 1``.  Records at or below the
watermark are duplicates (already applied live, or covered by the pool's
replay-on-open, which records how far its snapshot reached in
``database.journal_replayed_seq``); a gap above it means the subscriber
missed records (the owner checkpointed and truncated past our cursor, or
the pool evicted our copy) and triggers a **resync** — reopen the dataset
through the pool (SQLite + journal replay) and restart the cursor from the
fresh watermark.

Failure handling: feed polls that fail (owner dead, connection refused,
injected ``replication.feed`` faults) back off with decorrelating jitter and
keep retrying until the router repoints or stops the subscription.  The
subscription never guesses about ownership — assignment is entirely the
router's call.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import threading
import time
from pathlib import Path

from ..errors import (
    JournalError,
    LayerNotFoundError,
    QueryError,
    UnknownEditError,
)
from ..faults import FaultInjected, fault_check
from ..writes.journal import (
    encode_journal_frame,
    journal_path_for,
    read_journal_records,
)
from .resilience import jittered_backoff

__all__ = [
    "ReplicaJournalCopy",
    "ReplicationManager",
    "apply_feed_record",
    "replica_journal_path",
]

#: Records requested per feed poll.
_FEED_BATCH = 256

#: Cap on the failure backoff between polls of an unreachable owner.
_FAILURE_BACKOFF_MAX_SECONDS = 1.0


def replica_journal_path(sqlite_path: str | Path, worker_id: str) -> Path:
    """This worker's local journal copy for one dataset.

    Distinct from the owner's ``<db>.journal`` — on a shared filesystem the
    copy must never clobber the authoritative journal, and in a
    shared-nothing deployment it is the only local durability the replica
    has between its snapshot and the feed cursor.
    """
    base = journal_path_for(sqlite_path)
    return base.with_name(base.name + f".{worker_id}")


def apply_feed_record(database, op: str, args: dict) -> bool:
    """Apply one streamed record through the ops registry (replay semantics).

    Returns ``False`` for records whose original apply failed — the journal
    is written before validation, so a record that re-fails here failed
    identically on the owner, and skipping it reproduces the owner's state
    error-for-error (the same contract as
    :func:`~repro.writes.journal.replay_journal`).
    """
    from ..core.editing import GraphEditor
    from ..writes.ops import apply_edit

    args = dict(args)
    layer = int(args.pop("layer", 0))
    args.pop("idem", None)
    editor = GraphEditor(database, layer=layer)
    try:
        apply_edit(editor, op, args)
    except (QueryError, LayerNotFoundError, UnknownEditError,
            KeyError, ValueError, TypeError):
        return False
    return True


class ReplicaJournalCopy:
    """Append-only local copy of the owner's journal, one frame at a time.

    Frames are re-encoded with the canonical journal encoding and verified
    against the digest the feed shipped before they touch the file, so the
    copy is byte-compatible with a real journal — :func:`read_journal_records`
    and ``repro journal verify`` work on it unchanged.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None
        self.last_seq = 0

    def reset(self) -> None:
        """Start a fresh copy (new subscription epoch): truncate to empty."""
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "wb"):
            pass
        self.last_seq = 0

    def append(self, seq: int, op: str, args: dict, digest_hex: str) -> None:
        """Verify one feed record against its digest and append its frame."""
        frame = encode_journal_frame(seq, op, args)
        # frame = [length][digest][payload]; offset 4:20 is the digest.
        if digest_hex and frame[4:20].hex() != digest_hex:
            raise JournalError(
                f"feed record seq {seq} failed digest verification "
                f"(re-encoded {frame[4:20].hex()}, owner sent {digest_hex})"
            )
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        self._handle.write(frame)
        self._handle.flush()
        self.last_seq = seq

    def records(self):
        """Decode the copy (for the promotion drain)."""
        self.close()
        return read_journal_records(self.path)

    def close(self) -> None:
        if self._handle is not None:
            with contextlib.suppress(OSError):
                self._handle.flush()
                self._handle.close()
            self._handle = None


class _Subscription:
    """One dataset's feed subscriber: poll, verify, copy, apply, advance."""

    def __init__(
        self,
        manager: "ReplicationManager",
        dataset: str,
        sqlite_path: str,
        owner_id: str,
        owner_host: str,
        owner_port: int,
    ) -> None:
        self.manager = manager
        self.dataset = dataset
        self.sqlite_path = sqlite_path
        self.owner_id = owner_id
        self.owner_host = owner_host
        self.owner_port = owner_port
        self.copy = ReplicaJournalCopy(
            replica_journal_path(sqlite_path, manager.worker_id)
        )
        self.applied_seq = 0
        self.feed_last_seq = 0
        self.polls = 0
        self.records_applied = 0
        self.resyncs = 0
        self.last_error: str | None = None
        self._database = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"gvdb-replica-{manager.worker_id}-{dataset}",
        )
        self._connection: http.client.HTTPConnection | None = None

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._thread.start()

    def stop(self, join_seconds: float = 2.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=join_seconds)
        self._close_connection()
        self.copy.close()

    @property
    def lag(self) -> int:
        """Records the watermark trails the last observed journal head by."""
        return max(0, self.feed_last_seq - self.applied_seq)

    def status(self) -> dict[str, object]:
        return {
            "owner": self.owner_id,
            "applied_seq": self.applied_seq,
            "feed_last_seq": self.feed_last_seq,
            "lag": self.lag,
            "polls": self.polls,
            "records_applied": self.records_applied,
            "resyncs": self.resyncs,
            "last_error": self.last_error,
            "running": self._thread.is_alive() and not self._stop.is_set(),
        }

    # --------------------------------------------------------------- main loop

    def _run(self) -> None:
        config = self.manager.cluster_config
        try:
            self._adopt()
        except Exception as exc:  # the pool open failed; retry inside the loop
            self.last_error = str(exc)
        failures = 0
        while not self._stop.is_set():
            try:
                if self._database is None:
                    self._adopt()
                fault_check(
                    "replication.feed", dataset=self.dataset,
                    owner=self.owner_id, target="/journal/tail",
                )
                frame = self._poll()
                progressed = self._apply_frame(frame)
                failures = 0
                self.last_error = None
            except (OSError, ValueError, JournalError, FaultInjected) as exc:
                # Owner unreachable, malformed frame, digest mismatch, or an
                # injected feed fault: back off (escalating, jittered) and
                # retry — the router will repoint us if the owner is gone.
                self.last_error = str(exc)
                self._close_connection()
                failures += 1
                self._sleep(jittered_backoff(
                    min(failures, 6),
                    config.replication_poll_seconds,
                    _FAILURE_BACKOFF_MAX_SECONDS,
                    config.replication_poll_jitter,
                ))
                continue
            if not progressed:
                # Idle feed: jittered poll interval, so replicas of many
                # datasets do not thunder-herd their owners on one tick.
                self._sleep(jittered_backoff(
                    1,
                    config.replication_poll_seconds,
                    config.replication_poll_seconds * 2,
                    config.replication_poll_jitter,
                ))

    def _sleep(self, seconds: float) -> None:
        self._stop.wait(timeout=seconds)

    # ------------------------------------------------------------ feed plumbing

    def _poll(self) -> dict:
        """One bounded long-poll of the owner's journal-tail feed."""
        wait_ms = int(self.manager.cluster_config.replication_poll_seconds * 1000)
        target = (
            f"/journal/tail?dataset={self.dataset}&from_seq={self.applied_seq}"
            f"&max_records={_FEED_BATCH}&wait_ms={wait_ms}"
        )
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.owner_host, self.owner_port,
                timeout=max(2.0, wait_ms / 1000.0 + 2.0),
            )
        poll_started = time.perf_counter()
        self._connection.request("GET", target)
        response = self._connection.getresponse()
        body = response.read()
        self.polls += 1
        self.manager.metrics.record_replication_poll()
        # Long-poll round-trip time doubles as a replica-lag health signal:
        # a drifting p99 here shows a saturated owner before lag records do.
        self.manager.metrics.record_latency(
            "replication.poll", time.perf_counter() - poll_started
        )
        if response.status != 200:
            raise ValueError(
                f"journal tail feed returned {response.status}: {body[:200]!r}"
            )
        frame = json.loads(body)
        if not isinstance(frame, dict):
            raise ValueError("journal tail feed returned a non-object frame")
        return frame

    def _close_connection(self) -> None:
        if self._connection is not None:
            with contextlib.suppress(Exception):
                self._connection.close()
            self._connection = None

    # ------------------------------------------------------------- application

    def _adopt(self) -> None:
        """(Re)open the pooled dataset and restart the cursor from its replay.

        The pool's open replays the dataset's journal and records how far the
        snapshot reached (``journal_replayed_seq``); everything at or below
        that watermark is already in the in-memory state, so the feed cursor
        starts exactly one past it.
        """
        entry = self.manager.pool.get(self.sqlite_path)
        self._database = entry.database
        self.applied_seq = int(getattr(entry.database, "journal_replayed_seq", 0))
        self.feed_last_seq = max(self.feed_last_seq, self.applied_seq)
        self.copy.reset()

    def _apply_frame(self, frame: dict) -> bool:
        """Apply one feed frame; returns ``True`` when the cursor moved."""
        current = self.manager.pool.peek(self.sqlite_path)
        if current is None or current.database is not self._database:
            # Our copy was evicted (and possibly reopened fresh): the object
            # we were applying to is gone.  Resync from the pool — its replay
            # already covers everything we had applied.
            self._resync()
            return True
        records = frame.get("records") or []
        applied = 0
        for entry in records:
            seq = int(entry.get("seq", 0))
            if seq <= self.applied_seq:
                continue  # duplicate: already applied (or covered by replay)
            if seq > self.applied_seq + 1:
                # Gap: the owner checkpointed and truncated past our cursor.
                # The feed cannot fill it; resync from the SQLite snapshot.
                self._resync()
                return True
            self.copy.append(
                seq, str(entry.get("op", "")), dict(entry.get("args") or {}),
                str(entry.get("digest", "")),
            )
            apply_feed_record(
                self._database, str(entry.get("op", "")),
                dict(entry.get("args") or {}),
            )
            self.applied_seq = seq
            applied += 1
        self.feed_last_seq = max(
            int(frame.get("last_seq", 0)), self.applied_seq
        )
        if applied:
            self.records_applied += applied
            self.manager.metrics.record_replication_applied(applied)
        return applied > 0

    def _resync(self) -> None:
        self.resyncs += 1
        self.manager.metrics.record_replication_resync()
        self.manager.pool.evict(self.sqlite_path)
        self._database = None
        self._adopt()

    # --------------------------------------------------------------- promotion

    def drain(self) -> tuple[int, int]:
        """Apply every record the new owner must have (promotion final step).

        Two sources, in order: the **local journal copy** first (the records
        this replica streamed — normally already applied in lockstep, but a
        subscription stopped between the copy append and the apply leaves a
        straggler), then the **authoritative journal** for anything past the
        watermark the feed never delivered (records acked by the dead owner
        after our last poll).  Returns ``(drained, caught_up)`` counts.
        """
        entry = self.manager.pool.get(self.sqlite_path)
        if entry.database is not self._database:
            # A fresh open replayed the authoritative journal, which is a
            # superset of our copy: adopt its watermark, nothing to drain.
            self._database = entry.database
            self.applied_seq = max(
                self.applied_seq,
                int(getattr(entry.database, "journal_replayed_seq", 0)),
            )
            return 0, 0
        drained = 0
        try:
            copied = self.copy.records()
        except JournalError:
            # A torn or corrupt local copy cannot block promotion — the
            # authoritative journal below covers everything it held.
            copied = []
        for record in copied:
            if record.seq <= self.applied_seq:
                continue
            apply_feed_record(self._database, record.op, record.args)
            self.applied_seq = record.seq
            drained += 1
        caught_up = 0
        authoritative = journal_path_for(self.sqlite_path)
        if authoritative.exists():
            for record in read_journal_records(authoritative):
                if record.seq <= self.applied_seq:
                    continue
                apply_feed_record(self._database, record.op, record.args)
                self.applied_seq = record.seq
                caught_up += 1
        self.feed_last_seq = max(self.feed_last_seq, self.applied_seq)
        return drained, caught_up


class ReplicationManager:
    """All of one worker's replica subscriptions, driven by router control calls."""

    def __init__(self, service, worker_id: str) -> None:
        self.service = service
        self.worker_id = worker_id
        self._lock = threading.Lock()
        self._subscriptions: dict[str, _Subscription] = {}

    @property
    def pool(self):
        return self.service.pool

    @property
    def metrics(self):
        return self.service.metrics

    @property
    def cluster_config(self):
        return self.service.config.cluster

    # ----------------------------------------------------------- control plane

    def start(self, dataset: str, owner_id: str, owner_host: str,
              owner_port: int) -> dict[str, object]:
        """Subscribe ``dataset`` to the owner's feed (idempotent per owner).

        A start naming the same owner endpoint is a no-op acknowledgement; a
        different owner (failover, restart with a new port) replaces the
        subscription — the fresh one re-adopts the pooled copy and restarts
        its cursor from the replay watermark.
        """
        sqlite_path = self.service.sqlite_path(dataset)
        if sqlite_path is None:
            raise ValueError(f"dataset {dataset!r} has no SQLite backing file")
        if not self.service.config.write.journal_enabled:
            raise ValueError("replication needs the write-ahead journal enabled")
        with self._lock:
            existing = self._subscriptions.get(dataset)
            if existing is not None:
                same_owner = (
                    existing.owner_id == owner_id
                    and existing.owner_host == owner_host
                    and existing.owner_port == owner_port
                    and existing._thread.is_alive()
                )
                if same_owner:
                    return {"dataset": dataset, **existing.status()}
                existing.stop()
            subscription = _Subscription(
                self, dataset, sqlite_path, owner_id, owner_host, owner_port
            )
            self._subscriptions[dataset] = subscription
            subscription.start()
            return {"dataset": dataset, **subscription.status()}

    def stop(self, dataset: str) -> dict[str, object]:
        """Unsubscribe ``dataset`` (this worker is no longer its replica)."""
        with self._lock:
            subscription = self._subscriptions.pop(dataset, None)
        if subscription is None:
            return {"dataset": dataset, "stopped": False}
        subscription.stop()
        return {"dataset": dataset, "stopped": True, **subscription.status()}

    def promote(self, dataset: str) -> dict[str, object]:
        """Stop the feed and drain the local copy: this worker becomes owner.

        After this returns, the dataset's pooled copy holds every record the
        subscription ever received, and the write path (which opens the
        authoritative journal and seeds idempotency keys from it) can serve
        writes with the exactly-once contract intact.
        """
        with self._lock:
            subscription = self._subscriptions.pop(dataset, None)
        if subscription is None:
            # Never subscribed (or already promoted): the ordinary cold-open
            # failover path — pool replay — covers it.  Report the watermark
            # the pool would start from.
            sqlite_path = self.service.sqlite_path(dataset)
            applied = 0
            if sqlite_path is not None:
                entry = self.pool.get(sqlite_path)
                applied = int(getattr(entry.database, "journal_replayed_seq", 0))
            self.metrics.record_promotion()
            return {"dataset": dataset, "applied_seq": applied,
                    "drained": 0, "caught_up": 0, "was_replica": False}
        subscription.stop()
        drained, caught_up = subscription.drain()
        self.metrics.record_promotion()
        return {
            "dataset": dataset,
            "applied_seq": subscription.applied_seq,
            "drained": drained,
            "caught_up": caught_up,
            "was_replica": True,
        }

    # ------------------------------------------------------------- observation

    def status(self) -> dict[str, dict[str, object]]:
        """Per-dataset subscription status (rides on worker ``/health``)."""
        with self._lock:
            return {
                dataset: subscription.status()
                for dataset, subscription in sorted(self._subscriptions.items())
            }

    def stop_all(self) -> None:
        with self._lock:
            subscriptions = list(self._subscriptions.values())
            self._subscriptions.clear()
        for subscription in subscriptions:
            subscription.stop(join_seconds=0.5)

"""Worker processes of the cluster: spawn, port handshake, graceful drain.

Each worker is a fresh OS process hosting a full PR 3 serving stack — a
:class:`~repro.service.frontend.GraphVizDBService` (thread pool, admission
control, coalescer, dataset pool, background maintenance) behind the
:func:`~repro.service.http.serve_http` endpoint on a loopback port the OS
picks.  Every worker gets *all* dataset paths attached: attachment is lazy
(the pool opens a SQLite file on first request), so this costs nothing until
a request arrives — and it is what makes failover instant, because any
surviving worker can serve any dataset the moment the router re-routes to it.

Workers are started with the ``spawn`` method: the router process runs an
event loop and threads, which a ``fork`` child would inherit in an undefined
state.  The port travels back over a :func:`multiprocessing.Pipe`; SIGTERM
triggers a graceful drain (stop accepting, flush in-flight work, exit 0), and
SIGINT is ignored so a Ctrl-C aimed at the router's terminal group cannot
kill workers before the router has drained them.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from dataclasses import dataclass, field

from ..config import GraphVizDBConfig
from ..errors import ClusterError

__all__ = ["WorkerSpec", "WorkerHandle"]

#: How long a freshly spawned worker may take to report its port (covers the
#: child interpreter start + package import on a loaded machine).
_SPAWN_TIMEOUT_SECONDS = 60.0


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs, in picklable form."""

    worker_id: str
    datasets: tuple[tuple[str, str], ...]  # (name, sqlite path) pairs
    config: GraphVizDBConfig
    host: str = "127.0.0.1"


def _worker_main(spec: WorkerSpec, port_conn) -> None:
    """Entry point of the worker process (module-level for ``spawn``)."""
    import asyncio

    from .. import faults

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Fault injection (tests / chaos harness): the worker declares who it is
    # so worker-scoped rules target the right process, and installs the
    # cluster-wide plan — spawn children do not inherit the parent's
    # in-process registry, only its config (and the REPRO_FAULTS env var,
    # which the import of repro.faults already honoured).
    faults.set_identity(spec.worker_id)
    if spec.config.cluster.fault_plan:
        faults.install(faults.FaultPlan.from_json(spec.config.cluster.fault_plan))
    asyncio.run(_worker_serve(spec, port_conn))


async def _worker_serve(spec: WorkerSpec, port_conn) -> None:
    import asyncio

    from ..service.frontend import GraphVizDBService
    from ..service.http import serve_http
    from .replication import ReplicationManager

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    loop.add_signal_handler(signal.SIGTERM, stop.set)
    service = GraphVizDBService(spec.config)
    # Label this process's Prometheus exposition with its fleet identity.
    service.worker_id = spec.worker_id
    for name, path in spec.datasets:
        service.attach_sqlite(name, path)
    # Every worker can act as a read replica: the router's reconcile loop
    # decides which datasets this worker actually subscribes to (and when to
    # promote it).  The service stops the manager's feed threads on drain.
    service.replication = ReplicationManager(service, spec.worker_id)
    async with service:
        server = await serve_http(service, host=spec.host, port=0)
        port_conn.send(server.sockets[0].getsockname()[1])
        port_conn.close()
        await stop.wait()
        # Drain: refuse new connections first; the service context exit then
        # flushes the coalescer and waits out the worker thread pool, so every
        # admitted request completes before the process exits.
        server.close()
        await server.wait_closed()


@dataclass
class WorkerHandle:
    """Router-side view of one worker process.

    ``healthy`` is the routing flag: the rendezvous ring only considers
    healthy workers.  It flips off the instant a proxy or health probe fails
    (or the OS process dies) and back on when the supervisor's replacement
    reports its port.  ``generation`` counts spawns under this worker id.
    """

    spec: WorkerSpec
    process: multiprocessing.process.BaseProcess | None = None
    port: int = 0
    generation: int = 0
    healthy: bool = False
    consecutive_failures: int = 0
    #: Last per-dataset edit counters seen in this worker's health response.
    edit_counters: dict[str, int] = field(default_factory=dict)

    @property
    def worker_id(self) -> str:
        return self.spec.worker_id

    def is_alive(self) -> bool:
        """``True`` while the worker's OS process exists and runs."""
        return self.process is not None and self.process.is_alive()

    # ------------------------------------------------------------------- spawn

    def spawn(self) -> "WorkerHandle":
        """Start (or restart) the worker process and wait for its port.

        Blocking — the router calls this on its executor.  Raises
        :class:`ClusterError` when the child dies before reporting a port or
        takes longer than the spawn timeout.
        """
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(self.spec, child_conn),
            name=f"graphvizdb-{self.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child's end lives in the child now
        deadline = time.monotonic() + _SPAWN_TIMEOUT_SECONDS
        try:
            while not parent_conn.poll(0.05):
                if not process.is_alive():
                    raise ClusterError(
                        f"worker {self.worker_id!r} exited with code "
                        f"{process.exitcode} before reporting its port"
                    )
                if time.monotonic() > deadline:
                    process.kill()
                    raise ClusterError(
                        f"worker {self.worker_id!r} did not report a port within "
                        f"{_SPAWN_TIMEOUT_SECONDS:g}s"
                    )
            port = parent_conn.recv()
        finally:
            parent_conn.close()
        self.process = process
        self.port = port
        self.generation += 1
        self.healthy = True
        self.consecutive_failures = 0
        self.edit_counters = {}
        return self

    # --------------------------------------------------------------- lifecycle

    def terminate(self, grace_seconds: float = 5.0) -> None:
        """SIGTERM the worker (graceful drain); SIGKILL if it overstays."""
        process = self.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(grace_seconds)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        self.healthy = False

"""Persistent HTTP/1.1 client the router uses to talk to its workers.

One :class:`WorkerClient` per worker process.  Connections are keep-alive
(the PR 4 hardening of :mod:`repro.service.http`) and pooled: a request takes
an idle connection or opens a new one, and returns it after a complete
exchange — so N concurrent proxied requests cost at most N sockets and a
steady proxy workload costs zero connection setups.  Failures on a *fresh*
connection (refused, reset, short read, per-request timeout) close it and
raise :class:`~repro.errors.WorkerUnavailableError`, which the router treats
as the worker-failed routing signal.  Failures on a *pooled* connection are
retried on **exactly one** fresh connection first (counted in the
``proxy_stale_retries`` metric): the worker's keep-alive idle timer may have
closed the socket during a traffic lull, and a routine stale connection must
not be mistaken for a dead worker (that mistake would trigger a full
restart) — but if the fresh attempt fails too, the worker really is
unreachable and no amount of further dialing changes that.  Pooled
connections additionally expire client-side after ``idle_expiry_seconds`` —
kept well below the worker's keep-alive window so the race stays rare — and
expired sockets are closed *and awaited* on discard, not leaked half-closed.

The stale-retry rule extends to non-GET requests only when the caller marks
the request ``idempotent`` — the router does so for ``POST /edit/*`` carrying
an idempotency key, whose re-application the write coordinator suppresses.
An unkeyed write on a stale socket is still never replayed: the worker may
have applied it before the socket died, and a blind resend could apply it
twice.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time

from ..core.monitoring import ServiceMetrics
from ..errors import WorkerUnavailableError
from ..faults import FaultInjected, fault_check
from ..obs import TRACE_HEADER_WIRE, current_trace_id

__all__ = ["WorkerClient"]


class WorkerClient:
    """Pooled keep-alive HTTP client for one worker's endpoint."""

    def __init__(
        self,
        worker_id: str,
        host: str,
        port: int,
        timeout_seconds: float = 30.0,
        idle_expiry_seconds: float = 10.0,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.timeout_seconds = timeout_seconds
        self.idle_expiry_seconds = idle_expiry_seconds
        self.metrics = metrics
        #: Idle connections with the time they were pooled (LIFO).
        self._idle: list[
            tuple[asyncio.StreamReader, asyncio.StreamWriter, float]
        ] = []
        self._closed = False

    # ---------------------------------------------------------------- requests

    async def get(
        self, target: str, timeout_seconds: float | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """One GET round trip; returns ``(status, headers, body)``."""
        return await self.request("GET", target, timeout_seconds=timeout_seconds)

    async def request(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        timeout_seconds: float | None = None,
        headers: dict[str, str] | None = None,
        idempotent: bool = False,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request round trip; returns ``(status, headers, body)``.

        The whole exchange (connect if needed, write, read the full response)
        runs under one timeout.  On success the connection goes back to the
        idle pool unless the worker answered ``Connection: close``.
        ``headers`` are extra request headers (e.g. the propagated deadline);
        ``idempotent`` opts a non-GET request into the single stale-pooled
        retry (see the module docstring).
        """
        if timeout_seconds is None:
            timeout_seconds = self.timeout_seconds
        headers = dict(headers or {})
        # Propagate the active request trace so the worker's spans join the
        # router's trace instead of starting an unrelated one.
        trace_id = current_trace_id()
        if trace_id:
            headers.setdefault(TRACE_HEADER_WIRE, trace_id)
        try:
            return await asyncio.wait_for(
                self._exchange(method, target, body, headers, idempotent),
                timeout_seconds,
            )
        except asyncio.TimeoutError:
            raise WorkerUnavailableError(
                self.worker_id, f"no response within {timeout_seconds:g}s"
            ) from None
        except WorkerUnavailableError:
            raise
        except FaultInjected as exc:
            raise WorkerUnavailableError(self.worker_id, str(exc)) from exc
        except (OSError, asyncio.IncompleteReadError, ValueError) as exc:
            raise WorkerUnavailableError(self.worker_id, str(exc)) from exc

    async def get_json(
        self, target: str, timeout_seconds: float | None = None
    ) -> tuple[int, object]:
        """GET ``target`` and decode the JSON body."""
        status, _, body = await self.get(target, timeout_seconds)
        return status, json.loads(body)

    async def _acquire(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter] | None:
        """Pop a non-expired idle connection, or ``None``.

        Expired connections are closed *and awaited* here: ``close()``
        without ``wait_closed()`` would strand half-closed transports on the
        event loop for as long as the peer dawdles on its FIN.
        """
        now = time.monotonic()
        while self._idle:
            reader, writer, pooled_at = self._idle.pop()
            if (
                self.idle_expiry_seconds > 0
                and now - pooled_at > self.idle_expiry_seconds
            ):
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
                continue
            return reader, writer
        return None

    async def _exchange(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: dict[str, str],
        idempotent: bool,
    ) -> tuple[int, dict[str, str], bytes]:
        stale_retried = False
        while True:
            if self._closed:
                raise WorkerUnavailableError(self.worker_id, "client is closed")
            # After one stale retry the attempt must be on a fresh socket:
            # a second pooled connection could be just as stale, and an
            # unbounded pool walk would hide a genuinely dead worker behind
            # a parade of ancient sockets.
            pooled = None if stale_retried else await self._acquire()
            if pooled is None:
                fresh = True
                reader, writer = await asyncio.open_connection(self.host, self.port)
            else:
                fresh = False
                reader, writer = pooled
            try:
                extra = "".join(
                    f"{name}: {value}\r\n" for name, value in headers.items()
                )
                head = (
                    f"{method} {target} HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    "Connection: keep-alive\r\n"
                    + extra
                    + f"Content-Length: {len(body)}\r\n\r\n"
                )
                writer.write(head.encode("latin-1") + body)
                await writer.drain()
                # The router-side injection point: the simulated failure is
                # the worker's connection dying between request and response.
                fault_check(
                    "client.exchange",
                    worker=self.worker_id, method=method, target=target,
                )
                status, response_headers, response_body = (
                    await self._read_response(reader)
                )
            except FaultInjected:
                writer.close()
                raise  # surfaced as WorkerUnavailableError by request()
            except (OSError, asyncio.IncompleteReadError, ValueError):
                writer.close()
                if fresh or (method != "GET" and not idempotent):
                    # A non-idempotent write on a stale pooled connection is
                    # not replayed: the worker may have applied the edit
                    # before the socket died, and a silent resend could
                    # apply it twice.
                    raise
                stale_retried = True
                if self.metrics is not None:
                    self.metrics.record_proxy_stale_retry()
                continue  # stale pooled connection — one retry, fresh socket
            except BaseException:
                # Includes CancelledError from wait_for: a half-read
                # connection must never return to the pool.
                writer.close()
                raise
            if response_headers.get("connection", "").lower() == "close" or self._closed:
                writer.close()
            else:
                self._idle.append((reader, writer, time.monotonic()))
            return status, response_headers, response_body

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, dict[str, str], bytes]:
        status_line = (await reader.readline()).decode("latin-1").strip()
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ValueError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ValueError("connection closed inside response headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return status, headers, body

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Close every pooled connection; subsequent requests fail fast."""
        self._closed = True
        while self._idle:
            _, writer, _ = self._idle.pop()
            writer.close()

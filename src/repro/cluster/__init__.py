"""Multi-process cluster subsystem.

PR 3 made one process serve many concurrent clients; this package makes many
*processes* serve them, sidestepping the GIL for the CPU-bound JSON payload
builds that dominate interactive window queries:

* :mod:`repro.cluster.hashing` — rendezvous (HRW) dataset-to-worker
  assignment: coordination-free, balanced, and minimally disrupted by worker
  loss;
* :mod:`repro.cluster.worker` — worker processes (each a full PR 3 serving
  stack behind its own HTTP port), spawn handshake and graceful drain;
* :mod:`repro.cluster.client` — the router's pooled keep-alive HTTP client,
  one per worker;
* :mod:`repro.cluster.cache` — the cross-request
  :class:`~repro.cluster.cache.WindowResultCache`, invalidated by the
  per-dataset edit counters workers surface in ``/health``;
* :mod:`repro.cluster.sessions` — the router-side
  :class:`~repro.cluster.sessions.SessionDirectory` replicating session
  cursors (dataset, layer, viewport) so a crashed owner's sessions reopen
  transparently on the new owner;
* :mod:`repro.cluster.router` — the asyncio router/supervisor: proxies
  requests (including ``POST /edit/*`` writes, with eager cache
  invalidation) to rendezvous owners, aggregates ``/metrics``,
  health-checks the fleet, restarts crashed workers (datasets fail over to
  survivors instantly, replaying their write-ahead journals), and drains on
  shutdown.  :class:`ClusterRuntime` wraps it for synchronous callers (CLI,
  benchmarks, tests).
"""

from .cache import CachedResponse, WindowResultCache
from .client import WorkerClient
from .hashing import rendezvous_owner, rendezvous_ranking, rendezvous_score
from .router import ClusterRouter, ClusterRuntime, merge_summaries
from .sessions import SessionCursor, SessionDirectory
from .worker import WorkerHandle, WorkerSpec

__all__ = [
    "CachedResponse",
    "WindowResultCache",
    "WorkerClient",
    "rendezvous_owner",
    "rendezvous_ranking",
    "rendezvous_score",
    "ClusterRouter",
    "ClusterRuntime",
    "merge_summaries",
    "SessionCursor",
    "SessionDirectory",
    "WorkerHandle",
    "WorkerSpec",
]

"""The edit-operation registry: one semantics for live writes and replay.

Every HTTP edit (``POST /edit/<op>``) and every journal record goes through
:func:`apply_edit`, which coerces the JSON argument payload and dispatches to
the matching :class:`~repro.core.editing.GraphEditor` method.  Keeping the
argument coercion here (rather than in the HTTP layer) is what makes journal
replay deterministic: a replayed record is applied by literally the same code
path, with the same validation, as the original request.
"""

from __future__ import annotations

from typing import Callable

from ..core.editing import GraphEditor
from ..errors import UnknownEditError
from ..spatial.geometry import Point

__all__ = ["EDIT_OPS", "apply_edit"]


def _op_add_node(editor: GraphEditor, args: dict) -> dict[str, object]:
    row = editor.add_node(
        int(args["node_id"]),
        str(args.get("label", "")),
        Point(float(args["x"]), float(args["y"])),
    )
    return {"row_id": row.row_id}


def _op_delete_node(editor: GraphEditor, args: dict) -> dict[str, object]:
    return {"rows_removed": editor.delete_node(int(args["node_id"]))}


def _op_move_node(editor: GraphEditor, args: dict) -> dict[str, object]:
    rows = editor.move_node(
        int(args["node_id"]), Point(float(args["x"]), float(args["y"]))
    )
    return {"rows_updated": rows}


def _op_relabel_node(editor: GraphEditor, args: dict) -> dict[str, object]:
    rows = editor.rename_node(int(args["node_id"]), str(args["label"]))
    return {"rows_updated": rows}


def _op_add_edge(editor: GraphEditor, args: dict) -> dict[str, object]:
    row = editor.add_edge(
        int(args["source"]),
        int(args["target"]),
        label=str(args.get("label", "")),
        directed=bool(args.get("directed", True)),
    )
    return {"row_id": row.row_id}


def _op_delete_edge(editor: GraphEditor, args: dict) -> dict[str, object]:
    return {
        "rows_removed": editor.delete_edge(int(args["source"]), int(args["target"]))
    }


def _op_repack(editor: GraphEditor, args: dict) -> dict[str, object]:
    return {"changed": editor.repack()}


#: ``op name -> applier`` — the operations the write subsystem accepts.
EDIT_OPS: dict[str, Callable[[GraphEditor, dict], dict[str, object]]] = {
    "add_node": _op_add_node,
    "delete_node": _op_delete_node,
    "move_node": _op_move_node,
    "relabel": _op_relabel_node,
    "add_edge": _op_add_edge,
    "delete_edge": _op_delete_edge,
    "repack": _op_repack,
}


def apply_edit(editor: GraphEditor, op: str, args: dict) -> dict[str, object]:
    """Apply one edit operation; returns the acknowledgement payload.

    Raises :class:`~repro.errors.UnknownEditError` for an unregistered name,
    ``KeyError`` / ``ValueError`` for a malformed argument payload (the HTTP
    layer maps both to 400), and :class:`~repro.errors.QueryError` when the
    edit references graph elements that do not exist (mapped to 404).
    """
    applier = EDIT_OPS.get(op)
    if applier is None:
        raise UnknownEditError(op, list(EDIT_OPS))
    return applier(editor, args)

"""Durable write subsystem: journalled, serialised edits for the serving stack.

The Edit panel of the paper is a first-class online operation, but the
serving/cluster layers of PRs 3-4 were read-only.  This package threads a
durable write path through them:

* :mod:`repro.writes.journal` — a per-dataset append-only write-ahead journal
  (length-prefixed JSON records with blake2b checksums, batched fsync).  An
  edit is journalled *before* it is applied, so an acknowledged edit survives
  a SIGKILLed worker: the next open replays the un-checkpointed tail.
* :mod:`repro.writes.ops` — the edit-operation registry shared by the live
  apply path and journal replay (one deterministic semantics for both).
* :mod:`repro.writes.coordinator` — the :class:`WriteCoordinator` the service
  front-end dispatches ``POST /edit/*`` requests through: a single-writer
  queue per dataset, journal-then-apply ordering, and background checkpoints
  (incremental ``save_to_sqlite`` + journal truncation).
"""

from .coordinator import WriteCoordinator
from .journal import JournalRecord, WriteAheadJournal, replay_journal
from .ops import EDIT_OPS, apply_edit

__all__ = [
    "EDIT_OPS",
    "JournalRecord",
    "WriteAheadJournal",
    "WriteCoordinator",
    "apply_edit",
    "replay_journal",
]

"""Per-dataset write-ahead journal.

One journal file sits next to each served SQLite dataset
(``<dataset>.db.journal``).  Every edit is appended *before* it is applied to
the in-memory tables, so the sequence

    append record -> apply edit -> acknowledge client

guarantees that an acknowledged edit exists on disk even if the worker is
SIGKILLed the instant after the ack: the next open of the dataset replays the
journal tail through the same :func:`~repro.writes.ops.apply_edit` path the
live write used.

On-disk format — one record is::

    [4-byte little-endian payload length]
    [16-byte blake2b-128 digest of the payload]
    [payload: UTF-8 JSON {"seq": int, "op": str, "args": {...}}]

The checksum detects torn or corrupted records.  A *torn tail* (the file ends
inside a record, or the final record fails its checksum) is the expected
signature of a crash mid-append and is silently discarded — everything before
it was acknowledged with a complete record.  A bad record *followed by more
valid bytes* is genuine corruption and raises :class:`~repro.errors.JournalError`
rather than silently dropping acknowledged edits.

Durability policy (``WriteConfig.journal_fsync``): appends always reach the
OS (``write`` + ``flush``) before the edit is applied — that alone makes an
acknowledged edit survive any *process* death, because the page cache outlives
the process.  ``fsync`` additionally protects against power loss: ``always``
syncs every record, ``batch`` every ``journal_fsync_batch`` records, ``never``
leaves it to the OS.

Checkpointing: after an incremental ``save_to_sqlite`` the coordinator calls
:meth:`WriteAheadJournal.truncate_through` with the last sequence number the
save covered.  The same number is stored inside the SQLite file itself
(``journal_checkpoint_seq`` meta key, written in the save's transaction), so
a crash *between* the save and the truncation cannot double-apply: replay
skips records at or below the checkpoint recorded in the database.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..config import WriteConfig
from ..errors import (
    JournalError,
    LayerNotFoundError,
    QueryError,
    UnknownEditError,
)
from ..faults import FaultInjected, fault_check
from ..obs import add_phase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.monitoring import ServiceMetrics
    from ..storage.database import GraphVizDatabase

__all__ = [
    "JournalRecord",
    "WriteAheadJournal",
    "journal_path_for",
    "read_journal_records",
    "read_journal_tail",
    "replay_journal",
    "verify_journal",
]

#: SQLite meta key holding the last journal sequence number covered by a save.
CHECKPOINT_META_KEY = "journal_checkpoint_seq"

_DIGEST_BYTES = 16
_LENGTH_BYTES = 4


def journal_path_for(sqlite_path: str | Path) -> Path:
    """The journal file that belongs to one SQLite dataset file."""
    path = Path(sqlite_path)
    return path.with_name(path.name + ".journal")


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    seq: int
    op: str
    args: dict[str, object]


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_DIGEST_BYTES).digest()


def read_journal_records(path: str | Path) -> list[JournalRecord]:
    """Decode every complete record of a journal file, discarding a torn tail.

    Raises :class:`JournalError` when a corrupt record is followed by further
    bytes (mid-file corruption can silently drop acknowledged edits; a torn
    *final* record cannot — nothing after it was ever acknowledged).
    """
    path = Path(path)
    if not path.exists():
        return []
    data = path.read_bytes()
    records: list[JournalRecord] = []
    offset = 0
    header = _LENGTH_BYTES + _DIGEST_BYTES
    while offset < len(data):
        if offset + header > len(data):
            break  # torn tail: crashed inside a record header
        length = int.from_bytes(data[offset:offset + _LENGTH_BYTES], "little")
        start = offset + header
        end = start + length
        if end > len(data):
            break  # torn tail: crashed inside a record payload
        payload = data[start:end]
        stored = data[offset + _LENGTH_BYTES:start]
        if _digest(payload) != stored:
            if end < len(data):
                raise JournalError(
                    f"journal {path} is corrupt at offset {offset} "
                    f"(bad checksum mid-file)"
                )
            break  # torn tail: checksum of the final record does not close
        try:
            decoded = json.loads(payload)
            record = JournalRecord(
                seq=int(decoded["seq"]),
                op=str(decoded["op"]),
                args=dict(decoded.get("args") or {}),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise JournalError(
                f"journal {path} holds an undecodable record at offset {offset}: {exc}"
            ) from exc
        records.append(record)
        offset = end
    return records


def read_journal_tail(
    path: str | Path, from_seq: int = 0, max_records: int = 256
) -> dict[str, object]:
    """Read one feed frame of the journal: records past a cursor, with digests.

    The replication feed cursor protocol (see ``docs/replication.md``): a
    subscriber asks for records with ``seq > from_seq`` and gets back at most
    ``max_records`` of them, each carrying the hex blake2b digest of its
    on-disk payload so the subscriber can verify its own re-encoding
    byte-for-byte before appending the record to its local journal copy.

    Returns ``{"records": [...], "last_seq": int, "floor_seq": int}`` where
    ``last_seq`` is the journal head (the newest complete record on disk, for
    lag accounting even when the frame is capped) and ``floor_seq`` is the
    oldest seq still present — a subscriber whose cursor has fallen below
    ``floor_seq`` (the owner checkpointed and truncated past it) must resync
    from the SQLite file instead of the feed.  Torn tails are tolerated;
    mid-file corruption raises :class:`JournalError` like
    :func:`read_journal_records`.
    """
    records = read_journal_records(path)
    head = records[-1].seq if records else 0
    floor = records[0].seq if records else 0
    frame = [record for record in records if record.seq > from_seq][:max_records]
    entries: list[dict[str, object]] = []
    for record in frame:
        payload = json.dumps(
            {"seq": record.seq, "op": record.op, "args": record.args},
            separators=(",", ":"),
        ).encode()
        entries.append({
            "seq": record.seq,
            "op": record.op,
            "args": record.args,
            "digest": _digest(payload).hex(),
        })
    return {"records": entries, "last_seq": head, "floor_seq": floor}


def encode_journal_frame(seq: int, op: str, args: dict[str, object]) -> bytes:
    """Re-encode one record into its on-disk frame (length + digest + payload).

    The canonical encoding (:meth:`WriteAheadJournal.append` uses the same
    ``json.dumps`` call), so a feed subscriber that re-frames a received
    record writes bytes identical to the owner's — verifiable against the
    digest the feed shipped.
    """
    payload = json.dumps(
        {"seq": int(seq), "op": str(op), "args": dict(args)},
        separators=(",", ":"),
    ).encode()
    return (
        len(payload).to_bytes(_LENGTH_BYTES, "little")
        + _digest(payload)
        + payload
    )


def verify_journal(path: str | Path) -> dict[str, object]:
    """Scan a journal and report its integrity without raising.

    The operator-facing half of the replication story (``repro journal
    verify``): walks every frame like :func:`read_journal_records` but turns
    each failure mode into a field of the report instead of an exception::

        {
          "path": str, "exists": bool, "total_bytes": int,
          "records": int,          # complete, checksum-valid records
          "first_seq": int, "last_good_seq": int,
          "torn_tail": bool,       # file ends inside a frame (benign crash)
          "torn_bytes": int,       # bytes past the last good record
          "corrupt": bool,         # bad checksum/undecodable record mid-file
          "error": str | None,     # human-readable description of the damage
        }

    ``corrupt`` is the only condition that can silently drop acknowledged
    edits; a torn tail is the expected signature of a crash mid-append.
    """
    path = Path(path)
    report: dict[str, object] = {
        "path": str(path), "exists": path.exists(), "total_bytes": 0,
        "records": 0, "first_seq": 0, "last_good_seq": 0,
        "torn_tail": False, "torn_bytes": 0, "corrupt": False, "error": None,
    }
    if not path.exists():
        return report
    data = path.read_bytes()
    report["total_bytes"] = len(data)
    offset = 0
    header = _LENGTH_BYTES + _DIGEST_BYTES
    while offset < len(data):
        if offset + header > len(data):
            report["torn_tail"] = True
            report["error"] = f"torn record header at offset {offset}"
            break
        length = int.from_bytes(data[offset:offset + _LENGTH_BYTES], "little")
        start = offset + header
        end = start + length
        if end > len(data):
            report["torn_tail"] = True
            report["error"] = f"torn record payload at offset {offset}"
            break
        payload = data[start:end]
        if _digest(payload) != data[offset + _LENGTH_BYTES:start]:
            if end < len(data):
                report["corrupt"] = True
                report["error"] = (
                    f"bad checksum at offset {offset} with valid bytes after "
                    f"it (mid-file corruption)"
                )
            else:
                report["torn_tail"] = True
                report["error"] = f"bad checksum on the final record at offset {offset}"
            break
        try:
            decoded = json.loads(payload)
            seq = int(decoded["seq"])
        except (ValueError, KeyError, TypeError) as exc:
            report["corrupt"] = True
            report["error"] = f"undecodable record at offset {offset}: {exc}"
            break
        if not report["records"]:
            report["first_seq"] = seq
        report["records"] = int(report["records"]) + 1
        report["last_good_seq"] = seq
        offset = end
    if report["torn_tail"] or report["corrupt"]:
        report["torn_bytes"] = len(data) - offset
    return report


class WriteAheadJournal:
    """Append-only journal for one dataset's edits.

    Thread-safe (appends, sync and truncation serialise on an internal lock),
    though the write coordinator already serialises writers per dataset.

    Parameters
    ----------
    path:
        Journal file location (see :func:`journal_path_for`).
    fsync:
        ``"always"`` / ``"batch"`` / ``"never"`` — see the module docstring.
    fsync_batch:
        Records per fsync under the ``"batch"`` policy.
    max_record_bytes:
        Appends whose encoded payload exceeds this raise
        :class:`JournalError` before touching the file.
    min_seq:
        A floor for the sequence numbering, normally the dataset's stored
        checkpoint watermark (``journal_checkpoint_seq``).  Without it, a
        process opening a journal that a checkpoint just truncated to empty
        would restart numbering at 1 — and replay, which skips records at or
        below the watermark, would silently drop those acknowledged edits.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "batch",
        fsync_batch: int = 16,
        max_record_bytes: int = 1024 * 1024,
        min_seq: int = 0,
    ) -> None:
        if fsync not in {"always", "batch", "never"}:
            raise JournalError(f"unknown fsync policy {fsync!r}")
        self.path = Path(path)
        self.fsync = fsync
        self.fsync_batch = max(1, fsync_batch)
        self.max_record_bytes = max_record_bytes
        self._lock = threading.Lock()
        self._handle = None
        self._unsynced = 0
        # Resume the sequence past both the file's tail and the checkpoint
        # watermark (a worker taking over a crashed — or freshly
        # checkpointed — owner's dataset must never reuse sequence numbers
        # that were acknowledged or checkpointed before).
        existing = read_journal_records(self.path)
        tail_seq = existing[-1].seq if existing else 0
        self._next_seq = max(tail_seq, min_seq) + 1
        self._pending_records = len(existing)

    # ------------------------------------------------------------------ append

    @property
    def next_seq(self) -> int:
        """The sequence number the next append will get."""
        with self._lock:
            return self._next_seq

    @property
    def last_seq(self) -> int:
        """The sequence number of the most recent append (``0``: none yet)."""
        with self._lock:
            return self._next_seq - 1

    def __len__(self) -> int:
        """Number of records currently in the file (the un-truncated tail)."""
        with self._lock:
            return self._pending_records

    def append(self, op: str, args: dict[str, object]) -> tuple[int, bool]:
        """Write one record; returns ``(seq, fsynced)``.

        The record is on its way to the OS (``write`` + ``flush``) when this
        returns — the caller may apply the edit and acknowledge the client.
        """
        with self._lock:
            seq = self._next_seq
            payload = json.dumps(
                {"seq": seq, "op": op, "args": args}, separators=(",", ":")
            ).encode()
            if len(payload) > self.max_record_bytes:
                raise JournalError(
                    f"edit record of {len(payload)} bytes exceeds the "
                    f"{self.max_record_bytes}-byte journal record limit"
                )
            handle = self._open_handle()
            frame = (
                len(payload).to_bytes(_LENGTH_BYTES, "little")
                + _digest(payload)
                + payload
            )
            # The pre-append file size, for rollback: a record that reached
            # the file but whose append ultimately *failed* (fsync error) was
            # never acknowledged, and must not be resurrected by replay.
            start = self._size_locked(handle)
            try:
                fault_check("journal.append", path=str(self.path), seq=seq)
                append_started = time.perf_counter()
                handle.write(frame)
                handle.flush()
                synced = False
                will_sync = self.fsync == "always" or (
                    self.fsync == "batch" and self._unsynced + 1 >= self.fsync_batch
                )
                if will_sync:
                    fault_check("journal.fsync", path=str(self.path), seq=seq)
                    fsync_started = time.perf_counter()
                    os.fsync(handle.fileno())
                    synced = True
                    add_phase(
                        "journal.fsync", time.perf_counter() - fsync_started, seq=seq
                    )
                # Runs on a pool thread under the request's copied context,
                # so the phase lands in the active edit's span tree.
                add_phase(
                    "journal.append", time.perf_counter() - append_started,
                    seq=seq, synced=synced,
                )
            except FaultInjected as exc:
                if exc.action == "torn":
                    # Simulate a crash mid-write: leave half the frame behind.
                    with contextlib.suppress(OSError):
                        handle.write(frame[: max(1, len(frame) // 2)])
                        handle.flush()
                else:
                    self._rollback_locked(handle, start)
                raise JournalError(
                    f"journal append to {self.path} failed: {exc}", io_fault=True
                ) from exc
            except OSError as exc:
                self._rollback_locked(handle, start)
                raise JournalError(
                    f"journal append to {self.path} failed: {exc}", io_fault=True
                ) from exc
            self._next_seq = seq + 1
            self._pending_records += 1
            if synced:
                self._unsynced = 0
            else:
                self._unsynced += 1
            return seq, synced

    @staticmethod
    def _size_locked(handle) -> int:
        try:
            return os.fstat(handle.fileno()).st_size
        except OSError:
            return -1

    @staticmethod
    def _rollback_locked(handle, size: int) -> None:
        """Best-effort truncation back to the pre-append size.

        A failed append may have left a complete record on disk (a failed
        *fsync* follows a successful write): without the rollback, a later
        replay would apply an edit the client was told failed.  Truncation
        needs no new disk blocks, so it usually succeeds even when the write
        failed for lack of space; if it too fails, the coordinator's
        read-only mode keeps the journal from growing past the damage.
        """
        if size < 0:
            return
        with contextlib.suppress(OSError, ValueError):
            handle.truncate(size)

    def sync(self) -> None:
        """Force an fsync of everything appended so far (any policy)."""
        with self._lock:
            if self._handle is None:
                return
            try:
                fault_check("journal.fsync", path=str(self.path), seq=-1)
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, FaultInjected) as exc:
                raise JournalError(
                    f"journal sync of {self.path} failed: {exc}", io_fault=True
                ) from exc
            self._unsynced = 0

    def _open_handle(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    # -------------------------------------------------------------- truncation

    def records(self) -> list[JournalRecord]:
        """Decode the journal's current records (snapshot)."""
        with self._lock:
            self._flush_locked()
            return read_journal_records(self.path)

    def tail(self, from_seq: int = 0, max_records: int = 256) -> dict[str, object]:
        """One replication feed frame past ``from_seq`` (see :func:`read_journal_tail`).

        Flushes first so the frame includes every record that has been
        acknowledged by the time the feed request arrived.
        """
        with self._lock:
            self._flush_locked()
            return read_journal_tail(
                self.path, from_seq=from_seq, max_records=max_records
            )

    def truncate_through(self, seq: int) -> int:
        """Drop records with ``record.seq <= seq``; returns how many were kept.

        Called after a checkpoint save covered everything up to ``seq``.  The
        survivors (appends that raced the checkpoint) are rewritten to a
        temporary file which atomically replaces the journal, so a crash
        mid-truncation leaves either the old complete journal or the new one
        — never a half-truncated file.
        """
        with self._lock:
            self._flush_locked()
            remaining = [
                record for record in read_journal_records(self.path)
                if record.seq > seq
            ]
            temp = self.path.with_name(self.path.name + ".truncate")
            try:
                fault_check("journal.truncate", path=str(self.path), seq=seq)
                with open(temp, "wb") as handle:
                    for record in remaining:
                        payload = json.dumps(
                            {"seq": record.seq, "op": record.op, "args": record.args},
                            separators=(",", ":"),
                        ).encode()
                        handle.write(
                            len(payload).to_bytes(_LENGTH_BYTES, "little")
                            + _digest(payload)
                            + payload
                        )
                    handle.flush()
                    os.fsync(handle.fileno())
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
                temp.replace(self.path)
            except (OSError, FaultInjected) as exc:
                raise JournalError(
                    f"journal truncation of {self.path} failed: {exc}", io_fault=True
                ) from exc
            self._pending_records = len(remaining)
            self._unsynced = 0
            return len(remaining)

    def _flush_locked(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Flush and close the file handle (the journal object stays usable)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None


# ---------------------------------------------------------------------- replay


def replay_journal(
    database: "GraphVizDatabase",
    sqlite_path: str | Path,
    write_config: WriteConfig | None = None,
    metrics: "ServiceMetrics | None" = None,
) -> int:
    """Apply the un-checkpointed journal tail to a freshly opened database.

    Called by the dataset pool right after ``load_from_sqlite``: records with
    a sequence number above the ``journal_checkpoint_seq`` recorded inside
    the SQLite file are re-applied through the same
    :func:`~repro.writes.ops.apply_edit` path live writes use.  Records whose
    original apply failed (the journal is written *before* validation) fail
    identically here and are skipped — replay reproduces the pre-crash state,
    error-for-error.  Returns the number of records re-applied.
    """
    from ..core.editing import GraphEditor
    from .ops import apply_edit

    config = write_config or WriteConfig()
    if not config.journal_enabled:
        return 0
    path = journal_path_for(sqlite_path)
    records = read_journal_records(path)
    checkpoint_seq = _read_checkpoint_seq(sqlite_path)
    # The replication subscriber needs to know exactly how far this open's
    # snapshot reached: records at or below this watermark are already in
    # the in-memory state (applied, or deterministically re-failed) and must
    # never be re-applied from the feed.
    database.journal_replayed_seq = max(
        checkpoint_seq, records[-1].seq if records else 0
    )
    if not records:
        return 0
    editors: dict[int, GraphEditor] = {}
    replayed = 0
    for record in records:
        if record.seq <= checkpoint_seq:
            continue
        args = dict(record.args)
        layer = int(args.pop("layer", 0))
        # The idempotency key rides in the record out-of-band, like "layer":
        # it must never reach the op applier as an argument.
        args.pop("idem", None)
        editor = editors.get(layer)
        if editor is None:
            editor = editors[layer] = GraphEditor(database, layer=layer)
        try:
            apply_edit(editor, record.op, args)
        except (
            QueryError,          # edit references graph elements that are gone
            LayerNotFoundError,  # edit targets a layer this file never had
            UnknownEditError,    # op name the registry rejects
            KeyError,            # malformed argument payload...
            ValueError,          # ...or uncoercible argument values
            TypeError,
        ):
            # Deterministic re-failure of an edit that failed when it was
            # first attempted (the journal is written before validation):
            # skipping it is exactly what the original apply did.  Every
            # error class the live HTTP path maps to a 4xx must be listed
            # here — anything narrower would let one rejected request brick
            # every subsequent open of the dataset.
            continue
        replayed += 1
    if metrics is not None and replayed:
        metrics.record_journal_replay(replayed)
    return replayed


def _read_checkpoint_seq(sqlite_path: str | Path) -> int:
    from ..storage.sqlite_backend import read_meta_value

    value = read_meta_value(sqlite_path, CHECKPOINT_META_KEY)
    try:
        return int(value) if value is not None else 0
    except ValueError:
        return 0


def last_checkpoint_seq(sqlite_path: str | Path) -> int:
    """The checkpoint watermark stored inside a dataset file (``0``: none).

    The floor for journal sequence numbering (see ``min_seq``) and the
    skip-below threshold for :func:`replay_journal`.
    """
    return _read_checkpoint_seq(sqlite_path)


def unreplayed_count(sqlite_path: str | Path) -> int:
    """How many journal records a fresh open of ``sqlite_path`` would replay."""
    checkpoint = _read_checkpoint_seq(sqlite_path)
    return sum(
        1
        for record in read_journal_records(journal_path_for(sqlite_path))
        if record.seq > checkpoint
    )

"""Write coordination for the service front-end.

:class:`WriteCoordinator` owns the write path of one
:class:`~repro.service.frontend.GraphVizDBService`:

* **one writer per dataset** — every edit runs under the dataset's asyncio
  lock, so edits serialise (the Edit panel is a single user's cursor; two
  racing structural edits would interleave half-applied geometry updates)
  while edits to *different* datasets, and all reads, proceed in parallel;
* **journal before apply** — SQLite-backed datasets get a
  :class:`~repro.writes.journal.WriteAheadJournal` next to their database
  file; the record is on disk before the edit touches a table, so an
  acknowledged edit survives a SIGKILLed worker (in-memory datasets have no
  durable home and skip journalling);
* **background checkpoints** — once a dataset's journal accumulates
  ``WriteConfig.checkpoint_every_records`` records, the coordinator schedules
  an incremental ``save_to_sqlite`` (unchanged layers skip, the PR 3
  machinery) plus a journal truncation, bounding both replay time after a
  crash and journal growth, without blocking the edit that tripped it.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from collections import OrderedDict
from pathlib import Path

from ..config import GraphVizDBConfig, WriteConfig
from ..core.editing import GraphEditor
from ..core.monitoring import ServiceMetrics
from ..errors import DatasetReadOnlyError, JournalError, ServiceError
from ..faults import fault_check
from ..obs import add_phase
from ..storage.database import GraphVizDatabase
from .journal import (
    CHECKPOINT_META_KEY,
    WriteAheadJournal,
    journal_path_for,
    last_checkpoint_seq,
    read_journal_records,
)
from .ops import apply_edit

__all__ = ["WriteCoordinator"]

#: Per-dataset bound on remembered idempotency keys.  The router retries a
#: write within seconds of the original, so even a small window suffices; the
#: bound only exists so a client fabricating fresh keys cannot grow the map
#: without limit.
_IDEMPOTENCY_KEYS_PER_DATASET = 4096


class WriteCoordinator:
    """Serialised, journalled edit application for the serving front-end."""

    def __init__(
        self,
        config: GraphVizDBConfig | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.config = config or GraphVizDBConfig()
        self.write_config: WriteConfig = self.config.write
        self.metrics = metrics or ServiceMetrics()
        self._locks: dict[str, asyncio.Lock] = {}
        self._journals: dict[str, WriteAheadJournal] = {}
        self._checkpointing: set[str] = set()
        self._checkpoint_tasks: set[asyncio.Task] = set()
        #: ``dataset -> idempotency key -> acknowledgement`` (LRU-bounded).
        #: Seeded from the journal on first open, so dedup survives both a
        #: process restart and a failover to a worker sharing the journal.
        self._applied_keys: dict[str, OrderedDict[str, dict]] = {}
        #: ``dataset -> reason`` for datasets in fail-stop read-only mode.
        self._read_only: dict[str, str] = {}
        #: Publish-on-append hook for the replication feed: long-polling
        #: ``/journal/tail`` handlers wait on the dataset's condition, and
        #: every successful journal append notifies it (see
        #: :meth:`wait_for_append`).
        self._feed_lock = threading.Lock()
        self._feed_conditions: dict[str, threading.Condition] = {}
        self._feed_heads: dict[str, int] = {}
        #: Called after every completed checkpoint (front-end wires the
        #: pool's resident-bytes re-estimation here: a checkpointed dataset
        #: just rewrote its SQLite file from the in-memory state, so the
        #: open-time size estimate is stale).  Errors are swallowed.
        self.on_checkpoint: "object" = None

    # --------------------------------------------------------------- read-only

    def read_only_reason(self, dataset: str) -> str | None:
        """Why the dataset is read-only (``None``: it accepts writes)."""
        return self._read_only.get(dataset)

    def read_only_datasets(self) -> list[str]:
        """Sorted names of datasets currently in read-only degraded mode."""
        return sorted(self._read_only)

    def _enter_read_only(self, dataset: str, reason: str) -> None:
        if dataset not in self._read_only:
            self._read_only[dataset] = reason
            self.metrics.record_read_only_transition()

    # ----------------------------------------------------------- serialisation

    def lock_for(self, dataset: str) -> asyncio.Lock:
        """The dataset's single-writer lock (created on first use)."""
        lock = self._locks.get(dataset)
        if lock is None:
            lock = self._locks[dataset] = asyncio.Lock()
        return lock

    # ---------------------------------------------------------------- journals

    def journal_for(self, dataset: str, sqlite_path: str | None) -> WriteAheadJournal | None:
        """The dataset's journal — ``None`` for in-memory datasets or when disabled."""
        if sqlite_path is None or not self.write_config.journal_enabled:
            return None
        journal = self._journals.get(dataset)
        if journal is None:
            journal = self._journals[dataset] = WriteAheadJournal(
                journal_path_for(sqlite_path),
                fsync=self.write_config.journal_fsync,
                fsync_batch=self.write_config.journal_fsync_batch,
                max_record_bytes=self.write_config.max_record_bytes,
                # Seed the numbering past the stored checkpoint watermark:
                # after a checkpoint truncated the file to empty, a fresh
                # process restarting at seq 1 would have its acknowledged
                # edits skipped by replay (they would sit at or below the
                # watermark).
                min_seq=last_checkpoint_seq(sqlite_path),
            )
            # Seed the idempotency map from the journal's surviving records:
            # an edit acknowledged by a crashed owner is deduplicated here
            # even though *this* process never applied it live (replay did).
            keys = self._applied_keys.setdefault(dataset, OrderedDict())
            for record in read_journal_records(journal.path):
                idem = record.args.get("idem")
                if idem:
                    keys[str(idem)] = {
                        "op": record.op, "dataset": dataset, "seq": record.seq,
                    }
            self._trim_keys(keys)
        return journal

    def _trim_keys(self, keys: "OrderedDict[str, dict]") -> None:
        while len(keys) > _IDEMPOTENCY_KEYS_PER_DATASET:
            keys.popitem(last=False)

    def journal_depth(self, dataset: str) -> int:
        """Un-checkpointed records currently in the dataset's journal."""
        journal = self._journals.get(dataset)
        return len(journal) if journal is not None else 0

    def journal_bytes(self) -> int:
        """Total on-disk size of the open journals (memory-telemetry source)."""
        total = 0
        for journal in list(self._journals.values()):
            try:
                total += journal.path.stat().st_size
            except OSError:
                continue
        return total

    # -------------------------------------------------------- replication feed

    def _feed_condition(self, dataset: str) -> threading.Condition:
        with self._feed_lock:
            condition = self._feed_conditions.get(dataset)
            if condition is None:
                condition = self._feed_conditions[dataset] = threading.Condition()
            return condition

    def _publish_append(self, dataset: str, seq: int) -> None:
        """Wake long-polling feed readers after a successful journal append."""
        condition = self._feed_condition(dataset)
        with condition:
            if seq > self._feed_heads.get(dataset, 0):
                self._feed_heads[dataset] = seq
            condition.notify_all()

    def wait_for_append(self, dataset: str, after_seq: int,
                        timeout_seconds: float) -> bool:
        """Block (worker thread) until an append past ``after_seq`` is published.

        The bounded long-poll half of the feed protocol: returns ``True`` as
        soon as a record with a higher sequence number has been journalled,
        ``False`` on timeout.  Only appends made by *this* process wake the
        wait — a subscriber polling a non-owner simply times out and retries.
        """
        if timeout_seconds <= 0:
            return self._feed_heads.get(dataset, 0) > after_seq
        condition = self._feed_condition(dataset)
        deadline = time.monotonic() + timeout_seconds
        with condition:
            while self._feed_heads.get(dataset, 0) <= after_seq:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                condition.wait(remaining)
            return True

    def journal_tail(self, dataset: str, sqlite_path: str | None,
                     from_seq: int, max_records: int) -> dict[str, object]:
        """One feed frame of the dataset's journal (see ``read_journal_tail``).

        Served through the open journal object when this process owns one
        (flushing buffered appends first), falling back to a plain file read
        so a process that never wrote the dataset can still serve its feed.
        """
        journal = self.journal_for(dataset, sqlite_path)
        if journal is not None:
            return journal.tail(from_seq=from_seq, max_records=max_records)
        from .journal import journal_path_for as _path_for
        from .journal import read_journal_tail

        if sqlite_path is None:
            return {"records": [], "last_seq": 0, "floor_seq": 0}
        return read_journal_tail(
            _path_for(sqlite_path), from_seq=from_seq, max_records=max_records
        )

    # ------------------------------------------------------------------- apply

    def apply_sync(
        self,
        dataset: str,
        database: GraphVizDatabase,
        sqlite_path: str | None,
        op: str,
        args: dict,
        layer: int = 0,
        idempotency_key: str | None = None,
    ) -> dict[str, object]:
        """Journal and apply one edit (worker thread; caller holds the lock).

        Returns the acknowledgement payload: the op's own result plus the
        journal sequence number (``0`` when unjournalled) and the dataset's
        post-edit monotonic edit counter — the router uses the latter to
        invalidate its window cache eagerly instead of waiting for the next
        health probe.

        ``idempotency_key`` makes the edit safely retryable: a key this
        coordinator has already applied (live, or via journal replay after a
        failover) is *not* applied again — the original acknowledgement is
        returned with ``"deduplicated": True``.  The key is persisted inside
        the journal record, so the exactly-once guarantee survives crashes
        and owner changes, not just process-local retries.
        """
        reason = self._read_only.get(dataset)
        if reason is not None:
            self.metrics.record_read_only_rejection()
            raise DatasetReadOnlyError(dataset, reason)
        # The layer and idempotency key are carried out-of-band (query
        # parameter / replay record key), never inside the op arguments — a
        # stray "layer" in the body would otherwise make the replayed edit
        # target a different layer than the live apply did.
        args = dict(args)
        args.pop("layer", None)
        args.pop("idem", None)
        journal = self.journal_for(dataset, sqlite_path)
        applied = self._applied_keys.setdefault(dataset, OrderedDict())
        if idempotency_key is not None:
            previous = applied.get(idempotency_key)
            if previous is not None:
                applied.move_to_end(idempotency_key)
                self.metrics.record_write_deduplicated()
                return {
                    **previous,
                    "deduplicated": True,
                    "edit_counter": database.edit_counter(),
                }
        seq = 0
        if journal is not None:
            record_args = dict(args)
            if layer:
                record_args["layer"] = layer
            if idempotency_key is not None:
                record_args["idem"] = idempotency_key
            append_started = time.perf_counter()
            try:
                seq, synced = journal.append(op, record_args)
            except JournalError as exc:
                if exc.io_fault:
                    # Fail-stop: durability of further appends is undefined,
                    # so the dataset stops accepting writes rather than
                    # silently weakening the acknowledged-means-durable
                    # contract.  Reads continue.
                    self._enter_read_only(dataset, str(exc))
                    self.metrics.record_read_only_rejection()
                    raise DatasetReadOnlyError(dataset, str(exc)) from exc
                raise
            self.metrics.record_journal_append(synced)
            self.metrics.record_latency(
                "edit.journal_append", time.perf_counter() - append_started
            )
            self._publish_append(dataset, seq)
        editor = GraphEditor(database, layer=layer)
        apply_started = time.perf_counter()
        result = apply_edit(editor, op, args)
        self.metrics.record_latency(
            "edit.apply", time.perf_counter() - apply_started
        )
        add_phase("apply", time.perf_counter() - apply_started, op=op)
        self.metrics.record_write()
        ack: dict[str, object] = {
            "op": op,
            "dataset": dataset,
            "seq": seq,
            "edit_counter": database.edit_counter(),
            **result,
        }
        if idempotency_key is not None:
            applied[idempotency_key] = ack
            self._trim_keys(applied)
        return ack

    # ------------------------------------------------------------- checkpoints

    def checkpoint_due(self, dataset: str) -> bool:
        """``True`` when the journal has grown past the checkpoint threshold."""
        threshold = self.write_config.checkpoint_every_records
        if threshold <= 0 or dataset in self._checkpointing:
            return False
        if dataset in self._read_only:
            # A read-only dataset's journal is frozen evidence; a checkpoint
            # would truncate it against storage already known to be failing.
            return False
        return self.journal_depth(dataset) >= threshold

    def schedule_checkpoint(self, dataset: str, sqlite_path: str, run,
                            resolve) -> None:
        """Start a background checkpoint task (at most one per dataset).

        ``run`` is the front-end's executor dispatch; the task takes the
        dataset's write lock, so the checkpoint's save + truncate cannot
        interleave with a concurrent edit's journal append.  ``resolve`` is
        called *at execution time* to fetch the dataset's current in-memory
        database (``None`` skips the checkpoint): capturing the object at
        schedule time would be wrong — a pool eviction + reopen in between
        would leave the task saving a stale snapshot and truncating journal
        records whose edits only the *new* object carries.
        """
        if dataset in self._checkpointing:
            return
        self._checkpointing.add(dataset)
        task = asyncio.get_running_loop().create_task(
            self._checkpoint(dataset, sqlite_path, run, resolve)
        )
        self._checkpoint_tasks.add(task)
        task.add_done_callback(self._checkpoint_tasks.discard)

    async def _checkpoint(self, dataset: str, sqlite_path: str, run,
                          resolve) -> None:
        try:
            async with self.lock_for(dataset):
                await run(self._checkpoint_current, dataset, sqlite_path, resolve)
        except ServiceError:
            # The service is stopping: the journal keeps every record, so the
            # next open simply replays instead of restoring a checkpoint.
            pass
        except Exception:
            # A failed background checkpoint (I/O error mid-save, injected
            # fault) is safe to swallow: the journal still holds every
            # record, so nothing acknowledged is at risk — the next open
            # replays.  Count it so operators see checkpointing is stuck.
            self.metrics.record_checkpoint_failure()
        finally:
            self._checkpointing.discard(dataset)

    def _checkpoint_current(self, dataset: str, sqlite_path: str, resolve) -> int:
        """Checkpoint whatever database currently serves the dataset.

        The current pool entry always holds the union of the SQLite file and
        the journal (replay-on-open plus every later edit), so saving *it* is
        always safe; an evicted-and-not-reopened dataset has nothing better
        than the journal, which stays intact for the next open's replay.
        """
        database = resolve()
        if database is None:
            return 0
        return self.checkpoint_sync(dataset, database, sqlite_path)

    def checkpoint_sync(self, dataset: str, database: GraphVizDatabase,
                        sqlite_path: str | Path) -> int:
        """Incremental save + journal truncation (worker thread; lock held).

        The last journalled sequence number is written into the SQLite file's
        meta table *inside the save's transaction*; a crash between the save
        and the truncation therefore cannot double-apply — replay skips
        records at or below the stored watermark.  Returns the number of
        journal records that survived the truncation (appends racing the
        checkpoint; normally 0 because the lock is held).
        """
        from ..storage.sqlite_backend import save_to_sqlite

        journal = self.journal_for(dataset, str(sqlite_path))
        if journal is None:
            return 0
        watermark = journal.last_seq
        fault_check("checkpoint.save", dataset=dataset, watermark=watermark)
        save_to_sqlite(
            database, sqlite_path,
            extra_meta={CHECKPOINT_META_KEY: str(watermark)},
        )
        # The crash window between save and truncation: replay skips records
        # at or below the watermark now inside the SQLite file, so a death
        # here cannot double-apply.
        fault_check("checkpoint.truncate", dataset=dataset, watermark=watermark)
        remaining = journal.truncate_through(watermark)
        self.metrics.record_checkpoint()
        if self.on_checkpoint is not None:
            with contextlib.suppress(Exception):
                self.on_checkpoint()
        return remaining

    # --------------------------------------------------------------- lifecycle

    async def drain(self) -> None:
        """Wait for in-flight background checkpoints, then close every journal."""
        tasks = list(self._checkpoint_tasks)
        for task in tasks:
            with contextlib.suppress(Exception):
                await task
        self.close()

    def close(self) -> None:
        """Flush and close every open journal handle."""
        for journal in self._journals.values():
            with contextlib.suppress(Exception):
                journal.close()

"""SLO engine: rolling error budgets, burn-rate alerts, adaptive admission.

The SLI is request-level: a request is **SLO-good** when it succeeded (no
503/504) *and* finished within its operation's latency target from
:class:`~repro.config.SLOConfig`; everything else consumes error budget.
Folding latency into availability this way ("good = fast enough") is the
standard reduction — with an availability target of 0.99 the budget permits
1% bad requests, so *budget burning faster than earned* is exactly *the
operation's p99 sits above its latency target*.

Accounting is windowed, not cumulative: observations land in fixed-width
time buckets kept in a per-operation ring that spans the slow burn window,
so burn rates over any lookback up to that span cost O(buckets) with bounded
memory and no decay approximations.  The clock is injectable, which makes
the window math (empty windows, budget exhaustion, recovery) exactly
testable.

Alert semantics follow the multi-window burn-rate pattern:

* **page** — the fast window (default 5 min) burns at >= ``fast_burn_threshold``
  times the sustainable rate: the budget is being consumed acutely *right
  now*.
* **warn** — the slow window (default 1 h) burns at >= ``slow_burn_threshold``:
  a slower leak that will still exhaust the budget well before it renews.
* **ok** — otherwise.

:class:`AdaptiveAdmission` closes the loop described in ROADMAP item 5
("tune admission control against the p99 target instead of queue depth
alone"): an AIMD controller that multiplicatively cuts the effective
queue-depth limit while the ``window`` op burns budget and additively
recovers toward the configured maximum while it does not.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from ..config import SLOConfig

__all__ = ["SLOEngine", "AdaptiveAdmission", "slo_op_for_path"]

#: Alert severity names, index = numeric level exported to Prometheus.
ALERT_LEVELS = ("ok", "warn", "page")


def slo_op_for_path(path: str) -> str | None:
    """Map an HTTP request path to its SLO operation class.

    Returns ``None`` for paths outside the SLO vocabulary (metrics, health,
    debug, the replication feed) — those are not user-facing operations.
    """
    if path == "/window":
        return "window"
    if path == "/keyword":
        return "keyword"
    if path == "/nearest":
        return "nearest"
    if path.startswith("/edit/"):
        return "edit"
    if path == "/session/new" or path.startswith("/session/"):
        return "session"
    return None


class _OpBudget:
    """Windowed good/bad accounting for one operation class.

    Observations land in fixed-width time buckets; the ring spans the slow
    burn window, so any lookback up to that span can be totalled exactly.
    Monotonic lifetime counters ride along for the ``/metrics`` counters.
    """

    __slots__ = (
        "good_total", "bad_total", "errors_503", "errors_504", "slow_total",
        "_buckets",
    )

    def __init__(self) -> None:
        self.good_total = 0
        self.bad_total = 0
        self.errors_503 = 0
        self.errors_504 = 0
        self.slow_total = 0
        # Ring of [bucket_id, good, bad], oldest first.
        self._buckets: deque[list[int]] = deque()

    def add(self, bucket_id: int, good: bool, span_buckets: int) -> None:
        if self._buckets and self._buckets[-1][0] == bucket_id:
            bucket = self._buckets[-1]
        else:
            bucket = [bucket_id, 0, 0]
            self._buckets.append(bucket)
            floor = bucket_id - span_buckets
            while self._buckets and self._buckets[0][0] <= floor:
                self._buckets.popleft()
        bucket[1 if good else 2] += 1

    def window_totals(self, now_id: int, window_buckets: int) -> tuple[int, int]:
        """``(good, bad)`` over the trailing ``window_buckets`` buckets."""
        floor = now_id - window_buckets
        good = bad = 0
        for bucket_id, bucket_good, bucket_bad in reversed(self._buckets):
            if bucket_id <= floor:
                break
            good += bucket_good
            bad += bucket_bad
        return good, bad


class SLOEngine:
    """Turns per-request outcomes into error budgets and burn-rate alerts.

    One engine per process, attached to :class:`ServiceMetrics`; the op
    vocabulary is the fixed request-class set of :func:`slo_op_for_path`, so
    state stays bounded.  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self, config: SLOConfig, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._ops: dict[str, _OpBudget] = {}
        # Bucket width: fine enough for ~30 buckets across the fast window,
        # clamped so neither a tiny test window nor the 1 h default explodes
        # the ring (default: 5 s buckets, 720 per op over the slow window).
        self._bucket_seconds = max(
            0.05, min(5.0, config.fast_burn_window_seconds / 30.0)
        )
        self._span_buckets = self._window_buckets(
            config.slow_burn_window_seconds
        )

    def _window_buckets(self, window_seconds: float) -> int:
        return max(1, int(round(window_seconds / self._bucket_seconds)))

    # --------------------------------------------------------------- recording

    def observe(self, op: str, latency_seconds: float, status: int = 200) -> None:
        """Record one request outcome for ``op``.

        ``status`` 503/504 is an availability failure; a slower-than-target
        success is a latency failure; both consume budget identically.
        """
        target = self.config.latency_target(op)
        error = status in (503, 504)
        slow = target is not None and latency_seconds > target
        good = not error and not slow
        bucket_id = int(self._clock() / self._bucket_seconds)
        with self._lock:
            budget = self._ops.get(op)
            if budget is None:
                budget = self._ops.setdefault(op, _OpBudget())
            budget.add(bucket_id, good, self._span_buckets)
            if good:
                budget.good_total += 1
            else:
                budget.bad_total += 1
            if error:
                if status == 503:
                    budget.errors_503 += 1
                else:
                    budget.errors_504 += 1
            elif slow:
                budget.slow_total += 1

    # --------------------------------------------------------------- budget math

    def burn_rate(self, op: str, window_seconds: float) -> float:
        """Budget consumption over the trailing window, as a multiple of the
        sustainable rate (1.0 = exactly exhausting the budget as it renews;
        0.0 for an op with no observations in the window)."""
        with self._lock:
            budget = self._ops.get(op)
            if budget is None:
                return 0.0
            now_id = int(self._clock() / self._bucket_seconds)
            good, bad = budget.window_totals(
                now_id, self._window_buckets(window_seconds)
            )
        total = good + bad
        if not total:
            return 0.0
        allowed = 1.0 - self.config.availability_target
        return (bad / total) / allowed

    def budget_remaining(self, op: str) -> float:
        """Fraction of the slow-window error budget still unspent, in [0, 1].

        1.0 with no traffic (an idle op has a full budget); clamped at 0.0
        once exhausted — the burn rate says how *fast* it went.
        """
        with self._lock:
            budget = self._ops.get(op)
            if budget is None:
                return 1.0
            now_id = int(self._clock() / self._bucket_seconds)
            good, bad = budget.window_totals(now_id, self._span_buckets)
        total = good + bad
        if not total:
            return 1.0
        allowed = (1.0 - self.config.availability_target) * total
        return max(0.0, 1.0 - bad / allowed)

    def alert(self, op: str) -> str:
        """``"page"`` | ``"warn"`` | ``"ok"`` per the multi-window semantics."""
        config = self.config
        if (
            self.burn_rate(op, config.fast_burn_window_seconds)
            >= config.fast_burn_threshold
        ):
            return "page"
        if (
            self.burn_rate(op, config.slow_burn_window_seconds)
            >= config.slow_burn_threshold
        ):
            return "warn"
        return "ok"

    # ------------------------------------------------------------------ summary

    def ops(self) -> list[str]:
        """Operation classes with at least one observation, sorted."""
        with self._lock:
            return sorted(self._ops)

    def summary(self) -> dict[str, object]:
        """Per-op SLO snapshot for ``/metrics`` (numeric leaves only, so the
        Prometheus renderer and ``repro top`` consume it directly)."""
        config = self.config
        with self._lock:
            ops = sorted(self._ops)
        section: dict[str, object] = {}
        for op in ops:
            with self._lock:
                budget = self._ops[op]
                good_total = budget.good_total
                bad_total = budget.bad_total
                errors_503 = budget.errors_503
                errors_504 = budget.errors_504
                slow_total = budget.slow_total
            alert = self.alert(op)
            entry: dict[str, object] = {
                "good": good_total,
                "bad": bad_total,
                "errors_503": errors_503,
                "errors_504": errors_504,
                "slow": slow_total,
                "burn_fast": self.burn_rate(
                    op, config.fast_burn_window_seconds
                ),
                "burn_slow": self.burn_rate(
                    op, config.slow_burn_window_seconds
                ),
                "budget_remaining": self.budget_remaining(op),
                "alert": alert,
                "alert_level": ALERT_LEVELS.index(alert),
            }
            target = config.latency_target(op)
            if target is not None:
                entry["target_seconds"] = target
            section[op] = entry
        return {
            "availability_target": config.availability_target,
            "ops": section,
        }


class AdaptiveAdmission:
    """AIMD controller mapping budget burn to an effective queue-depth limit.

    Evaluated lazily on the admission path (no extra thread), at most once
    per ``admission_interval_seconds``:

    * burn over ``admission_burn_window_seconds`` > 1.0 — the ``window`` op
      is consuming budget faster than it renews (its p99 is above target) —
      so **multiplicatively** cut the limit by ``admission_backoff_factor``,
      flooring at ``admission_min_queue_depth``: shed load *before* the
      queue converts it into tail latency;
    * otherwise **additively** raise by ``admission_increase_step`` back
      toward the configured ``max_queue_depth`` ceiling.

    The asymmetry (fast cut, slow recovery) is what keeps the limit stable
    at the largest depth the current workload can sustain within target.
    """

    def __init__(
        self,
        config: SLOConfig,
        max_limit: int,
        engine: SLOEngine,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.max_limit = max_limit
        self.min_limit = min(config.admission_min_queue_depth, max_limit)
        self._engine = engine
        self._clock = clock
        self._lock = threading.Lock()
        self._limit = float(max_limit)
        self._last_eval = clock()
        self.increases = 0
        self.decreases = 0

    def effective_limit(self) -> int:
        """The current limit, re-evaluated if the interval has elapsed."""
        config = self.config
        with self._lock:
            now = self._clock()
            if now - self._last_eval >= config.admission_interval_seconds:
                self._last_eval = now
                burn = self._engine.burn_rate(
                    "window", config.admission_burn_window_seconds
                )
                if burn > 1.0:
                    cut = self._limit * config.admission_backoff_factor
                    if cut < self._limit:
                        self._limit = max(float(self.min_limit), cut)
                        self.decreases += 1
                elif self._limit < self.max_limit:
                    self._limit = min(
                        float(self.max_limit),
                        self._limit + config.admission_increase_step,
                    )
                    self.increases += 1
            return max(1, int(self._limit))

    def summary(self) -> dict[str, object]:
        """Controller state for the ``slo.admission`` metrics subsection."""
        with self._lock:
            return {
                "effective_limit": max(1, int(self._limit)),
                "max_limit": self.max_limit,
                "min_limit": self.min_limit,
                "increases": self.increases,
                "decreases": self.decreases,
            }

"""Seeded, deterministic trace-driven workload generator.

Every bench before this PR drove uniform or repeated-window loops; real
exploration traffic looks nothing like that.  This module synthesises it:

* **Zipfian dataset popularity** — session datasets are drawn rank-weighted
  (``1 / rank^s``), so a few datasets absorb most traffic, the regime the
  router's result cache and the coalescer are built for.
* **Pan/zoom random walks** — each session opens an exploration session and
  issues correlated ``pan``/``zoom``/``refresh`` commands with direction
  momentum (a pan tends to continue the previous pan), modelling a user
  dragging across a region rather than teleporting.
* **Keyword bursts** — with configurable probability a session fires a burst
  of direct ``/keyword`` queries drawn zipfian from a small vocabulary
  (users re-search the popular terms), plus occasional ``/nearest`` probes
  at hotspot coordinates; both are exactly the repeat-heavy traffic the
  keyword/kNN result cache earns its keep on.
* **A write trickle** — a small fraction of steps POST ``/edit/add_node``,
  continuously exercising edit-counter cache invalidation under read load.

Generation and execution are separated: :func:`generate_trace` is a pure
function of ``(datasets, LoadgenConfig)`` — the same seed yields the
identical op list, byte for byte — and :func:`run_trace` replays a trace
against any live HTTP endpoint (single-process service or cluster router)
with keep-alive client threads, recording per-op p50/p95/p99, 503/504
rates and achieved QPS into a :class:`LoadReport`.
"""

from __future__ import annotations

import http.client
import json
import queue
import random
import threading
import time
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..obs.histogram import Histogram

__all__ = ["LoadgenConfig", "TraceOp", "LoadReport", "generate_trace", "run_trace"]

#: Placeholder substituted with the runtime-assigned session id.
_SID = "{sid}"

#: Synthetic node ids start here — far above any seeded dataset's ids.
_WRITE_NODE_BASE = 900_000


@dataclass(frozen=True)
class LoadgenConfig:
    """Knobs for one generated workload (all sampling is seed-deterministic).

    ``sessions``
        Exploration sessions to simulate.
    ``ops_per_session``
        Random-walk steps per session (each step emits one or more ops).
    ``concurrency``
        Client threads replaying sessions during :func:`run_trace`.
    ``seed``
        RNG seed — the whole trace is a pure function of it.
    ``zipf_s``
        Zipf exponent for dataset popularity (higher = more skewed).
    ``keyword_burst_prob`` / ``keyword_burst_len``
        Per-step probability of a burst of that many direct ``/keyword``
        queries.
    ``nearest_prob``
        Per-step probability of a ``/nearest`` probe at a hotspot point.
    ``window_prob``
        Per-step probability of a direct (cacheable) ``/window`` query over
        the dataset's default viewport.
    ``zoom_prob``
        Per-step probability the walk zooms instead of panning.
    ``write_fraction``
        Per-step probability of an ``/edit/add_node`` write.
    ``pan_step_px``
        Maximum pan step per axis, in pixels.
    ``keywords``
        Search vocabulary, sampled zipfian by rank.
    ``think_time_seconds``
        Client-side sleep between ops (0 = closed-loop replay).
    """

    sessions: int = 200
    ops_per_session: int = 12
    concurrency: int = 8
    seed: int = 42
    zipf_s: float = 1.2
    keyword_burst_prob: float = 0.15
    keyword_burst_len: int = 3
    nearest_prob: float = 0.1
    window_prob: float = 0.1
    zoom_prob: float = 0.15
    write_fraction: float = 0.02
    pan_step_px: float = 200.0
    keywords: tuple = ("node", "patent", "alpha", "beta", "graph", "probe")
    think_time_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.sessions <= 0:
            raise ConfigurationError("sessions must be positive")
        if self.ops_per_session <= 0:
            raise ConfigurationError("ops_per_session must be positive")
        if self.concurrency <= 0:
            raise ConfigurationError("concurrency must be positive")
        if self.zipf_s <= 0:
            raise ConfigurationError("zipf_s must be positive")
        if self.keyword_burst_len <= 0:
            raise ConfigurationError("keyword_burst_len must be positive")
        for name in (
            "keyword_burst_prob", "nearest_prob", "window_prob", "zoom_prob",
            "write_fraction",
        ):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.pan_step_px <= 0:
            raise ConfigurationError("pan_step_px must be positive")
        if not self.keywords:
            raise ConfigurationError("keywords must be non-empty")
        if self.think_time_seconds < 0:
            raise ConfigurationError("think_time_seconds must be >= 0")


@dataclass(frozen=True)
class TraceOp:
    """One operation of a generated trace.

    ``target`` may contain the ``{sid}`` placeholder, substituted with the
    runtime-assigned session id during replay.  ``body`` is the JSON POST
    payload for writes, ``None`` for GETs.
    """

    op: str
    method: str
    target: str
    body: str | None = None


def _zipf_choice(rng: random.Random, items: list, s: float):
    """Rank-weighted zipfian sample: weight of rank r (0-based) = 1/(r+1)^s."""
    weights = [1.0 / (rank + 1) ** s for rank in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


def _session_trace(
    rng: random.Random, dataset: str, config: LoadgenConfig, write_counter: list
) -> list[TraceOp]:
    """One session's op sequence: open, random-walk steps, close."""
    ops = [TraceOp("session", "GET", f"/session/new?dataset={dataset}")]
    # Direction momentum: a pan continues the previous heading with jitter.
    heading_x = rng.uniform(-1.0, 1.0)
    heading_y = rng.uniform(-1.0, 1.0)
    for _ in range(config.ops_per_session):
        roll = rng.random()
        if roll < config.write_fraction:
            write_counter[0] += 1
            node_id = _WRITE_NODE_BASE + write_counter[0]
            body = json.dumps({
                "node_id": node_id,
                "label": f"loadgen-{node_id}",
                "x": round(rng.uniform(0.0, 500.0), 1),
                "y": round(rng.uniform(0.0, 500.0), 1),
            }, sort_keys=True)
            ops.append(TraceOp(
                "edit", "POST", f"/edit/add_node?dataset={dataset}", body
            ))
            continue
        roll -= config.write_fraction
        if roll < config.keyword_burst_prob:
            for _ in range(config.keyword_burst_len):
                keyword = _zipf_choice(rng, list(config.keywords), config.zipf_s)
                ops.append(TraceOp(
                    "keyword", "GET",
                    f"/keyword?dataset={dataset}&q={keyword}&limit=20",
                ))
            continue
        roll -= config.keyword_burst_prob
        if roll < config.nearest_prob:
            # Hotspot grid: repeated coordinates make kNN caching earnable.
            x = 100 * rng.randint(0, 4)
            y = 100 * rng.randint(0, 4)
            ops.append(TraceOp(
                "nearest", "GET",
                f"/nearest?dataset={dataset}&x={x}&y={y}&k=5",
            ))
            continue
        roll -= config.nearest_prob
        if roll < config.window_prob:
            ops.append(TraceOp(
                "window", "GET", f"/window?dataset={dataset}"
            ))
            continue
        roll -= config.window_prob
        if roll < config.zoom_prob:
            factor = rng.choice((0.7, 0.7, 1.4))
            ops.append(TraceOp(
                "session", "GET", f"/session/{_SID}/zoom?factor={factor}"
            ))
            continue
        # Pan: keep ~the previous heading, occasionally turning.
        if rng.random() < 0.3:
            heading_x = rng.uniform(-1.0, 1.0)
            heading_y = rng.uniform(-1.0, 1.0)
        dx = round(heading_x * rng.uniform(0.3, 1.0) * config.pan_step_px, 1)
        dy = round(heading_y * rng.uniform(0.3, 1.0) * config.pan_step_px, 1)
        ops.append(TraceOp(
            "session", "GET", f"/session/{_SID}/pan?dx={dx}&dy={dy}"
        ))
    ops.append(TraceOp("session", "GET", f"/session/{_SID}/close"))
    return ops


def generate_trace(
    datasets: list[str], config: LoadgenConfig
) -> list[list[TraceOp]]:
    """Generate the full workload: one op list per session.

    Pure and deterministic — the same ``(datasets, config)`` always yields
    the identical trace (asserted by tests; the property the benchmarks
    depend on for comparable fixed-vs-adaptive runs).
    """
    if not datasets:
        raise ConfigurationError("generate_trace needs at least one dataset")
    rng = random.Random(config.seed)
    ranked = sorted(datasets)  # popularity rank = sorted position
    write_counter = [0]
    return [
        _session_trace(
            rng, _zipf_choice(rng, ranked, config.zipf_s), config, write_counter
        )
        for _ in range(config.sessions)
    ]


@dataclass
class _OpStats:
    """Mutable per-op aggregation owned by one client thread (merged later)."""

    count: int = 0
    errors_503: int = 0
    errors_504: int = 0
    errors_other: int = 0
    latency: Histogram = field(default_factory=Histogram)


@dataclass
class LoadReport:
    """Aggregated result of one :func:`run_trace` replay."""

    sessions: int
    ops: int
    wall_seconds: float
    qps: float
    per_op: dict
    errors_503: int
    errors_504: int

    def to_dict(self) -> dict:
        """JSON-ready shape recorded into ``BENCH_slo.json``."""
        return {
            "sessions": self.sessions,
            "ops": self.ops,
            "wall_seconds": round(self.wall_seconds, 3),
            "qps": round(self.qps, 1),
            "errors_503": self.errors_503,
            "errors_504": self.errors_504,
            "per_op": self.per_op,
        }


def _replay_session(
    connection: http.client.HTTPConnection,
    ops: list[TraceOp],
    stats: dict[str, _OpStats],
    think_time: float,
) -> int:
    """Replay one session's ops on a keep-alive connection; returns op count."""
    session_id = None
    executed = 0
    for trace_op in ops:
        target = trace_op.target
        if _SID in target:
            if session_id is None:
                continue  # the open failed; skip the session's stateful ops
            target = target.replace(_SID, session_id)
        op_stats = stats.setdefault(trace_op.op, _OpStats())
        started = time.perf_counter()
        try:
            body = (
                trace_op.body.encode() if trace_op.body is not None else None
            )
            connection.request(trace_op.method, target, body=body)
            response = connection.getresponse()
            payload = response.read()
            status = response.status
        except (OSError, http.client.HTTPException):
            # Connection-level failure: count as unavailability, reconnect.
            status, payload = 503, b""
            connection.close()
        executed += 1
        op_stats.count += 1
        op_stats.latency.record(time.perf_counter() - started)
        if status == 503:
            op_stats.errors_503 += 1
        elif status == 504:
            op_stats.errors_504 += 1
        elif status != 200:
            op_stats.errors_other += 1
        elif trace_op.target.startswith("/session/new"):
            try:
                session_id = json.loads(payload)["session_id"]
            except (ValueError, KeyError):
                session_id = None
        if think_time:
            time.sleep(think_time)
    return executed


def run_trace(
    host: str, port: int, trace: list[list[TraceOp]], config: LoadgenConfig
) -> LoadReport:
    """Replay a generated trace with ``config.concurrency`` client threads.

    Sessions are drawn from a shared queue, so the interleaving is
    load-dependent, but each session's ops stay ordered on one keep-alive
    connection — the closed-loop shape of a real browser tab.
    """
    pending: queue.Queue[list[TraceOp]] = queue.Queue()
    for session_ops in trace:
        pending.put(session_ops)
    num_clients = min(config.concurrency, len(trace))
    barrier = threading.Barrier(num_clients + 1)
    merged_lock = threading.Lock()
    merged: dict[str, _OpStats] = {}
    executed_total = [0]

    def client() -> None:
        local: dict[str, _OpStats] = {}
        executed = 0
        connection = http.client.HTTPConnection(host, port, timeout=60)
        barrier.wait()
        try:
            while True:
                try:
                    session_ops = pending.get_nowait()
                except queue.Empty:
                    break
                executed += _replay_session(
                    connection, session_ops, local, config.think_time_seconds
                )
        finally:
            connection.close()
        with merged_lock:
            executed_total[0] += executed
            for op, op_stats in local.items():
                into = merged.setdefault(op, _OpStats())
                into.count += op_stats.count
                into.errors_503 += op_stats.errors_503
                into.errors_504 += op_stats.errors_504
                into.errors_other += op_stats.errors_other
                into.latency.merge(op_stats.latency)

    threads = [threading.Thread(target=client) for _ in range(num_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    per_op: dict[str, dict] = {}
    errors_503 = errors_504 = 0
    for op in sorted(merged):
        op_stats = merged[op]
        state = op_stats.latency.state()
        per_op[op] = {
            "count": op_stats.count,
            "p50_ms": round(state["p50"] * 1000, 3),
            "p95_ms": round(state["p95"] * 1000, 3),
            "p99_ms": round(state["p99"] * 1000, 3),
            "errors_503": op_stats.errors_503,
            "errors_504": op_stats.errors_504,
            "errors_other": op_stats.errors_other,
            "error_rate": round(
                (op_stats.errors_503 + op_stats.errors_504)
                / max(1, op_stats.count),
                4,
            ),
        }
        errors_503 += op_stats.errors_503
        errors_504 += op_stats.errors_504
    return LoadReport(
        sessions=len(trace),
        ops=executed_total[0],
        wall_seconds=wall,
        qps=executed_total[0] / wall if wall > 0 else 0.0,
        per_op=per_op,
        errors_503=errors_503,
        errors_504=errors_504,
    )

"""Service-level objectives: error budgets, burn-rate alerts, adaptive
admission, and the trace-driven load harness (PR 9).

``slo.py`` holds the measurement side — :class:`SLOEngine` turns per-request
outcomes into rolling error budgets with multi-window burn-rate alerts, and
:class:`AdaptiveAdmission` feeds the budget burn back into the front-end's
queue-depth limit (AIMD).  ``loadgen.py`` holds the synthesis side — a
seeded, deterministic workload generator that replays realistic exploration
sessions against a live service or router and reports tail latencies.
"""

from .loadgen import LoadgenConfig, LoadReport, generate_trace, run_trace
from .slo import AdaptiveAdmission, SLOEngine, slo_op_for_path

__all__ = [
    "AdaptiveAdmission",
    "SLOEngine",
    "slo_op_for_path",
    "LoadgenConfig",
    "LoadReport",
    "generate_trace",
    "run_trace",
]

"""Hierarchical-exploration baseline.

The related work the paper positions itself against (ASK-GraphView, GMine,
Tulip, CGV, ...) explores graphs *vertically*: the graph is recursively
clustered into a tree of abstract super-nodes and the user expands one abstract
node at a time to reveal the enclosed sub-graph.  The paper's criticism is that
such systems "do not support intuitive 'horizontal' exploration (e.g., for
following paths in the graph)" because only one cluster's contents are visible
at a time.

This baseline implements exactly that interaction model so the comparison can
be made concrete: following a path that leaves the currently expanded cluster
requires collapsing and expanding clusters (extra "vertical" operations),
whereas graphVizdb follows the same path with plain window queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..abstraction.merge_layer import label_propagation_communities
from ..errors import GraphVizDBError
from ..graph.model import Graph

__all__ = ["ClusterNode", "HierarchicalExplorer"]


@dataclass
class ClusterNode:
    """One node of the cluster tree."""

    cluster_id: int
    members: list[int] = field(default_factory=list)
    children: list[int] = field(default_factory=list)
    parent: int | None = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        """Leaf clusters contain original graph nodes only."""
        return not self.children


class HierarchicalExplorer:
    """A vertical-only exploration baseline built on recursive clustering.

    Parameters
    ----------
    max_cluster_size:
        Clusters larger than this are recursively re-clustered.
    max_depth:
        Safety bound on the recursion depth.
    """

    def __init__(self, graph: Graph, max_cluster_size: int = 50, max_depth: int = 6,
                 seed: int = 0) -> None:
        if max_cluster_size < 2:
            raise GraphVizDBError("max_cluster_size must be >= 2")
        self.graph = graph
        self.max_cluster_size = max_cluster_size
        self.max_depth = max_depth
        self.seed = seed
        self.clusters: dict[int, ClusterNode] = {}
        self._next_id = 0
        self.root = self._build(sorted(graph.node_ids()), parent=None, depth=0)
        #: Currently expanded cluster (the only one whose contents are visible).
        self.expanded: int = self.root
        #: Number of expand/collapse operations performed (the cost metric).
        self.vertical_operations = 0

    # ----------------------------------------------------------------- building

    def _build(self, members: list[int], parent: int | None, depth: int) -> int:
        cluster_id = self._next_id
        self._next_id += 1
        node = ClusterNode(cluster_id=cluster_id, members=list(members), parent=parent, depth=depth)
        self.clusters[cluster_id] = node
        if len(members) <= self.max_cluster_size or depth >= self.max_depth:
            return cluster_id
        subgraph = self.graph.subgraph(members)
        communities = label_propagation_communities(subgraph, seed=self.seed + depth)
        groups: dict[int, list[int]] = {}
        for node_id, community in communities.items():
            groups.setdefault(community, []).append(node_id)
        if len(groups) <= 1:
            # Clustering made no progress; split arbitrarily to bound cluster size.
            groups = {
                index: members[start:start + self.max_cluster_size]
                for index, start in enumerate(range(0, len(members), self.max_cluster_size))
            }
        for community in sorted(groups):
            child_id = self._build(sorted(groups[community]), parent=cluster_id, depth=depth + 1)
            node.children.append(child_id)
        return cluster_id

    # --------------------------------------------------------------- navigation

    def visible_nodes(self) -> list[int]:
        """Return the graph nodes currently visible (the expanded cluster's members)."""
        return list(self.clusters[self.expanded].members)

    def expand(self, cluster_id: int) -> list[int]:
        """Expand a cluster (one vertical operation) and return its visible members."""
        if cluster_id not in self.clusters:
            raise GraphVizDBError(f"cluster {cluster_id} does not exist")
        self.expanded = cluster_id
        self.vertical_operations += 1
        return self.visible_nodes()

    def collapse(self) -> list[int]:
        """Collapse to the parent cluster (one vertical operation)."""
        parent = self.clusters[self.expanded].parent
        if parent is None:
            return self.visible_nodes()
        self.expanded = parent
        self.vertical_operations += 1
        return self.visible_nodes()

    def cluster_of(self, node_id: int) -> int:
        """Return the deepest leaf cluster containing ``node_id``."""
        current = self.root
        while True:
            node = self.clusters[current]
            if node.is_leaf:
                return current
            for child_id in node.children:
                if node_id in self.clusters[child_id].members:
                    current = child_id
                    break
            else:
                return current

    # -------------------------------------------------------------- path metric

    def operations_to_follow_path(self, path: list[int]) -> int:
        """Count the vertical operations needed to keep a path's nodes visible.

        Every time the next node of the path falls outside the currently
        expanded cluster the user must collapse up to the common ancestor and
        expand down to the next node's cluster.  graphVizdb follows the same
        path with zero vertical operations (window queries track the path on
        the plane), which is the comparison the ablation benchmark reports.
        """
        if not path:
            return 0
        operations = 0
        current_cluster = self.cluster_of(path[0])
        for node_id in path[1:]:
            target_cluster = self.cluster_of(node_id)
            if target_cluster == current_cluster:
                continue
            operations += self._tree_distance(current_cluster, target_cluster)
            current_cluster = target_cluster
        return operations

    def _tree_distance(self, first: int, second: int) -> int:
        """Number of expand/collapse steps between two clusters in the tree."""
        first_ancestors = self._ancestors(first)
        second_ancestors = self._ancestors(second)
        common = set(first_ancestors) & set(second_ancestors)
        best = None
        for candidate in common:
            depth = self.clusters[candidate].depth
            if best is None or depth > self.clusters[best].depth:
                best = candidate
        if best is None:
            return len(first_ancestors) + len(second_ancestors)
        return (
            (self.clusters[first].depth - self.clusters[best].depth)
            + (self.clusters[second].depth - self.clusters[best].depth)
        )

    def _ancestors(self, cluster_id: int) -> list[int]:
        chain = [cluster_id]
        current = cluster_id
        while self.clusters[current].parent is not None:
            current = self.clusters[current].parent  # type: ignore[assignment]
            chain.append(current)
        return chain

    # ------------------------------------------------------------------- stats

    def tree_statistics(self) -> dict[str, int]:
        """Summary of the cluster tree (size, depth, leaves)."""
        leaves = sum(1 for node in self.clusters.values() if node.is_leaf)
        depth = max(node.depth for node in self.clusters.values())
        return {
            "num_clusters": len(self.clusters),
            "num_leaves": leaves,
            "max_depth": depth,
        }

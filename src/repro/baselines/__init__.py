"""Baselines the paper positions graphVizdb against: holistic, hierarchical and sampling-based."""

from .hierarchical import ClusterNode, HierarchicalExplorer
from .holistic import HolisticQueryResult, HolisticVisualizer
from .sampling import (
    ForestFireSampler,
    GraphSampler,
    RandomEdgeSampler,
    RandomNodeSampler,
    SampleQuality,
    sample_quality,
)

__all__ = [
    "ClusterNode",
    "HierarchicalExplorer",
    "HolisticQueryResult",
    "HolisticVisualizer",
    "ForestFireSampler",
    "GraphSampler",
    "RandomEdgeSampler",
    "RandomNodeSampler",
    "SampleQuality",
    "sample_quality",
]

"""Sampling-based visualization baseline.

The paper's related work includes Oracle's approach of "Visualizing large-scale
RDF data using Subsets, Summaries, and Sampling" [11]: instead of preprocessing
the full graph, a small sample is drawn and only the sample is visualised.
This module implements the three standard graph-sampling strategies so the
approach can be compared against graphVizdb's full-graph window queries:

* :class:`RandomNodeSampler` — uniform node sample plus the induced edges;
* :class:`RandomEdgeSampler` — uniform edge sample plus the incident nodes;
* :class:`ForestFireSampler` — Leskovec's forest-fire sampling, which preserves
  community structure and degree skew better than uniform sampling.

:func:`sample_quality` quantifies what a sample loses: coverage of nodes/edges
and the distortion of the degree distribution — the information a user silently
misses when exploring only a sample.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..graph.metrics import average_degree
from ..graph.model import Graph

__all__ = [
    "GraphSampler",
    "RandomNodeSampler",
    "RandomEdgeSampler",
    "ForestFireSampler",
    "SampleQuality",
    "sample_quality",
]


class GraphSampler(ABC):
    """Interface of every sampling strategy."""

    #: Registry-style name; subclasses override.
    name = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    @abstractmethod
    def sample(self, graph: Graph, target_nodes: int) -> Graph:
        """Return a sampled subgraph with roughly ``target_nodes`` nodes."""

    def _validate(self, graph: Graph, target_nodes: int) -> int:
        if target_nodes <= 0:
            raise ValueError("target_nodes must be positive")
        return min(target_nodes, graph.num_nodes)


class RandomNodeSampler(GraphSampler):
    """Uniform random node sample with induced edges."""

    name = "random-node"

    def sample(self, graph: Graph, target_nodes: int) -> Graph:
        target = self._validate(graph, target_nodes)
        rng = random.Random(self.seed)
        chosen = rng.sample(sorted(graph.node_ids()), target)
        return graph.subgraph(chosen, name=f"{graph.name}-node-sample")


class RandomEdgeSampler(GraphSampler):
    """Uniform random edge sample; nodes are those incident to a chosen edge."""

    name = "random-edge"

    def sample(self, graph: Graph, target_nodes: int) -> Graph:
        target = self._validate(graph, target_nodes)
        rng = random.Random(self.seed)
        edges = sorted(graph.edges(), key=lambda edge: edge.key())
        rng.shuffle(edges)
        chosen_nodes: set[int] = set()
        chosen_edges = []
        for edge in edges:
            if len(chosen_nodes) >= target:
                break
            chosen_edges.append(edge)
            chosen_nodes.add(edge.source)
            chosen_nodes.add(edge.target)
        if not chosen_edges:
            # Graph with no edges: fall back to a node sample.
            return RandomNodeSampler(self.seed).sample(graph, target)
        sample = Graph(directed=graph.directed, name=f"{graph.name}-edge-sample")
        for node_id in sorted(chosen_nodes):
            node = graph.node(node_id)
            sample.add_node(node.node_id, node.label, node.node_type, dict(node.properties))
        for edge in chosen_edges:
            sample.add_edge(
                edge.source, edge.target, edge.label, edge.edge_type, edge.weight,
                dict(edge.properties),
            )
        return sample


class ForestFireSampler(GraphSampler):
    """Forest-fire sampling (Leskovec & Faloutsos).

    Starting from random seeds, the "fire" burns a geometrically distributed
    number of untouched neighbours of each burned node, recursively.  The
    resulting sample preserves clustering and the heavy tail of the degree
    distribution much better than uniform node sampling.
    """

    name = "forest-fire"

    def __init__(self, seed: int = 0, forward_probability: float = 0.7) -> None:
        super().__init__(seed)
        if not 0.0 < forward_probability < 1.0:
            raise ValueError("forward_probability must be in (0, 1)")
        self.forward_probability = forward_probability

    def sample(self, graph: Graph, target_nodes: int) -> Graph:
        target = self._validate(graph, target_nodes)
        rng = random.Random(self.seed)
        burned: set[int] = set()
        all_nodes = sorted(graph.node_ids())
        while len(burned) < target:
            seed_node = rng.choice(all_nodes)
            if seed_node in burned:
                continue
            queue = [seed_node]
            burned.add(seed_node)
            while queue and len(burned) < target:
                current = queue.pop(0)
                neighbours = sorted(graph.neighbors(current) - burned)
                if not neighbours:
                    continue
                # Geometric number of neighbours to burn.
                burn_count = 0
                while rng.random() < self.forward_probability:
                    burn_count += 1
                burn_count = min(burn_count, len(neighbours))
                for neighbour in rng.sample(neighbours, burn_count):
                    if len(burned) >= target:
                        break
                    burned.add(neighbour)
                    queue.append(neighbour)
        return graph.subgraph(burned, name=f"{graph.name}-forest-fire")


@dataclass(frozen=True)
class SampleQuality:
    """What a sample preserves — and silently loses — of the original graph."""

    node_coverage: float
    edge_coverage: float
    average_degree_original: float
    average_degree_sample: float

    @property
    def degree_ratio(self) -> float:
        """Sample average degree relative to the original (1.0 = preserved)."""
        if self.average_degree_original == 0:
            return 1.0
        return self.average_degree_sample / self.average_degree_original

    def as_dict(self) -> dict[str, float]:
        """Return a JSON-serialisable dictionary."""
        return {
            "node_coverage": self.node_coverage,
            "edge_coverage": self.edge_coverage,
            "average_degree_original": self.average_degree_original,
            "average_degree_sample": self.average_degree_sample,
            "degree_ratio": self.degree_ratio,
        }


def sample_quality(original: Graph, sample: Graph) -> SampleQuality:
    """Measure how much of the original graph a sample covers."""
    return SampleQuality(
        node_coverage=sample.num_nodes / original.num_nodes if original.num_nodes else 1.0,
        edge_coverage=sample.num_edges / original.num_edges if original.num_edges else 1.0,
        average_degree_original=average_degree(original),
        average_degree_sample=average_degree(sample),
    )

"""Holistic baseline: the whole graph in memory, no spatial index.

The paper's introduction criticises "holistic" approaches (Gephi, Fenfire)
whose visualisation "result[s] in prohibitive memory requirements" because the
whole graph must be loaded in main memory.  This baseline reproduces that
architecture as faithfully as the comparison needs:

* the full graph plus a full layout are materialised in memory up front;
* a window query is a linear scan over every edge (no R-tree);
* memory usage can be estimated to contrast with graphVizdb's working set,
  which is only the indexes plus the rows of the current window.

The ablation benchmark compares window-query latency and the estimated working
set of this baseline against the indexed database.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from ..graph.model import Graph
from ..layout.base import Layout
from ..layout.registry import create_layout
from ..spatial.geometry import LineSegment, Rect

__all__ = ["HolisticQueryResult", "HolisticVisualizer"]


@dataclass(frozen=True)
class HolisticQueryResult:
    """Result of one linear-scan window query."""

    window: Rect
    edges: list[tuple[int, int]]
    nodes: list[int]
    scan_seconds: float

    @property
    def num_objects(self) -> int:
        """Nodes + edges in the window."""
        return len(self.edges) + len(self.nodes)


class HolisticVisualizer:
    """Whole-graph, in-memory visualiser used as the paper's implicit baseline."""

    def __init__(self, graph: Graph, layout: Layout | None = None, layout_name: str = "force_directed",
                 layout_iterations: int = 30, seed: int = 42) -> None:
        self.graph = graph
        if layout is None:
            algorithm = create_layout(layout_name, iterations=layout_iterations, seed=seed)
            layout = algorithm.layout(graph)
        self.layout = layout

    # ----------------------------------------------------------------- queries

    def window_query(self, window: Rect) -> HolisticQueryResult:
        """Linear scan over every edge and node; no index involved."""
        started = time.perf_counter()
        edges: list[tuple[int, int]] = []
        nodes_in_window: set[int] = set()
        for edge in self.graph.edges():
            segment = LineSegment(
                self.layout.position(edge.source),
                self.layout.position(edge.target),
                directed=self.graph.directed,
            )
            if segment.intersects_rect(window):
                edges.append((edge.source, edge.target))
                nodes_in_window.add(edge.source)
                nodes_in_window.add(edge.target)
        for node_id in self.graph.node_ids():
            if window.contains_point(self.layout.position(node_id)):
                nodes_in_window.add(node_id)
        scan_seconds = time.perf_counter() - started
        return HolisticQueryResult(
            window=window,
            edges=edges,
            nodes=sorted(nodes_in_window),
            scan_seconds=scan_seconds,
        )

    # ------------------------------------------------------------------ memory

    def estimated_memory_bytes(self) -> int:
        """Rough estimate of the resident working set of the holistic approach.

        Counts the Python-object sizes of all nodes, edges and layout points —
        the quantities that must be resident for the UI to work at all.  The
        estimate is conservative (it ignores dict overheads), which only favours
        the baseline in the comparison.
        """
        total = 0
        for node in self.graph.nodes():
            total += sys.getsizeof(node.node_id) + sys.getsizeof(node.label)
        for edge in self.graph.edges():
            total += sys.getsizeof(edge.source) + sys.getsizeof(edge.target)
            total += sys.getsizeof(edge.label)
        total += len(self.layout.positions) * (2 * sys.getsizeof(0.0))
        return total

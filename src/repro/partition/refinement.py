"""Boundary refinement for k-way partitions.

A greedy Fiduccia–Mattheyses-style pass: boundary nodes are repeatedly moved to
the neighbouring partition with the largest cut gain, subject to a balance
constraint.  The multilevel partitioner runs this after projecting a coarse
partition to each finer level; it can also be used standalone to improve any
partitioning.
"""

from __future__ import annotations

from collections import defaultdict

from ..graph.model import Graph
from .base import PartitionResult

__all__ = ["refine", "refine_assignment"]


def _partition_weights(
    graph: Graph, assignment: dict[int, int], num_partitions: int,
    weights: dict[int, int],
) -> list[int]:
    totals = [0] * num_partitions
    for node_id, part in assignment.items():
        totals[part] += weights.get(node_id, 1)
    return totals


def _neighbour_partition_degrees(
    graph: Graph, node_id: int, assignment: dict[int, int]
) -> dict[int, float]:
    """Return, for ``node_id``, the summed edge weight towards each partition."""
    degrees: dict[int, float] = defaultdict(float)
    for edge in graph.incident_edges(node_id):
        other = edge.other(node_id)
        if other == node_id:
            continue
        degrees[assignment[other]] += edge.weight
    return degrees


def refine_assignment(
    graph: Graph,
    assignment: dict[int, int],
    num_partitions: int,
    max_passes: int = 4,
    balance_factor: float = 1.05,
    node_weights: dict[int, int] | None = None,
) -> dict[int, int]:
    """Greedily move boundary nodes to reduce the weighted edge cut.

    Parameters
    ----------
    max_passes:
        Maximum number of full sweeps over the boundary; each pass stops early
        when no improving move exists.
    balance_factor:
        A move is allowed only if the destination partition stays below
        ``balance_factor * ideal_weight``.
    node_weights:
        Optional node weights (coarse nodes carry the number of merged original
        nodes); defaults to 1 per node.

    Returns the refined assignment (a new dictionary).
    """
    weights = node_weights or {}
    assignment = dict(assignment)
    total_weight = sum(weights.get(node_id, 1) for node_id in graph.node_ids())
    ideal = total_weight / num_partitions if num_partitions else 1.0
    max_weight = balance_factor * ideal
    partition_weight = _partition_weights(graph, assignment, num_partitions, weights)

    for _ in range(max_passes):
        moved = 0
        # Visit boundary nodes in a deterministic order.
        for node_id in sorted(graph.node_ids()):
            current_part = assignment[node_id]
            degrees = _neighbour_partition_degrees(graph, node_id, assignment)
            if not degrees:
                continue
            internal = degrees.get(current_part, 0.0)
            # Best destination by gain = external degree - internal degree.
            best_part = current_part
            best_gain = 0.0
            node_weight = weights.get(node_id, 1)
            for part, external in degrees.items():
                if part == current_part:
                    continue
                gain = external - internal
                if gain <= best_gain:
                    continue
                if partition_weight[part] + node_weight > max_weight:
                    continue
                # Never empty a partition completely.
                if partition_weight[current_part] - node_weight <= 0:
                    continue
                best_gain = gain
                best_part = part
            if best_part != current_part:
                assignment[node_id] = best_part
                partition_weight[current_part] -= node_weight
                partition_weight[best_part] += node_weight
                moved += 1
        if moved == 0:
            break
    return assignment


def refine(
    result: PartitionResult,
    max_passes: int = 4,
    balance_factor: float = 1.05,
) -> PartitionResult:
    """Return a refined copy of ``result`` (never worse in edge cut)."""
    refined = refine_assignment(
        result.graph,
        result.assignment,
        result.num_partitions,
        max_passes=max_passes,
        balance_factor=balance_factor,
    )
    candidate = PartitionResult(
        graph=result.graph, assignment=refined, num_partitions=result.num_partitions
    )
    if candidate.edge_cut() <= result.edge_cut():
        return candidate
    return result

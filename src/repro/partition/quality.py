"""Partition quality metrics.

Used by tests (the multilevel partitioner must beat random partitioning on
community-structured graphs) and by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import PartitionResult

__all__ = ["PartitionQuality", "evaluate_partition", "edge_cut", "balance"]


@dataclass(frozen=True)
class PartitionQuality:
    """Quality summary of a k-way partitioning."""

    num_partitions: int
    edge_cut: int
    cut_ratio: float
    balance: float
    min_size: int
    max_size: int

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable dictionary."""
        return {
            "num_partitions": self.num_partitions,
            "edge_cut": self.edge_cut,
            "cut_ratio": self.cut_ratio,
            "balance": self.balance,
            "min_size": self.min_size,
            "max_size": self.max_size,
        }


def edge_cut(result: PartitionResult) -> int:
    """Return the number of edges crossing partition boundaries."""
    return result.edge_cut()


def balance(result: PartitionResult) -> float:
    """Return the balance factor: ``max_size / ideal_size`` (1.0 is perfect)."""
    sizes = result.partition_sizes()
    if not sizes or result.graph.num_nodes == 0:
        return 1.0
    ideal = result.graph.num_nodes / result.num_partitions
    return max(sizes) / ideal if ideal > 0 else 1.0


def evaluate_partition(result: PartitionResult) -> PartitionQuality:
    """Compute the full quality summary for a partitioning."""
    sizes = result.partition_sizes()
    cut = result.edge_cut()
    total_edges = result.graph.num_edges
    return PartitionQuality(
        num_partitions=result.num_partitions,
        edge_cut=cut,
        cut_ratio=cut / total_edges if total_edges else 0.0,
        balance=balance(result),
        min_size=min(sizes) if sizes else 0,
        max_size=max(sizes) if sizes else 0,
    )

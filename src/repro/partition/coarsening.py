"""Graph coarsening via heavy-edge matching.

The multilevel partitioning scheme of Karypis & Kumar (the paper's reference
[13], the algorithm behind Metis) repeatedly coarsens the graph by collapsing a
maximal matching of heavy edges, partitions the small coarse graph, and then
projects + refines the partition back through the levels.  This module provides
the coarsening half: :func:`heavy_edge_matching` and :func:`contract`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph.model import Graph

__all__ = ["CoarseLevel", "heavy_edge_matching", "contract", "coarsen"]


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    Attributes
    ----------
    graph:
        The coarse graph at this level.  Node weights (number of original nodes
        merged into each coarse node) are stored in ``properties["weight"]`` and
        edge weights accumulate the multiplicity of collapsed edges.
    fine_to_coarse:
        Mapping from the finer level's node ids to this level's node ids.
    """

    graph: Graph
    fine_to_coarse: dict[int, int]


def node_weight(graph: Graph, node_id: int) -> int:
    """Return the coarsening weight of a node (1 for original nodes)."""
    return int(graph.node(node_id).properties.get("weight", 1))


def heavy_edge_matching(graph: Graph, seed: int = 0) -> dict[int, int]:
    """Compute a maximal matching preferring heavy edges.

    Returns a mapping ``node -> matched partner``; unmatched nodes map to
    themselves.  Nodes are visited in random order (deterministic via ``seed``)
    and matched to their heaviest unmatched neighbour, the classic HEM heuristic.
    """
    rng = random.Random(seed)
    order = sorted(graph.node_ids())
    rng.shuffle(order)
    matched: dict[int, int] = {}
    for node_id in order:
        if node_id in matched:
            continue
        best_partner = None
        best_weight = -1.0
        for edge in graph.incident_edges(node_id):
            partner = edge.other(node_id)
            if partner == node_id or partner in matched:
                continue
            if edge.weight > best_weight:
                best_weight = edge.weight
                best_partner = partner
        if best_partner is None:
            matched[node_id] = node_id
        else:
            matched[node_id] = best_partner
            matched[best_partner] = node_id
    return matched


def contract(graph: Graph, matching: dict[int, int]) -> CoarseLevel:
    """Contract matched node pairs into single coarse nodes.

    Edge weights between coarse nodes accumulate the weights of all collapsed
    fine edges; self-edges created by contraction are dropped.
    """
    coarse = Graph(directed=False, name=f"{graph.name}-coarse")
    fine_to_coarse: dict[int, int] = {}
    next_id = 0
    for node_id in sorted(graph.node_ids()):
        if node_id in fine_to_coarse:
            continue
        partner = matching.get(node_id, node_id)
        coarse_id = next_id
        next_id += 1
        weight = node_weight(graph, node_id)
        members = [node_id]
        fine_to_coarse[node_id] = coarse_id
        if partner != node_id and partner not in fine_to_coarse:
            fine_to_coarse[partner] = coarse_id
            weight += node_weight(graph, partner)
            members.append(partner)
        coarse.add_node(coarse_id, label=f"c{coarse_id}", properties={
            "weight": weight,
            "members": members,
        })

    accumulated: dict[tuple[int, int], float] = {}
    for edge in graph.edges():
        a = fine_to_coarse[edge.source]
        b = fine_to_coarse[edge.target]
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        accumulated[key] = accumulated.get(key, 0.0) + edge.weight
    for (a, b), weight in accumulated.items():
        coarse.add_edge(a, b, weight=weight)
    return CoarseLevel(graph=coarse, fine_to_coarse=fine_to_coarse)


def coarsen(
    graph: Graph,
    target_nodes: int = 100,
    max_levels: int = 20,
    seed: int = 0,
) -> list[CoarseLevel]:
    """Build the full coarsening hierarchy down to roughly ``target_nodes`` nodes.

    Coarsening stops when the graph is small enough, when the maximum number of
    levels is reached, or when a level fails to shrink the graph by at least 5%
    (which happens on graphs with no matching structure, e.g. stars).
    The input graph itself is *not* included in the returned list.
    """
    levels: list[CoarseLevel] = []
    # Work on an undirected weighted view of the input.
    current = Graph(directed=False, name=graph.name)
    for node in graph.nodes():
        current.add_node(node.node_id, label=node.label, properties={"weight": 1})
    for edge in graph.edges():
        if edge.source == edge.target:
            continue
        if current.has_edge(edge.source, edge.target):
            existing = current.edge(edge.source, edge.target)
            existing.weight += edge.weight
        else:
            current.add_edge(edge.source, edge.target, weight=edge.weight)

    for level_index in range(max_levels):
        if current.num_nodes <= target_nodes:
            break
        matching = heavy_edge_matching(current, seed=seed + level_index)
        level = contract(current, matching)
        if level.graph.num_nodes >= current.num_nodes * 0.95:
            break
        levels.append(level)
        current = level.graph
    return levels

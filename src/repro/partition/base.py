"""Partitioner interfaces and result types.

Preprocessing Step 1 of the paper divides the input graph "into a set of k
distinct sub-graphs ... a k-way partitioning that aims at minimizing the number
of edges between the different sub-graphs".  Every partitioner implements
:class:`Partitioner` and produces a :class:`PartitionResult` which the layout
and organizer steps consume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import PartitioningError
from ..graph.model import Edge, Graph

__all__ = ["Partitioner", "PartitionResult"]


@dataclass
class PartitionResult:
    """The outcome of a k-way partitioning.

    Attributes
    ----------
    graph:
        The partitioned graph (not copied).
    assignment:
        Mapping ``node_id -> partition index`` in ``[0, k)``.
    num_partitions:
        Number of partitions ``k``.
    """

    graph: Graph
    assignment: dict[int, int]
    num_partitions: int
    _members: list[list[int]] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise PartitioningError("num_partitions must be positive")
        for node_id, part in self.assignment.items():
            if not 0 <= part < self.num_partitions:
                raise PartitioningError(
                    f"node {node_id} assigned to invalid partition {part}"
                )
        missing = [n for n in self.graph.node_ids() if n not in self.assignment]
        if missing:
            raise PartitioningError(
                f"{len(missing)} nodes have no partition assignment (e.g. {missing[:3]})"
            )

    # -------------------------------------------------------------- membership

    def members(self, partition: int) -> list[int]:
        """Return the node ids assigned to ``partition``."""
        return list(self._member_lists()[partition])

    def partition_of(self, node_id: int) -> int:
        """Return the partition index of ``node_id``."""
        try:
            return self.assignment[node_id]
        except KeyError:
            raise PartitioningError(f"node {node_id} is not assigned") from None

    def partition_sizes(self) -> list[int]:
        """Return the number of nodes per partition."""
        return [len(member_list) for member_list in self._member_lists()]

    def _member_lists(self) -> list[list[int]]:
        if self._members is None:
            members: list[list[int]] = [[] for _ in range(self.num_partitions)]
            for node_id, part in self.assignment.items():
                members[part].append(node_id)
            for member_list in members:
                member_list.sort()
            self._members = members
        return self._members

    # ---------------------------------------------------------------- subgraphs

    def subgraphs(self) -> list[Graph]:
        """Return the induced subgraph of each partition (crossing edges dropped).

        These are the per-partition graphs Step 2 lays out independently,
        "without considering the edges that cross different partitions".
        """
        return [
            self.graph.subgraph(self.members(part), name=f"{self.graph.name}-part{part}")
            for part in range(self.num_partitions)
        ]

    # ------------------------------------------------------------ crossing edges

    def crossing_edges(self) -> list[Edge]:
        """Return every edge whose endpoints live in different partitions."""
        return [
            edge
            for edge in self.graph.edges()
            if self.assignment[edge.source] != self.assignment[edge.target]
        ]

    def edge_cut(self) -> int:
        """Return the number of crossing edges (the k-way cut objective)."""
        return len(self.crossing_edges())

    def crossing_edge_counts(self) -> list[int]:
        """Return, per partition, the number of crossing edges incident to it.

        This is the quantity the organizer's greedy algorithm sorts partitions by.
        """
        counts = [0] * self.num_partitions
        for edge in self.crossing_edges():
            counts[self.assignment[edge.source]] += 1
            counts[self.assignment[edge.target]] += 1
        return counts

    def crossing_matrix(self) -> list[list[int]]:
        """Return a ``k x k`` matrix of crossing-edge counts between partition pairs."""
        matrix = [[0] * self.num_partitions for _ in range(self.num_partitions)]
        for edge in self.crossing_edges():
            a = self.assignment[edge.source]
            b = self.assignment[edge.target]
            matrix[a][b] += 1
            matrix[b][a] += 1
        return matrix


class Partitioner(ABC):
    """Interface of every k-way partitioner."""

    #: Registry name; subclasses override.
    name = "base"

    @abstractmethod
    def partition(self, graph: Graph, num_partitions: int) -> PartitionResult:
        """Partition ``graph`` into ``num_partitions`` parts."""

    def _validate(self, graph: Graph, num_partitions: int) -> int:
        """Clamp and validate ``num_partitions`` against the graph size."""
        if num_partitions <= 0:
            raise PartitioningError("num_partitions must be positive")
        if graph.num_nodes == 0:
            raise PartitioningError("cannot partition an empty graph")
        return min(num_partitions, graph.num_nodes)

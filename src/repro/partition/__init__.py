"""Partitioning substrate: multilevel k-way partitioner and baselines (Metis stand-in)."""

from .base import Partitioner, PartitionResult
from .coarsening import CoarseLevel, coarsen, contract, heavy_edge_matching
from .multilevel import MultilevelPartitioner, create_partitioner
from .quality import PartitionQuality, balance, edge_cut, evaluate_partition
from .refinement import refine, refine_assignment
from .simple import BFSPartitioner, HashPartitioner, RandomPartitioner

__all__ = [
    "Partitioner",
    "PartitionResult",
    "CoarseLevel",
    "coarsen",
    "contract",
    "heavy_edge_matching",
    "MultilevelPartitioner",
    "create_partitioner",
    "PartitionQuality",
    "balance",
    "edge_cut",
    "evaluate_partition",
    "refine",
    "refine_assignment",
    "BFSPartitioner",
    "HashPartitioner",
    "RandomPartitioner",
]

"""Multilevel k-way partitioner (Metis stand-in).

Implements the multilevel scheme of Karypis & Kumar cited by the paper:

1. **Coarsening** — collapse heavy-edge matchings until the graph is small
   (:mod:`repro.partition.coarsening`).
2. **Initial partitioning** — partition the coarsest graph with BFS region
   growing, respecting coarse node weights.
3. **Uncoarsening + refinement** — project the partition back level by level,
   running greedy boundary refinement at each level
   (:mod:`repro.partition.refinement`).

The result minimises the number of crossing edges, which is exactly what the
paper needs: fewer crossing edges make the organizer's placement objective
easier and the final drawing less tangled.
"""

from __future__ import annotations

from ..graph.model import Graph
from .base import Partitioner, PartitionResult
from .coarsening import coarsen, node_weight
from .refinement import refine_assignment
from .simple import BFSPartitioner

__all__ = ["MultilevelPartitioner", "create_partitioner"]


class MultilevelPartitioner(Partitioner):
    """Metis-like multilevel k-way partitioner.

    Parameters
    ----------
    coarsen_target:
        Stop coarsening when the coarse graph has at most
        ``max(coarsen_target, 4 * k)`` nodes.
    balance_factor:
        Allowed imbalance during refinement.
    refinement_passes:
        Number of refinement sweeps per level.
    seed:
        Seed for the randomised matching and initial partitioning.
    """

    name = "multilevel"

    def __init__(
        self,
        coarsen_target: int = 200,
        balance_factor: float = 1.05,
        refinement_passes: int = 4,
        seed: int = 42,
    ) -> None:
        self.coarsen_target = coarsen_target
        self.balance_factor = balance_factor
        self.refinement_passes = refinement_passes
        self.seed = seed

    def partition(self, graph: Graph, num_partitions: int) -> PartitionResult:
        k = self._validate(graph, num_partitions)
        if k == 1:
            assignment = {node_id: 0 for node_id in graph.node_ids()}
            return PartitionResult(graph=graph, assignment=assignment, num_partitions=1)

        # 1. Coarsen.
        target = max(self.coarsen_target, 4 * k)
        levels = coarsen(graph, target_nodes=target, seed=self.seed)
        coarsest = levels[-1].graph if levels else None

        # 2. Initial partitioning on the coarsest graph (or directly on the
        #    input when it is already small).
        if coarsest is None:
            initial_graph = graph
        else:
            initial_graph = coarsest
        initial = BFSPartitioner(seed=self.seed).partition(initial_graph, k)
        assignment = dict(initial.assignment)

        # Refinement at the coarsest level (weight-aware when coarse nodes carry
        # merged-node weights; plain when the input graph was small enough to be
        # partitioned directly).
        if coarsest is not None:
            weights = {
                node_id: node_weight(coarsest, node_id) for node_id in coarsest.node_ids()
            }
            assignment = refine_assignment(
                coarsest, assignment, k,
                max_passes=self.refinement_passes,
                balance_factor=self.balance_factor,
                node_weights=weights,
            )
        else:
            assignment = refine_assignment(
                graph, assignment, k,
                max_passes=max(self.refinement_passes, 8),
                balance_factor=self.balance_factor,
            )

        # 3. Uncoarsen: project through the levels, refining at each one.
        for level_index in range(len(levels) - 1, -1, -1):
            level = levels[level_index]
            finer_graph = graph if level_index == 0 else levels[level_index - 1].graph
            projected = {
                fine_id: assignment[coarse_id]
                for fine_id, coarse_id in level.fine_to_coarse.items()
            }
            if level_index == 0:
                weights = None
            else:
                weights = {
                    node_id: node_weight(finer_graph, node_id)
                    for node_id in finer_graph.node_ids()
                }
            assignment = refine_assignment(
                finer_graph, projected, k,
                max_passes=self.refinement_passes,
                balance_factor=self.balance_factor,
                node_weights=weights,
            )

        # Nodes never seen during coarsening (isolated nodes in a directed view)
        # keep a default assignment of partition 0.
        for node_id in graph.node_ids():
            assignment.setdefault(node_id, 0)

        # Guarantee no partition is empty (can happen on tiny/degenerate graphs).
        assignment = _fill_empty_partitions(graph, assignment, k)
        return PartitionResult(graph=graph, assignment=assignment, num_partitions=k)


def _fill_empty_partitions(
    graph: Graph, assignment: dict[int, int], k: int
) -> dict[int, int]:
    """Move nodes from the largest partitions into any empty ones."""
    sizes: dict[int, list[int]] = {part: [] for part in range(k)}
    for node_id, part in assignment.items():
        sizes.setdefault(part, []).append(node_id)
    empty = [part for part in range(k) if not sizes.get(part)]
    if not empty:
        return assignment
    assignment = dict(assignment)
    for part in empty:
        donor = max(range(k), key=lambda p: len(sizes.get(p, [])))
        if not sizes.get(donor):
            continue
        node_id = sizes[donor].pop()
        assignment[node_id] = part
        sizes[part] = [node_id]
    return assignment


def create_partitioner(method: str, seed: int = 42) -> Partitioner:
    """Create a partitioner by registry name.

    Supported names: ``"multilevel"`` (default in the pipeline), ``"bfs"``,
    ``"random"``, ``"hash"``.
    """
    from .simple import HashPartitioner, RandomPartitioner

    method = method.lower()
    if method == "multilevel":
        return MultilevelPartitioner(seed=seed)
    if method == "bfs":
        return BFSPartitioner(seed=seed)
    if method == "random":
        return RandomPartitioner(seed=seed)
    if method == "hash":
        return HashPartitioner()
    from ..errors import PartitioningError

    raise PartitioningError(
        f"unknown partitioning method {method!r}; "
        "expected one of: multilevel, bfs, random, hash"
    )

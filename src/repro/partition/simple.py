"""Simple partitioners: random, hash and BFS region growing.

These serve two purposes: they are baselines for the partitioning-quality
ablation (the multilevel partitioner should produce a much smaller edge cut on
community-structured graphs), and the BFS partitioner is also used as the
initial partitioning inside the multilevel algorithm.
"""

from __future__ import annotations

import random
from collections import deque

from ..graph.model import Graph
from .base import Partitioner, PartitionResult

__all__ = ["RandomPartitioner", "HashPartitioner", "BFSPartitioner"]


class RandomPartitioner(Partitioner):
    """Assign each node to a uniformly random partition (worst-case baseline)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def partition(self, graph: Graph, num_partitions: int) -> PartitionResult:
        k = self._validate(graph, num_partitions)
        rng = random.Random(self.seed)
        node_ids = sorted(graph.node_ids())
        assignment: dict[int, int] = {}
        # Guarantee every partition is non-empty by dealing the first k nodes
        # round-robin, then assigning the rest randomly.
        for index, node_id in enumerate(node_ids):
            if index < k:
                assignment[node_id] = index
            else:
                assignment[node_id] = rng.randrange(k)
        return PartitionResult(graph=graph, assignment=assignment, num_partitions=k)


class HashPartitioner(Partitioner):
    """Assign nodes by ``node_id % k`` (deterministic, ignores structure)."""

    name = "hash"

    def partition(self, graph: Graph, num_partitions: int) -> PartitionResult:
        k = self._validate(graph, num_partitions)
        node_ids = sorted(graph.node_ids())
        assignment = {
            node_id: index % k if index < k else node_id % k
            for index, node_id in enumerate(node_ids)
        }
        # The first k nodes are dealt round-robin so no partition is empty even
        # when ids are not contiguous.
        return PartitionResult(graph=graph, assignment=assignment, num_partitions=k)


class BFSPartitioner(Partitioner):
    """Grow balanced regions with breadth-first search.

    Nodes are consumed in BFS order from successive seed nodes; a partition is
    closed once it reaches the target size ``ceil(n / k)``.  This respects
    locality (neighbouring nodes tend to share a partition) without any
    refinement, and is the initial partitioning used by the multilevel
    algorithm at the coarsest level.
    """

    name = "bfs"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def partition(self, graph: Graph, num_partitions: int) -> PartitionResult:
        k = self._validate(graph, num_partitions)
        target = -(-graph.num_nodes // k)  # ceil division
        assignment: dict[int, int] = {}
        unassigned = set(graph.node_ids())
        rng = random.Random(self.seed)
        current_partition = 0
        current_size = 0
        queue: deque[int] = deque()

        while unassigned:
            if not queue:
                # Pick a new seed: prefer a neighbour of already assigned nodes is
                # not necessary here; a deterministic random pick keeps regions
                # compact enough.
                seed_node = min(unassigned) if rng.random() < 0.5 else rng.choice(sorted(unassigned))
                queue.append(seed_node)
            node_id = queue.popleft()
            if node_id not in unassigned:
                continue
            # Close the partition when it is full (never close the last one).
            if current_size >= target and current_partition < k - 1:
                current_partition += 1
                current_size = 0
            assignment[node_id] = current_partition
            unassigned.discard(node_id)
            current_size += 1
            for neighbour in sorted(graph.neighbors(node_id)):
                if neighbour in unassigned:
                    queue.append(neighbour)

        # If fewer than k partitions ended up used (tiny graphs), move one node
        # out of the largest partition into each empty one so every partition
        # index < k is non-empty (k <= n is guaranteed by _validate).
        members: dict[int, list[int]] = {p: [] for p in range(k)}
        for node_id, part in assignment.items():
            members[part].append(node_id)
        for partition in range(k):
            if members[partition]:
                continue
            donor = max(range(k), key=lambda p: len(members[p]))
            node_id = members[donor].pop()
            assignment[node_id] = partition
            members[partition].append(node_id)
        return PartitionResult(graph=graph, assignment=assignment, num_partitions=k)

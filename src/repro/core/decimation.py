"""Server-side window decimation (per-window level of detail).

When the user zooms far out on a dense region, a single window can contain more
elements than the client can render responsively — the situation the paper
handles by switching to a more abstract layer.  Decimation is the complementary
per-window mechanism: given the rows of one window and an object budget, keep
the most important rows and drop the rest, so the client always receives a
renderable payload even on layer 0.

Importance follows the same philosophy as the abstraction criteria: a row
(edge) is as important as its most important endpoint, where endpoint
importance is the node's degree *within the window* (hubs and their spokes
survive, peripheral detail goes first).  Isolated-node rows are kept last.

The decimator reports what it dropped so the client can show a "N more edges
hidden at this zoom level" indicator instead of silently truncating.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..storage.schema import EdgeRow

__all__ = ["DecimationResult", "decimate_rows"]


@dataclass(frozen=True)
class DecimationResult:
    """The outcome of decimating one window's rows."""

    rows: list[EdgeRow]
    dropped_rows: int
    budget: int

    @property
    def was_decimated(self) -> bool:
        """``True`` when at least one row was dropped."""
        return self.dropped_rows > 0

    @property
    def kept_rows(self) -> int:
        """Number of rows kept."""
        return len(self.rows)


def decimate_rows(rows: list[EdgeRow], max_rows: int) -> DecimationResult:
    """Keep at most ``max_rows`` rows, preferring edges incident to in-window hubs.

    The selection is deterministic: rows are ranked by
    ``(importance, -row_id)`` descending, where importance is the larger
    in-window degree of the row's two endpoints; ties therefore resolve to the
    lower ``row_id``.  The returned rows keep their original (row id) order so
    the payload builder's node-before-edge streaming behaviour is unaffected.
    """
    if max_rows < 0:
        raise ValueError("max_rows must be >= 0")
    if len(rows) <= max_rows:
        return DecimationResult(rows=list(rows), dropped_rows=0, budget=max_rows)

    degree_in_window: Counter[int] = Counter()
    for row in rows:
        if row.is_node_row():
            continue
        degree_in_window[row.node1_id] += 1
        degree_in_window[row.node2_id] += 1

    def importance(row: EdgeRow) -> tuple[int, int]:
        if row.is_node_row():
            # Isolated nodes rank below every edge of equal endpoint degree.
            return (degree_in_window.get(row.node1_id, 0), 0)
        endpoint_importance = max(
            degree_in_window.get(row.node1_id, 0),
            degree_in_window.get(row.node2_id, 0),
        )
        return (endpoint_importance, 1)

    ranked = sorted(rows, key=lambda row: (*importance(row), -row.row_id), reverse=True)
    kept = ranked[:max_rows]
    kept.sort(key=lambda row: row.row_id)
    return DecimationResult(
        rows=kept,
        dropped_rows=len(rows) - len(kept),
        budget=max_rows,
    )

"""JSON API layer.

The original prototype is a web application: the JavaScript frontend calls
HTTP endpoints that return JSON.  This module provides the equivalent
transport-agnostic request handlers — plain functions taking and returning
JSON-serialisable dictionaries — so the library can be mounted behind any HTTP
framework (Flask, FastAPI, the standard-library ``http.server``) without
additional glue, and so the request/response contract can be tested directly.

Endpoints (mirroring the Web UI panels):

==================  =======================================================
``list_datasets``   the dataset selector
``dataset_info``    the Statistics panel (dataset level)
``window``          the Visualization panel (interactive navigation)
``layer``           the Layer panel (multi-level exploration)
``search``          the Search panel (keyword search)
``focus``           "Focus on node" / click on a search result
``node``            the Information panel
``birdview``        the Birdview panel
``edit``            the Edit panel
==================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..client.birdview import Birdview
from ..errors import GraphVizDBError
from ..spatial.geometry import Point, Rect
from .editing import GraphEditor
from .json_builder import GraphPayload
from .query_manager import WindowQueryResult
from .server import GraphVizDBServer

__all__ = ["ApiError", "GraphVizDBApi"]


@dataclass(frozen=True)
class ApiError(Exception):
    """A request-level error with an HTTP-like status code."""

    status: int
    message: str

    def as_dict(self) -> dict[str, object]:
        """Return the JSON error body."""
        return {"error": self.message, "status": self.status}


def _payload_dict(result: WindowQueryResult) -> dict[str, object]:
    payload: GraphPayload = result.payload
    return {
        "layer": result.layer,
        "window": {
            "min_x": result.window.min_x,
            "min_y": result.window.min_y,
            "max_x": result.window.max_x,
            "max_y": result.window.max_y,
        },
        "nodes": payload.nodes,
        "edges": payload.edges,
        "num_objects": payload.num_objects,
        "chunks": len(result.chunks),
        "timings_ms": {
            "db_query": result.db_query_seconds * 1000.0,
            "filter": result.filter_seconds * 1000.0,
            "build_json": result.json_build_seconds * 1000.0,
        },
    }


class GraphVizDBApi:
    """Request handlers over a :class:`GraphVizDBServer`.

    Every handler validates its inputs, translates library exceptions into
    :class:`ApiError` (status 400/404) and returns a JSON-serialisable dict.
    """

    def __init__(self, server: GraphVizDBServer) -> None:
        self.server = server
        self._editors: dict[str, GraphEditor] = {}

    # ------------------------------------------------------------------ helpers

    def _handle(self, dataset: str):
        try:
            return self.server.dataset(dataset)
        except GraphVizDBError as exc:
            raise ApiError(404, str(exc)) from exc

    @staticmethod
    def _require(request: dict[str, object], *keys: str) -> None:
        missing = [key for key in keys if key not in request]
        if missing:
            raise ApiError(400, f"missing required field(s): {', '.join(missing)}")

    @staticmethod
    def _window_from(request: dict[str, object]) -> Rect:
        try:
            return Rect(
                float(request["min_x"]), float(request["min_y"]),
                float(request["max_x"]), float(request["max_y"]),
            )
        except (KeyError, TypeError, ValueError, GraphVizDBError) as exc:
            raise ApiError(400, f"invalid window: {exc}") from exc

    # ---------------------------------------------------------------- endpoints

    def list_datasets(self) -> dict[str, object]:
        """``GET /datasets`` — the dataset selector."""
        datasets = []
        for name in self.server.datasets():
            handle = self.server.dataset(name)
            datasets.append({
                "name": name,
                "num_nodes": handle.graph.num_nodes,
                "num_edges": handle.graph.num_edges,
                "layers": handle.database.layers(),
            })
        return {"datasets": datasets}

    def dataset_info(self, dataset: str) -> dict[str, object]:
        """``GET /datasets/<name>`` — the Statistics panel."""
        handle = self._handle(dataset)
        stats = self.server.dataset_statistics(dataset)
        layers = [
            self.server.layer_statistics(dataset, layer).as_dict()
            for layer in handle.database.layers()
        ]
        return {"name": dataset, "statistics": stats.as_dict(), "layers": layers}

    def window(self, dataset: str, request: dict[str, object]) -> dict[str, object]:
        """``POST /datasets/<name>/window`` — interactive navigation.

        Request fields: ``min_x``, ``min_y``, ``max_x``, ``max_y`` and an
        optional ``layer`` (default 0).
        """
        handle = self._handle(dataset)
        self._require(request, "min_x", "min_y", "max_x", "max_y")
        window = self._window_from(request)
        layer = int(request.get("layer", 0))
        try:
            result = handle.query_manager.window_query(window, layer=layer)
        except GraphVizDBError as exc:
            raise ApiError(404, str(exc)) from exc
        return _payload_dict(result)

    def layer(self, dataset: str, request: dict[str, object]) -> dict[str, object]:
        """``POST /datasets/<name>/layer`` — multi-level exploration.

        Request fields: the window plus ``layer`` (required).
        """
        self._require(request, "layer")
        return self.window(dataset, request)

    def search(self, dataset: str, request: dict[str, object]) -> dict[str, object]:
        """``POST /datasets/<name>/search`` — keyword search.

        Request fields: ``keyword``; optional ``layer`` (default 0), ``limit``.
        """
        handle = self._handle(dataset)
        self._require(request, "keyword")
        keyword = str(request["keyword"])
        layer = int(request.get("layer", 0))
        limit = request.get("limit")
        try:
            result = handle.query_manager.keyword_search(
                keyword, layer=layer, limit=int(limit) if limit is not None else None
            )
        except GraphVizDBError as exc:
            raise ApiError(400, str(exc)) from exc
        return {
            "keyword": keyword,
            "layer": layer,
            "matches": result.matches,
            "num_matches": result.num_matches,
        }

    def focus(self, dataset: str, request: dict[str, object]) -> dict[str, object]:
        """``POST /datasets/<name>/focus`` — centre the viewport on a node.

        Request fields: ``node_id``; optional ``layer``, ``viewport_width``,
        ``viewport_height`` (pixels).
        """
        handle = self._handle(dataset)
        self._require(request, "node_id")
        layer = int(request.get("layer", 0))
        viewport = handle.query_manager.default_viewport(layer=layer)
        if "viewport_width" in request and "viewport_height" in request:
            viewport = viewport.resized(
                int(request["viewport_width"]), int(request["viewport_height"])
            )
        try:
            centered, result = handle.query_manager.focus_on_node(
                int(request["node_id"]), viewport, layer=layer
            )
        except GraphVizDBError as exc:
            raise ApiError(404, str(exc)) from exc
        response = _payload_dict(result)
        response["center"] = {"x": centered.center.x, "y": centered.center.y}
        return response

    def node(self, dataset: str, node_id: int, layer: int = 0) -> dict[str, object]:
        """``GET /datasets/<name>/nodes/<id>`` — the Information panel."""
        handle = self._handle(dataset)
        try:
            return handle.query_manager.node_info(int(node_id), layer=layer)
        except GraphVizDBError as exc:
            raise ApiError(404, str(exc)) from exc

    def birdview(
        self, dataset: str, layer: int = 0, width: int = 64, height: int = 24
    ) -> dict[str, object]:
        """``GET /datasets/<name>/birdview`` — the Birdview panel."""
        handle = self._handle(dataset)
        try:
            birdview = Birdview.from_database(
                handle.database, layer=layer, width=width, height=height
            )
        except GraphVizDBError as exc:
            raise ApiError(400, str(exc)) from exc
        return {
            "bounds": {
                "min_x": birdview.bounds.min_x,
                "min_y": birdview.bounds.min_y,
                "max_x": birdview.bounds.max_x,
                "max_y": birdview.bounds.max_y,
            },
            "width": birdview.width,
            "height": birdview.height,
            "grid": birdview.grid,
        }

    def edit(self, dataset: str, request: dict[str, object]) -> dict[str, object]:
        """``POST /datasets/<name>/edit`` — the Edit panel.

        Request fields: ``operation`` (``rename_node`` / ``move_node`` /
        ``add_edge`` / ``delete_edge``) plus the operation's arguments.
        """
        self._handle(dataset)
        self._require(request, "operation")
        editor = self._editors.setdefault(dataset, self.server.create_editor(dataset))
        operation = str(request["operation"])
        try:
            if operation == "rename_node":
                self._require(request, "node_id", "label")
                touched = editor.rename_node(int(request["node_id"]), str(request["label"]))
            elif operation == "move_node":
                self._require(request, "node_id", "x", "y")
                touched = editor.move_node(
                    int(request["node_id"]),
                    Point(float(request["x"]), float(request["y"])),
                )
            elif operation == "add_edge":
                self._require(request, "source", "target")
                editor.add_edge(
                    int(request["source"]), int(request["target"]),
                    label=str(request.get("label", "")),
                )
                touched = 1
            elif operation == "delete_edge":
                self._require(request, "source", "target")
                touched = editor.delete_edge(int(request["source"]), int(request["target"]))
            else:
                raise ApiError(400, f"unknown edit operation {operation!r}")
        except GraphVizDBError as exc:
            raise ApiError(400, str(exc)) from exc
        return {
            "operation": operation,
            "rows_touched": touched,
            "journal_length": len(editor.journal),
        }

"""Window-result caching and prefetching.

An extension beyond the paper's prototype motivated by its own observation that
client-server communication dominates interactive latency: consecutive window
queries issued while panning overlap heavily, so the server can (a) cache
recently evaluated windows and answer repeat/contained requests without hitting
the R-tree, and (b) prefetch the windows adjacent to the current viewport so a
subsequent pan is served from memory.

The cache is deliberately simple — an LRU of :class:`CachedWindow` entries per
abstraction layer, with containment-based reuse — and is wired into
:class:`CachingQueryManager`, a drop-in wrapper around
:class:`~repro.core.query_manager.QueryManager`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..spatial.geometry import Rect
from ..storage.schema import EdgeRow
from .filters import FilterSpec
from .query_manager import QueryManager, WindowQueryResult
from .viewport import Viewport

__all__ = ["CacheStatistics", "WindowCache", "CachingQueryManager"]


@dataclass
class CacheStatistics:
    """Hit/miss counters, exposed for tests and the ablation benchmark."""

    hits: int = 0
    misses: int = 0
    prefetches: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class _CachedWindow:
    """One cached window: the covered rectangle and the rows inside it."""

    layer: int
    window: Rect
    rows: tuple[EdgeRow, ...] = field(hash=False)


class WindowCache:
    """LRU cache of window-query results with containment reuse.

    A lookup for window ``W`` on layer ``L`` is a hit if some cached entry on
    ``L`` *contains* ``W``; the cached rows are then filtered down to the exact
    window with the same segment/rectangle test the layer table uses, so cached
    answers are always identical to fresh ones.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStatistics()
        self._entries: OrderedDict[int, _CachedWindow] = OrderedDict()
        self._next_key = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, layer: int, window: Rect) -> list[EdgeRow] | None:
        """Return the rows for ``window`` if a containing entry is cached."""
        for key in reversed(self._entries):
            entry = self._entries[key]
            if entry.layer != layer:
                continue
            if entry.window.contains_rect(window):
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return [
                    row for row in entry.rows if row.segment().intersects_rect(window)
                ]
        self.stats.misses += 1
        return None

    def store(self, layer: int, window: Rect, rows: list[EdgeRow]) -> None:
        """Insert a freshly evaluated window, evicting the LRU entry if full."""
        key = self._next_key
        self._next_key += 1
        self._entries[key] = _CachedWindow(layer=layer, window=window, rows=tuple(rows))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, layer: int | None = None) -> None:
        """Drop all entries (or only those of one layer) — called after edits."""
        if layer is None:
            self._entries.clear()
            return
        for key in [k for k, entry in self._entries.items() if entry.layer == layer]:
            del self._entries[key]


class CachingQueryManager:
    """A :class:`QueryManager` wrapper that adds caching and pan prefetching.

    Parameters
    ----------
    query_manager:
        The underlying (uncached) query manager.
    capacity:
        Number of windows kept in the cache.
    prefetch_margin:
        When > 0, every miss also evaluates and caches a window enlarged by this
        fraction of its size in every direction, so small pans hit the cache.
    """

    def __init__(
        self,
        query_manager: QueryManager,
        capacity: int = 16,
        prefetch_margin: float = 0.5,
    ) -> None:
        if prefetch_margin < 0:
            raise ValueError("prefetch_margin must be >= 0")
        self.inner = query_manager
        self.cache = WindowCache(capacity=capacity)
        self.prefetch_margin = prefetch_margin

    @property
    def database(self):
        """The underlying database (kept for API parity with QueryManager)."""
        return self.inner.database

    @property
    def client_config(self):
        """The underlying client configuration."""
        return self.inner.client_config

    def window_query(
        self,
        window: Rect,
        layer: int = 0,
        filters: FilterSpec | None = None,
    ) -> WindowQueryResult:
        """Cached version of :meth:`QueryManager.window_query`.

        Filtered queries bypass the cache (filters are cheap and rarely repeat),
        so cached and uncached paths always return identical results.
        """
        if filters is not None and not filters.is_empty():
            return self.inner.window_query(window, layer=layer, filters=filters)

        cached_rows = self.cache.lookup(layer, window)
        if cached_rows is not None:
            return self._result_from_rows(
                window, layer, cached_rows, trusted_rows=False
            )

        if self.prefetch_margin > 0:
            # Fetch the enlarged window through the batched rows entry point:
            # no payload is built for the (larger) prefetch window, only for
            # the exact window the client asked for.
            margin = max(window.width, window.height) * self.prefetch_margin
            prefetch_window = window.expanded(margin)
            table = self.inner.database.table(layer)
            # Guard captured before the fetch: see LayerTable.fragment_fill_guard.
            fragments = table.fragment_fill_guard()
            started = time.perf_counter()
            (prefetched_rows,) = self.inner.rows_for_windows(
                [prefetch_window], layer=layer
            )
            db_seconds = time.perf_counter() - started
            self.cache.store(layer, prefetch_window, prefetched_rows)
            self.cache.stats.prefetches += 1
            started = time.perf_counter()
            segment_of = table.segment_of
            rows = [
                row for row in prefetched_rows
                if segment_of(row).intersects_rect(window)
            ]
            filter_seconds = time.perf_counter() - started
            return self._result_from_rows(
                window, layer, rows,
                db_seconds=db_seconds, filter_seconds=filter_seconds,
                fragments=fragments,
            )

        result = self.inner.window_query(window, layer=layer)
        self.cache.store(layer, window, result.rows)
        return result

    def viewport_query(
        self, viewport: Viewport, layer: int = 0, filters: FilterSpec | None = None
    ) -> WindowQueryResult:
        """Cached viewport query."""
        return self.window_query(viewport.window(), layer=layer, filters=filters)

    def invalidate(self, layer: int | None = None) -> None:
        """Invalidate the cache after edits."""
        self.cache.invalidate(layer)

    # Delegate the non-window operations unchanged.
    def keyword_search(self, *args, **kwargs):
        """See :meth:`QueryManager.keyword_search`."""
        return self.inner.keyword_search(*args, **kwargs)

    def focus_on_node(self, *args, **kwargs):
        """See :meth:`QueryManager.focus_on_node`."""
        return self.inner.focus_on_node(*args, **kwargs)

    def neighborhood(self, *args, **kwargs):
        """See :meth:`QueryManager.neighborhood`."""
        return self.inner.neighborhood(*args, **kwargs)

    def node_info(self, *args, **kwargs):
        """See :meth:`QueryManager.node_info`."""
        return self.inner.node_info(*args, **kwargs)

    def default_viewport(self, layer: int = 0) -> Viewport:
        """See :meth:`QueryManager.default_viewport`."""
        return self.inner.default_viewport(layer=layer)

    def change_layer(self, viewport: Viewport, new_layer: int, filters=None):
        """Cached layer switch (same window, different layer table)."""
        return self.window_query(viewport.window(), layer=new_layer, filters=filters)

    # ------------------------------------------------------------------ helpers

    def _result_from_rows(
        self,
        window: Rect,
        layer: int,
        rows: list[EdgeRow],
        db_seconds: float = 0.0,
        filter_seconds: float = 0.0,
        trusted_rows: bool = True,
        fragments=None,
    ) -> WindowQueryResult:
        """Build a WindowQueryResult from cached rows (JSON work still happens).

        ``trusted_rows`` marks rows that came straight from the table (the
        prefetch path); rows replayed from the window cache may be stale after
        an edit, so their fragment misses must not be written back into the
        table's authoritative fragment cache.  The prefetch path passes its
        own ``fragments`` guard, captured before the rows were fetched.
        """
        from .json_builder import build_payload, table_fragments
        from .streaming import stream_payload

        table = self.inner.database.table(layer)
        if fragments is None:
            fragments = (
                table.fragment_fill_guard()
                if trusted_rows
                else table_fragments(table, populate=False)
            )
        started = time.perf_counter()
        payload = build_payload(rows, fragments=fragments)
        chunks = list(stream_payload(payload, self.inner.client_config.chunk_size))
        json_seconds = time.perf_counter() - started
        return WindowQueryResult(
            layer=layer,
            window=window,
            rows=rows,
            payload=payload,
            chunks=chunks,
            db_query_seconds=db_seconds,
            json_build_seconds=json_seconds,
            filter_seconds=filter_seconds,
        )

"""Viewport model: pixel <-> plane coordinate mapping and zoom handling.

The client tracks its viewing window in canvas pixels; the server evaluates
window queries in plane coordinates.  At zoom level 1.0 one plane unit equals
one pixel; zooming out (< 1.0) means each pixel covers more plane units, so the
server-side window grows — "the size of the window (rectangle) that is sent to
the server is decreased/increased proportionally according to the zoom level".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import ClientConfig
from ..errors import QueryError
from ..spatial.geometry import Point, Rect

__all__ = ["Viewport"]


@dataclass(frozen=True)
class Viewport:
    """The client's current view of the plane.

    Attributes
    ----------
    center:
        Plane coordinates at the centre of the screen.
    width_px / height_px:
        Size of the client canvas in pixels.
    zoom:
        Zoom level; 1.0 means one plane unit per pixel, 2.0 means the user
        zoomed in (each plane unit spans two pixels, the window shrinks).
    """

    center: Point
    width_px: int
    height_px: int
    zoom: float = 1.0

    def __post_init__(self) -> None:
        if self.width_px <= 0 or self.height_px <= 0:
            raise QueryError("viewport dimensions must be positive")
        if self.zoom <= 0:
            raise QueryError("zoom must be positive")

    # ------------------------------------------------------------------ window

    def window(self) -> Rect:
        """Return the plane-coordinate window covered by the viewport."""
        plane_width = self.width_px / self.zoom
        plane_height = self.height_px / self.zoom
        return Rect.from_center(self.center, plane_width, plane_height)

    # -------------------------------------------------------------- navigation

    def panned(self, dx_px: float, dy_px: float) -> "Viewport":
        """Return the viewport after panning by ``(dx_px, dy_px)`` pixels."""
        return replace(
            self,
            center=Point(self.center.x + dx_px / self.zoom, self.center.y + dy_px / self.zoom),
        )

    def moved_to(self, center: Point) -> "Viewport":
        """Return the viewport re-centred on ``center`` (plane coordinates)."""
        return replace(self, center=center)

    def zoomed(self, factor: float, config: ClientConfig | None = None) -> "Viewport":
        """Return the viewport with its zoom multiplied by ``factor`` (clamped)."""
        if factor <= 0:
            raise QueryError("zoom factor must be positive")
        new_zoom = self.zoom * factor
        if config is not None:
            new_zoom = min(max(new_zoom, config.min_zoom), config.max_zoom)
        return replace(self, zoom=new_zoom)

    def resized(self, width_px: int, height_px: int) -> "Viewport":
        """Return the viewport with a new canvas size."""
        return replace(self, width_px=width_px, height_px=height_px)

    # ----------------------------------------------------------- pixel mapping

    def plane_to_pixel(self, point: Point) -> tuple[float, float]:
        """Map plane coordinates to canvas pixel coordinates (origin at top-left)."""
        window = self.window()
        px = (point.x - window.min_x) * self.zoom
        py = (point.y - window.min_y) * self.zoom
        return px, py

    def pixel_to_plane(self, px: float, py: float) -> Point:
        """Map canvas pixel coordinates back to plane coordinates."""
        window = self.window()
        return Point(window.min_x + px / self.zoom, window.min_y + py / self.zoom)

    @classmethod
    def from_config(cls, config: ClientConfig, center: Point | None = None) -> "Viewport":
        """Create a viewport sized from a :class:`ClientConfig`."""
        return cls(
            center=center or Point(0.0, 0.0),
            width_px=config.viewport_width,
            height_px=config.viewport_height,
        )

"""Query monitoring.

The paper's evaluation is a one-off measurement campaign; a production
deployment needs the same numbers continuously.  :class:`QueryLog` records
online operations (window queries, keyword searches) with their timing
breakdown and result size, and produces the aggregate statistics an operator
would watch: per-layer query counts, latency percentiles, average objects per
window.  :class:`ExplorationSession` accepts a log instance so every
interaction of a session is recorded automatically.

Memory discipline (PR 8): the per-query record lists are bounded deques —
a long-lived ``repro serve`` must not grow a Python list per query — while
every aggregate (counts, per-layer breakdown, mean objects, latency
percentiles) stays exact via plain counters plus a streaming
:class:`~repro.obs.histogram.Histogram`.  The recent-record deques exist only
for debugging/inspection.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..obs.histogram import Histogram
from .query_manager import KeywordSearchResult, WindowQueryResult

__all__ = ["WindowQueryRecord", "KeywordQueryRecord", "QueryLog", "ServiceMetrics"]


@dataclass(frozen=True)
class WindowQueryRecord:
    """One recorded window query."""

    layer: int
    window_area: float
    num_rows: int
    num_objects: int
    db_query_seconds: float
    json_build_seconds: float
    filter_seconds: float = 0.0

    @property
    def server_seconds(self) -> float:
        """Total server-side time (DB + filtering + JSON)."""
        return self.db_query_seconds + self.filter_seconds + self.json_build_seconds


@dataclass(frozen=True)
class KeywordQueryRecord:
    """One recorded keyword search."""

    layer: int
    keyword: str
    num_matches: int
    search_seconds: float


class QueryLog:
    """Accumulates query records and computes summary statistics.

    The per-record deques keep only the most recent ``max_records`` entries
    (the memory bound a long-lived server needs); the aggregate statistics —
    counts, per-layer breakdown, mean objects per window — are maintained as
    exact running totals, and latency percentiles fall back to the streaming
    histogram once records have been evicted.
    """

    def __init__(self, max_records: int = 4096) -> None:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.max_records = max_records
        self.window_queries: deque[WindowQueryRecord] = deque(maxlen=max_records)
        self.keyword_queries: deque[KeywordQueryRecord] = deque(maxlen=max_records)
        self.latency = Histogram()
        self._window_count = 0
        self._keyword_count = 0
        self._objects_total = 0
        self._layer_counts: dict[int, int] = {}

    # ---------------------------------------------------------------- recording

    def record_window(self, result: WindowQueryResult) -> WindowQueryRecord:
        """Record a window query result and return the created record."""
        record = WindowQueryRecord(
            layer=result.layer,
            window_area=result.window.area,
            num_rows=len(result.rows),
            num_objects=result.num_objects,
            db_query_seconds=result.db_query_seconds,
            json_build_seconds=result.json_build_seconds,
            filter_seconds=result.filter_seconds,
        )
        self.window_queries.append(record)
        self.latency.record(record.server_seconds)
        self._window_count += 1
        self._objects_total += record.num_objects
        self._layer_counts[record.layer] = self._layer_counts.get(record.layer, 0) + 1
        return record

    def record_search(self, result: KeywordSearchResult) -> KeywordQueryRecord:
        """Record a keyword search result and return the created record."""
        record = KeywordQueryRecord(
            layer=result.layer,
            keyword=result.keyword,
            num_matches=result.num_matches,
            search_seconds=result.search_seconds,
        )
        self.keyword_queries.append(record)
        self._keyword_count += 1
        return record

    def clear(self) -> None:
        """Drop every record and reset the aggregates."""
        self.window_queries.clear()
        self.keyword_queries.clear()
        self.latency.clear()
        self._window_count = 0
        self._keyword_count = 0
        self._objects_total = 0
        self._layer_counts.clear()

    # ----------------------------------------------------------------- summary

    @property
    def num_window_queries(self) -> int:
        """Number of recorded window queries (exact, beyond the deque bound)."""
        return self._window_count

    @property
    def num_keyword_queries(self) -> int:
        """Number of recorded keyword searches (exact, beyond the deque bound)."""
        return self._keyword_count

    def queries_per_layer(self) -> dict[int, int]:
        """Return ``layer -> number of window queries`` (exact running counts)."""
        return dict(self._layer_counts)

    def latency_percentiles(
        self, percentiles: tuple[float, ...] = (0.5, 0.9, 0.99)
    ) -> dict[float, float]:
        """Return server-side latency percentiles (seconds) over window queries.

        Exact (sorted-sample) as long as no record has been evicted from the
        bounded deque; afterwards, read from the streaming histogram — still
        correct to within one log-bucket width over the *full* history.
        """
        for percentile in percentiles:
            if not 0.0 <= percentile <= 1.0:
                raise ValueError("percentiles must lie in [0, 1]")
        if not self._window_count:
            return {p: 0.0 for p in percentiles}
        if len(self.window_queries) == self._window_count:
            latencies = sorted(record.server_seconds for record in self.window_queries)
            result: dict[float, float] = {}
            for percentile in percentiles:
                index = min(
                    len(latencies) - 1,
                    max(0, int(round(percentile * (len(latencies) - 1)))),
                )
                result[percentile] = latencies[index]
            return result
        return {
            p: self.latency.percentile(p) if p > 0.0 else 0.0 for p in percentiles
        }

    def average_objects_per_window(self) -> float:
        """Return the mean number of objects per window query (exact)."""
        if not self._window_count:
            return 0.0
        return self._objects_total / self._window_count

    def summary(self) -> dict[str, object]:
        """Return the full JSON-serialisable monitoring summary."""
        percentiles = self.latency_percentiles()
        return {
            "num_window_queries": self.num_window_queries,
            "num_keyword_queries": self.num_keyword_queries,
            "queries_per_layer": self.queries_per_layer(),
            "server_latency_seconds": {
                "p50": percentiles.get(0.5, 0.0),
                "p90": percentiles.get(0.9, 0.0),
                "p99": percentiles.get(0.99, 0.0),
            },
            "average_objects_per_window": self.average_objects_per_window(),
        }


class ServiceMetrics:
    """Thread-safe counters for the concurrent serving subsystem.

    One instance is shared by the front-end (admission control), the window
    coalescer, the dataset pool and the maintenance scheduler, so
    :meth:`summary` is the single operator view of the serving layer: queue
    depth and rejections, coalescing effectiveness, pool hit rate and
    background repack activity.
    """

    def __init__(self, histograms_enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self.histograms_enabled = histograms_enabled
        # SLO tracking (PR 9): attached via configure_slo(); None until the
        # front-end or router wires it from SLOConfig.  The admission
        # controller reference only exists under adaptive admission.
        self.slo = None
        self.admission = None
        # Streaming latency histograms per operation class ("window",
        # "keyword", ...) and per phase ("window.db", "proxy", ...): O(1)
        # record, mergeable across the fleet (see repro.obs.histogram).
        self.latency: dict[str, Histogram] = {}
        self.requests_admitted = 0
        self.requests_completed = 0
        self.requests_rejected = 0
        self.queue_depth: dict[str, int] = {}
        self.completed_by_dataset: dict[str, int] = {}
        self.peak_queue_depth = 0
        self.coalesced_batches = 0
        self.coalesced_requests = 0
        self.duplicate_window_hits = 0
        self.pool_hits = 0
        self.pool_misses = 0
        self.pool_evictions = 0
        self.repack_runs = 0
        # Cluster-router counters (zero outside cluster deployments): the
        # cross-request window cache, proxied traffic and fleet supervision.
        self.window_cache_hits = 0
        self.window_cache_misses = 0
        self.window_cache_invalidations = 0
        self.proxied_requests = 0
        self.proxy_retries = 0
        self.proxy_stale_retries = 0
        self.edit_retries = 0
        self.circuit_opens = 0
        self.degraded_reads = 0
        self.worker_restarts = 0
        self.session_failovers = 0
        self.deadline_rejections = 0
        # Keyword / kNN repeat-rate observation (the "measure before caching"
        # question): how much of that router traffic re-asks a recent target.
        self.keyword_requests = 0
        self.keyword_repeats = 0
        self.nearest_requests = 0
        self.nearest_repeats = 0
        # Keyword / kNN result-cache hits (PR 9: the repeat rates above
        # justified caching them; hit rate = hits / *_requests).
        self.keyword_cache_hits = 0
        self.nearest_cache_hits = 0
        # Durable-write-path counters (zero on read-only deployments).
        self.writes_applied = 0
        self.writes_deduplicated = 0
        self.journal_appends = 0
        self.journal_fsyncs = 0
        self.journal_replayed_records = 0
        self.checkpoint_runs = 0
        self.checkpoint_failures = 0
        self.read_only_transitions = 0
        self.read_only_rejections = 0
        # Replication counters.  Worker side: feed polls, records re-applied
        # from the owner's journal stream, full resyncs (gap past the feed
        # floor).  Router side: reads answered by an in-bound replica and
        # replica promotions after owner death (with the last/worst observed
        # promotion latency).
        self.replication_polls = 0
        self.replication_records_applied = 0
        self.replication_resyncs = 0
        self.replica_reads = 0
        self.promotions = 0
        self.last_promotion_ms = 0.0
        self.peak_promotion_ms = 0.0
        # Resource accounting (PR 10).  ``memory_last`` holds the latest
        # sampler tick's byte gauges ("rss_bytes" plus one "<component>_bytes"
        # per registered attribution source); merge_summaries sums them across
        # workers (fleet footprint) and maxes ``peak_rss_bytes`` (worst single
        # process).  Profile counters count sampler activity, not overhead.
        self.memory_samples = 0
        self.memory_peak_rss = 0
        self.memory_last: dict[str, int] = {"rss_bytes": 0}
        self.profile_runs = 0
        self.profile_samples = 0

    # ---------------------------------------------------------------- admission

    def try_admit(self, dataset: str, limit: int) -> int | None:
        """Atomically admit one request unless the dataset is at ``limit``.

        This is the authoritative queue-depth counter — the front-end's
        admission decision and the ``/metrics`` snapshot read the same state
        under the same lock.  Returns the new depth when admitted, ``None``
        (counting a rejection) when the dataset is saturated.
        """
        with self._lock:
            depth = self.queue_depth.get(dataset, 0)
            if depth >= limit:
                self.requests_rejected += 1
                return None
            self.requests_admitted += 1
            depth += 1
            self.queue_depth[dataset] = depth
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
            return depth

    def record_completed(self, dataset: str) -> None:
        """Count one finished (or failed) request leaving the dataset's queue."""
        with self._lock:
            self.requests_completed += 1
            self.completed_by_dataset[dataset] = (
                self.completed_by_dataset.get(dataset, 0) + 1
            )
            depth = self.queue_depth.get(dataset, 0) - 1
            if depth > 0:
                self.queue_depth[dataset] = depth
            else:
                self.queue_depth.pop(dataset, None)

    # ------------------------------------------------------------------ latency

    def record_latency(self, op: str, value: float) -> None:
        """Record one observation into the operation class's histogram.

        ``op`` names are a small fixed vocabulary (operation classes and
        their phases — see ``docs/observability.md``), so the dict stays
        bounded.  No-op when histograms are disabled.
        """
        if not self.histograms_enabled:
            return
        histogram = self.latency.get(op)
        if histogram is None:
            with self._lock:
                histogram = self.latency.setdefault(op, Histogram())
        histogram.record(value)

    def latency_histogram(self, op: str) -> Histogram | None:
        """The operation class's histogram, if anything has been recorded."""
        return self.latency.get(op)

    def current_queue_depth(self, dataset: str) -> int:
        """The dataset's current admitted-request count."""
        with self._lock:
            return self.queue_depth.get(dataset, 0)

    # --------------------------------------------------------------- coalescing

    def record_batch(self, num_requests: int, num_unique: int) -> None:
        """Count one dispatched window batch of ``num_requests`` requests."""
        with self._lock:
            self.coalesced_batches += 1
            self.coalesced_requests += num_requests
            self.duplicate_window_hits += num_requests - num_unique

    @property
    def coalesce_ratio(self) -> float:
        """Mean window requests served per index dispatch (1.0 = no batching)."""
        with self._lock:
            if not self.coalesced_batches:
                return 0.0
            return self.coalesced_requests / self.coalesced_batches

    # --------------------------------------------------------------------- pool

    def record_pool_hit(self) -> None:
        """Count one pool lookup served by an already-open dataset."""
        with self._lock:
            self.pool_hits += 1

    def record_pool_miss(self) -> None:
        """Count one pool lookup that had to open the dataset from SQLite."""
        with self._lock:
            self.pool_misses += 1

    def record_pool_eviction(self) -> None:
        """Count one dataset evicted from the pool (capacity or idle)."""
        with self._lock:
            self.pool_evictions += 1

    # -------------------------------------------------------------- maintenance

    def record_repack(self) -> None:
        """Count one background repack performed by the scheduler."""
        with self._lock:
            self.repack_runs += 1

    # ------------------------------------------------------------------ cluster

    def record_cache_hit(self, op: str = "window") -> None:
        """Count one request answered from the router's result cache,
        attributed to its operation class (window / keyword / nearest)."""
        with self._lock:
            if op == "keyword":
                self.keyword_cache_hits += 1
            elif op == "nearest":
                self.nearest_cache_hits += 1
            else:
                self.window_cache_hits += 1

    def record_cache_miss(self, op: str = "window") -> None:
        """Count one cacheable request that had to go to a worker.  Only
        windows keep a dedicated miss counter; keyword/kNN hit rates read
        against their request counters (``keyword_requests`` etc.)."""
        if op != "window":
            return
        with self._lock:
            self.window_cache_misses += 1

    def record_cache_invalidation(self, entries: int = 1) -> None:
        """Count ``entries`` cached results dropped by edit-driven invalidation."""
        with self._lock:
            self.window_cache_invalidations += entries

    def record_proxied(self) -> None:
        """Count one request proxied to a worker by the cluster router."""
        with self._lock:
            self.proxied_requests += 1

    def record_proxy_retry(self) -> None:
        """Count one proxied request re-routed after its worker failed."""
        with self._lock:
            self.proxy_retries += 1

    def record_proxy_stale_retry(self) -> None:
        """Count one proxied request replayed on a fresh socket after its
        pooled keep-alive connection turned out to be stale."""
        with self._lock:
            self.proxy_stale_retries += 1

    def record_edit_retry(self) -> None:
        """Count one idempotency-keyed write retried on another owner."""
        with self._lock:
            self.edit_retries += 1

    def record_circuit_open(self) -> None:
        """Count one worker circuit breaker tripping open."""
        with self._lock:
            self.circuit_opens += 1

    def record_degraded_read(self) -> None:
        """Count one read served from the stale window archive because the
        dataset had no healthy owner (explicitly marked stale on the wire)."""
        with self._lock:
            self.degraded_reads += 1

    def record_deadline_rejection(self) -> None:
        """Count one request rejected because its propagated deadline had
        already expired at admission."""
        with self._lock:
            self.deadline_rejections += 1

    def record_worker_restart(self) -> None:
        """Count one crashed worker replaced by the supervisor."""
        with self._lock:
            self.worker_restarts += 1

    def record_session_failover(self) -> None:
        """Count one session transparently reopened on a dataset's new owner."""
        with self._lock:
            self.session_failovers += 1

    def record_read_repeat(self, kind: str, repeat: bool) -> None:
        """Count one ``/keyword`` or ``/nearest`` router request and whether
        its canonical target was seen recently (the cache-worthiness signal)."""
        with self._lock:
            if kind == "keyword":
                self.keyword_requests += 1
                self.keyword_repeats += 1 if repeat else 0
            else:
                self.nearest_requests += 1
                self.nearest_repeats += 1 if repeat else 0

    # ---------------------------------------------------------------------- SLO

    def configure_slo(self, config, clock=None) -> None:
        """Attach an :class:`~repro.slo.SLOEngine` built from ``config``.

        Idempotent: the first caller wins, so a metrics instance shared
        between tiers keeps one engine.  No-op when SLO tracking is off.
        """
        if self.slo is not None or config is None or not config.enabled:
            return
        from ..slo.slo import SLOEngine  # local import: slo -> config only

        if clock is None:
            self.slo = SLOEngine(config)
        else:
            self.slo = SLOEngine(config, clock=clock)

    def attach_admission(self, controller) -> None:
        """Expose the adaptive admission controller's state in the summary."""
        self.admission = controller

    def record_op_outcome(self, op: str, latency_seconds: float, status: int) -> None:
        """Feed one finished request (class, wall time, HTTP status) to the
        SLO engine — the single choke point both the worker HTTP layer and
        the router dispatch report through.  No-op without an engine."""
        engine = self.slo
        if engine is not None:
            engine.observe(op, latency_seconds, status=status)

    # ------------------------------------------------------------------- writes

    def record_write(self) -> None:
        """Count one edit applied by the write coordinator."""
        with self._lock:
            self.writes_applied += 1

    def record_journal_append(self, synced: bool) -> None:
        """Count one journal record written (and whether it fsynced)."""
        with self._lock:
            self.journal_appends += 1
            if synced:
                self.journal_fsyncs += 1

    def record_journal_replay(self, records: int) -> None:
        """Count ``records`` journal records re-applied on a dataset open."""
        with self._lock:
            self.journal_replayed_records += records

    def record_checkpoint(self) -> None:
        """Count one checkpoint (incremental save + journal truncation)."""
        with self._lock:
            self.checkpoint_runs += 1

    def record_checkpoint_failure(self) -> None:
        """Count one background checkpoint that failed (journal kept intact)."""
        with self._lock:
            self.checkpoint_failures += 1

    def record_write_deduplicated(self) -> None:
        """Count one write suppressed by idempotency-key deduplication."""
        with self._lock:
            self.writes_deduplicated += 1

    def record_read_only_transition(self) -> None:
        """Count one dataset entering fail-stop read-only degraded mode."""
        with self._lock:
            self.read_only_transitions += 1

    def record_read_only_rejection(self) -> None:
        """Count one write rejected because its dataset is read-only."""
        with self._lock:
            self.read_only_rejections += 1

    # -------------------------------------------------------------- replication

    def record_replication_poll(self) -> None:
        """Count one poll of an owner's journal-tail feed by a replica."""
        with self._lock:
            self.replication_polls += 1

    def record_replication_applied(self, records: int) -> None:
        """Count ``records`` journal records re-applied from the feed."""
        with self._lock:
            self.replication_records_applied += records

    def record_replication_resync(self) -> None:
        """Count one replica resync (feed gap forced a snapshot reload)."""
        with self._lock:
            self.replication_resyncs += 1

    def record_replica_read(self) -> None:
        """Count one read answered by a bounded-staleness replica."""
        with self._lock:
            self.replica_reads += 1

    def record_promotion(self, latency_ms: float | None = None) -> None:
        """Count one replica promoted to owner (router passes the latency)."""
        with self._lock:
            self.promotions += 1
            if latency_ms is not None:
                self.last_promotion_ms = latency_ms
                if latency_ms > self.peak_promotion_ms:
                    self.peak_promotion_ms = latency_ms

    # ------------------------------------------------------- resource accounting

    def record_memory_sample(self, sample: dict) -> None:
        """Ingest one :class:`~repro.obs.memory.MemorySampler` tick.

        ``sample`` is the flat ``{"rss_bytes": ..., "<component>_bytes": ...}``
        dict; non-int values are coerced defensively because the sampler's
        sources are arbitrary callables.
        """
        cleaned = {
            key: max(0, int(value))
            for key, value in sample.items()
            if isinstance(value, (int, float))
        }
        with self._lock:
            self.memory_samples += 1
            self.memory_last = {"rss_bytes": 0, **cleaned}
            rss = self.memory_last["rss_bytes"]
            if rss > self.memory_peak_rss:
                self.memory_peak_rss = rss

    def record_profile_run(self, samples: int) -> None:
        """Count one completed profile collection and its sample total."""
        with self._lock:
            self.profile_runs += 1
            self.profile_samples += max(0, int(samples))

    # ------------------------------------------------------------------ summary

    def summary(self) -> dict[str, object]:
        """Return the JSON-serialisable serving metrics snapshot."""
        slo_section: dict[str, object] = {}
        if self.slo is not None:
            slo_section = self.slo.summary()
            if self.admission is not None:
                slo_section["admission"] = self.admission.summary()
        with self._lock:
            batches = self.coalesced_batches
            return {
                "requests": {
                    "admitted": self.requests_admitted,
                    "completed": self.requests_completed,
                    "rejected": self.requests_rejected,
                    "deadline_rejected": self.deadline_rejections,
                    "completed_by_dataset": dict(self.completed_by_dataset),
                },
                "queue_depth": dict(self.queue_depth),
                "peak_queue_depth": self.peak_queue_depth,
                "coalescer": {
                    "batches": batches,
                    "requests": self.coalesced_requests,
                    "duplicate_window_hits": self.duplicate_window_hits,
                    "ratio": self.coalesced_requests / batches if batches else 0.0,
                },
                "pool": {
                    "hits": self.pool_hits,
                    "misses": self.pool_misses,
                    "evictions": self.pool_evictions,
                },
                "repack_runs": self.repack_runs,
                "cluster": {
                    "window_cache_hits": self.window_cache_hits,
                    "window_cache_misses": self.window_cache_misses,
                    "window_cache_invalidations": self.window_cache_invalidations,
                    "proxied_requests": self.proxied_requests,
                    "proxy_retries": self.proxy_retries,
                    "proxy_stale_retries": self.proxy_stale_retries,
                    "edit_retries": self.edit_retries,
                    "circuit_opens": self.circuit_opens,
                    "degraded_reads": self.degraded_reads,
                    "worker_restarts": self.worker_restarts,
                    "session_failovers": self.session_failovers,
                    "keyword_requests": self.keyword_requests,
                    "keyword_repeats": self.keyword_repeats,
                    "nearest_requests": self.nearest_requests,
                    "nearest_repeats": self.nearest_repeats,
                    "keyword_cache_hits": self.keyword_cache_hits,
                    "nearest_cache_hits": self.nearest_cache_hits,
                    "replica_reads": self.replica_reads,
                    "promotions": self.promotions,
                    "last_promotion_ms": self.last_promotion_ms,
                    "peak_promotion_ms": self.peak_promotion_ms,
                },
                "writes": {
                    "applied": self.writes_applied,
                    "deduplicated": self.writes_deduplicated,
                    "journal_appends": self.journal_appends,
                    "journal_fsyncs": self.journal_fsyncs,
                    "journal_replayed_records": self.journal_replayed_records,
                    "checkpoints": self.checkpoint_runs,
                    "checkpoint_failures": self.checkpoint_failures,
                    "read_only_transitions": self.read_only_transitions,
                    "read_only_rejections": self.read_only_rejections,
                },
                "replication": {
                    "polls": self.replication_polls,
                    "records_applied": self.replication_records_applied,
                    "resyncs": self.replication_resyncs,
                },
                # Resource accounting (PR 10): byte gauges sum across workers
                # under merge_summaries (the fleet's total footprint);
                # peak_rss_bytes rides the peak* max-merge rule.
                "memory": {
                    "samples": self.memory_samples,
                    "peak_rss_bytes": self.memory_peak_rss,
                    **dict(sorted(self.memory_last.items())),
                },
                "profile": {
                    "runs": self.profile_runs,
                    "samples": self.profile_samples,
                },
                # Per-op SLO compliance (error budgets, burn rates, alerts;
                # empty without a configured engine).  At the router this
                # section is replaced wholesale by the router's own view —
                # burn rates are windowed and cannot be summed across
                # workers the way plain counters can.
                "slo": slo_section,
                # Mergeable histogram states; percentiles herein are local —
                # after merge_summaries, recompute them from the summed
                # buckets (percentiles_from_state), as the router does.
                "latency": {
                    op: histogram.state()
                    for op, histogram in sorted(self.latency.items())
                },
            }

"""Interactive exploration session.

Tracks the state of one user exploring a dataset: current viewport, current
abstraction layer, active filters, navigation history.  This is the server-side
counterpart of the Web UI's Visualization + Control panels and the unit the
client simulator drives when replaying interaction traces.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..config import ClientConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .monitoring import QueryLog
from ..errors import QueryError
from ..spatial.geometry import Point
from .filters import FilterSpec
from .query_manager import QueryManager, WindowQueryResult
from .viewport import Viewport

__all__ = ["InteractionEvent", "ExplorationSession"]


@dataclass(frozen=True)
class InteractionEvent:
    """One recorded user interaction (for history / undo / replay)."""

    kind: str
    details: dict[str, object] = field(default_factory=dict)


class ExplorationSession:
    """Stateful façade over the query manager for one user session."""

    def __init__(
        self,
        query_manager: QueryManager,
        client_config: ClientConfig | None = None,
        start_layer: int = 0,
        query_log: "QueryLog | None" = None,
    ) -> None:
        self.query_manager = query_manager
        self.client_config = client_config or query_manager.client_config
        if not query_manager.database.has_layer(start_layer):
            raise QueryError(f"layer {start_layer} does not exist")
        self.layer = start_layer
        self.filters = FilterSpec()
        self.viewport = query_manager.default_viewport(layer=start_layer)
        self.history: list[InteractionEvent] = []
        self.last_result: WindowQueryResult | None = None
        self.query_log = query_log
        # One session is one user's stateful cursor; the serving front-end may
        # execute its commands on different worker threads, so every operation
        # that touches viewport/layer/filters/history runs under this lock
        # (reentrant: navigation ops call refresh()).
        self.lock = threading.RLock()

    # ----------------------------------------------------------------- cursor

    def cursor(self) -> dict[str, object]:
        """A lock-free snapshot of the session's cursor (for replication).

        Reads the layer and viewport attributes without taking :attr:`lock`:
        both are immutable values swapped atomically, so the worst a racing
        command can produce is a *slightly stale* cursor — acceptable for the
        router-side session directory, and crucially this can never block an
        event loop behind a command holding the lock for a full query.
        """
        viewport = self.viewport
        return {
            "layer": self.layer,
            "x": viewport.center.x,
            "y": viewport.center.y,
            "zoom": viewport.zoom,
        }

    def restore_cursor(
        self, center: Point | None = None, zoom: float | None = None
    ) -> None:
        """Re-position a fresh session from a replicated cursor (failover).

        Applied once right after construction by the serving front-end when a
        session is transparently reopened on a new worker; the zoom is set
        absolutely (it is a replicated value, not a user gesture, so the
        relative :meth:`zoom` clamping path does not apply).
        """
        with self.lock:
            if center is not None:
                self.viewport = self.viewport.moved_to(center)
            if zoom is not None and zoom > 0:
                from dataclasses import replace

                self.viewport = replace(self.viewport, zoom=zoom)

    # ------------------------------------------------------------- navigation

    def refresh(self) -> WindowQueryResult:
        """Fetch the current viewport's contents (initial load or after edits)."""
        with self.lock:
            result = self.query_manager.viewport_query(
                self.viewport, layer=self.layer, filters=self.filters
            )
            self.last_result = result
        if self.query_log is not None:
            self.query_log.record_window(result)
        return result

    def pan(self, dx_px: float, dy_px: float) -> WindowQueryResult:
        """Move the viewing window by a pixel offset ("horizontal" navigation)."""
        with self.lock:
            self.viewport = self.viewport.panned(dx_px, dy_px)
            self.history.append(InteractionEvent("pan", {"dx": dx_px, "dy": dy_px}))
            return self.refresh()

    def jump_to(self, center: Point) -> WindowQueryResult:
        """Re-centre the viewport on plane coordinates (birdview click)."""
        with self.lock:
            self.viewport = self.viewport.moved_to(center)
            self.history.append(InteractionEvent("jump", {"x": center.x, "y": center.y}))
            return self.refresh()

    def zoom(self, factor: float) -> WindowQueryResult:
        """Zoom in (> 1) or out (< 1); the server window resizes proportionally."""
        with self.lock:
            self.viewport = self.viewport.zoomed(factor, self.client_config)
            self.history.append(InteractionEvent("zoom", {"factor": factor}))
            return self.refresh()

    # ------------------------------------------------------------ layer change

    def change_layer(self, new_layer: int) -> WindowQueryResult:
        """Switch abstraction layer ("vertical" navigation via the Layer Panel)."""
        if not self.query_manager.database.has_layer(new_layer):
            raise QueryError(f"layer {new_layer} does not exist")
        with self.lock:
            self.layer = new_layer
            self.history.append(InteractionEvent("change_layer", {"layer": new_layer}))
            return self.refresh()

    def available_layers(self) -> list[int]:
        """Return the abstraction layers of the current dataset."""
        return self.query_manager.database.layers()

    def zoom_with_level_of_detail(
        self, factor: float, max_objects: int = 600
    ) -> WindowQueryResult:
        """Zoom and automatically switch to the recommended abstraction layer.

        Combines the paper's two vertical operations: the zoom resizes the
        server-side window and, when the resulting window would contain more
        than ``max_objects`` elements at the current layer, the session hops to
        the most detailed layer that stays below the budget (and back down when
        zooming in again).
        """
        with self.lock:
            self.viewport = self.viewport.zoomed(factor, self.client_config)
            recommended = self.query_manager.recommend_layer(
                self.viewport, max_objects=max_objects, current_layer=self.layer
            )
            if recommended != self.layer:
                self.layer = recommended
            self.history.append(InteractionEvent(
                "zoom_lod", {"factor": factor, "layer": self.layer}
            ))
            return self.refresh()

    # ---------------------------------------------------------------- keyword

    def search(self, keyword: str, limit: int | None = 20):
        """Keyword search on the current layer (Search panel)."""
        with self.lock:
            self.history.append(InteractionEvent("search", {"keyword": keyword}))
            result = self.query_manager.keyword_search(
                keyword, layer=self.layer, limit=limit
            )
        if self.query_log is not None:
            self.query_log.record_search(result)
        return result

    def focus_on(self, node_id: int) -> WindowQueryResult:
        """Centre the viewport on a node picked from the search results."""
        with self.lock:
            self.viewport, result = self.query_manager.focus_on_node(
                node_id, self.viewport, layer=self.layer, filters=self.filters
            )
            self.history.append(InteractionEvent("focus", {"node_id": node_id}))
            self.last_result = result
            return result

    # ----------------------------------------------------------------- filters

    def hide_edge_label(self, label: str) -> WindowQueryResult:
        """Hide edges with a given label (Filter panel)."""
        with self.lock:
            self.filters.hide_edge_label(label)
            self.history.append(InteractionEvent("filter", {"hide_edge": label}))
            return self.refresh()

    def show_only_edges(self, labels: set[str]) -> WindowQueryResult:
        """Keep only edges with the given labels visible."""
        with self.lock:
            self.filters.show_only_edge_labels(labels)
            self.history.append(InteractionEvent("filter", {"only_edges": sorted(labels)}))
            return self.refresh()

    def clear_filters(self) -> WindowQueryResult:
        """Remove every active filter."""
        with self.lock:
            self.filters.clear()
            self.history.append(InteractionEvent("filter", {"clear": True}))
            return self.refresh()

"""Graph editing (the demo's Edit panel).

"Edit ... allows the user to store in the database the graph modifications made
through the canvas."  Edits are expressed against layer 0 (the full graph) and
applied to the layer table directly: node relabelling, node moves (which update
the geometry of every incident edge), edge insertion and deletion.  Each edit is
recorded in a journal so a session can report (and tests can verify) what was
changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import QueryError
from ..spatial.geometry import LineSegment, Point, encode_segment
from ..storage.database import GraphVizDatabase
from ..storage.schema import EdgeRow

__all__ = ["EditOperation", "GraphEditor"]


@dataclass(frozen=True)
class EditOperation:
    """One applied edit, as recorded in the journal."""

    kind: str
    details: dict[str, object] = field(default_factory=dict)


class GraphEditor:
    """Applies canvas edits to the layer-0 table of a database."""

    def __init__(self, database: GraphVizDatabase, layer: int = 0) -> None:
        self.database = database
        self.layer = layer
        self.journal: list[EditOperation] = []

    # ---------------------------------------------------------------- queries

    def _table(self):
        return self.database.table(self.layer)

    def _rows_for_node(self, node_id: int) -> list[EdgeRow]:
        rows = self._table().rows_for_node(node_id)
        if not rows:
            raise QueryError(f"node {node_id} does not exist in layer {self.layer}")
        return rows

    # ----------------------------------------------------------------- edits

    def rename_node(self, node_id: int, new_label: str) -> int:
        """Change a node's label everywhere it appears; return rows touched."""
        rows = self._rows_for_node(node_id)
        table = self._table()
        for row in rows:
            updated = EdgeRow(
                row_id=row.row_id,
                node1_id=row.node1_id,
                node1_label=new_label if row.node1_id == node_id else row.node1_label,
                edge_geometry=row.edge_geometry,
                edge_label=row.edge_label,
                node2_id=row.node2_id,
                node2_label=new_label if row.node2_id == node_id else row.node2_label,
            )
            table.update_row(updated)
        self.journal.append(EditOperation("rename_node", {
            "node_id": node_id, "new_label": new_label, "rows": len(rows),
        }))
        return len(rows)

    def move_node(self, node_id: int, new_position: Point) -> int:
        """Move a node on the plane, re-encoding every incident edge geometry."""
        rows = self._rows_for_node(node_id)
        table = self._table()
        for row in rows:
            start, end = row.endpoints()
            segment = row.segment()
            if row.node1_id == node_id:
                start = new_position
            if row.node2_id == node_id:
                end = new_position
            updated = EdgeRow(
                row_id=row.row_id,
                node1_id=row.node1_id,
                node1_label=row.node1_label,
                edge_geometry=encode_segment(LineSegment(start, end, segment.directed)),
                edge_label=row.edge_label,
                node2_id=row.node2_id,
                node2_label=row.node2_label,
            )
            table.update_row(updated)
        self.journal.append(EditOperation("move_node", {
            "node_id": node_id, "x": new_position.x, "y": new_position.y, "rows": len(rows),
        }))
        return len(rows)

    def add_node(self, node_id: int, label: str, position: Point) -> EdgeRow:
        """Place a new isolated node on the canvas; returns its self-row.

        Stored as the schema's self-row form (``node1 == node2``, empty edge
        label, zero-length geometry) so window queries return it; a later
        :meth:`add_edge` connects it.
        """
        table = self._table()
        if table.rows_for_node(node_id):
            raise QueryError(
                f"node {node_id} already exists in layer {self.layer}"
            )
        row = EdgeRow(
            row_id=table.next_row_id(),
            node1_id=node_id,
            node1_label=label,
            edge_geometry=encode_segment(
                LineSegment(position, position, directed=False)
            ),
            edge_label="",
            node2_id=node_id,
            node2_label=label,
        )
        table.insert(row)
        self.journal.append(EditOperation("add_node", {
            "node_id": node_id, "label": label, "x": position.x, "y": position.y,
        }))
        return row

    def delete_node(self, node_id: int) -> int:
        """Remove a node and every incident edge; return rows removed."""
        rows = self._rows_for_node(node_id)
        table = self._table()
        for row in rows:
            table.delete_row(row.row_id)
        self.journal.append(EditOperation("delete_node", {
            "node_id": node_id, "rows": len(rows),
        }))
        return len(rows)

    def add_edge(
        self,
        source_id: int,
        target_id: int,
        label: str = "",
        directed: bool = True,
    ) -> EdgeRow:
        """Insert a new edge between two existing nodes; returns the new row."""
        table = self._table()
        source_position = table.node_position(source_id)
        target_position = table.node_position(target_id)
        if source_position is None:
            raise QueryError(f"node {source_id} does not exist in layer {self.layer}")
        if target_position is None:
            raise QueryError(f"node {target_id} does not exist in layer {self.layer}")
        source_rows = table.rows_for_node(source_id)
        target_rows = table.rows_for_node(target_id)
        source_label = next(
            (r.node1_label if r.node1_id == source_id else r.node2_label for r in source_rows), ""
        )
        target_label = next(
            (r.node1_label if r.node1_id == target_id else r.node2_label for r in target_rows), ""
        )
        row = EdgeRow(
            row_id=table.next_row_id(),
            node1_id=source_id,
            node1_label=source_label,
            edge_geometry=encode_segment(
                LineSegment(source_position, target_position, directed=directed)
            ),
            edge_label=label,
            node2_id=target_id,
            node2_label=target_label,
        )
        table.insert(row)
        self.journal.append(EditOperation("add_edge", {
            "source": source_id, "target": target_id, "label": label,
        }))
        return row

    def repack(self) -> bool:
        """Re-pack the layer's spatial index after a burst of edits.

        Edits demote the table to the dynamic R-tree; once the user's editing
        session quiesces, calling this rebuilds the immutable packed index
        over the current rows, re-enabling the zero-copy window-query
        pipeline (and making the index persistable again as a SQLite page).
        Returns ``True`` if the active index actually changed.
        """
        changed = self._table().repack()
        self.journal.append(EditOperation("repack", {
            "rows": self._table().num_rows, "changed": changed,
        }))
        return changed

    def delete_edge(self, source_id: int, target_id: int) -> int:
        """Delete every edge row between the two nodes; return rows removed."""
        table = self._table()
        victims = [
            row for row in table.rows_for_node(source_id)
            if not row.is_node_row()
            and {row.node1_id, row.node2_id} == {source_id, target_id}
        ]
        for row in victims:
            table.delete_row(row.row_id)
        self.journal.append(EditOperation("delete_edge", {
            "source": source_id, "target": target_id, "rows": len(victims),
        }))
        return len(victims)

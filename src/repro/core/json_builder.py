"""JSON object construction for the client.

The Fig. 3 latency breakdown has a dedicated "Build JSON Objects" component:
"the time required for the server to process the query result and build the
JSON objects that are sent to the client".  This module converts the rows
returned by a window query into the node/edge JSON objects the (simulated)
mxGraph client renders, deduplicating nodes that appear in several rows.

Two paths exist:

* the plain path (:func:`build_payload` with just ``rows``) builds fresh
  dictionaries per call;
* the zero-copy path passes a *fragment source* — typically
  :func:`table_fragments` over a :class:`~repro.storage.table.LayerTable` —
  so the per-row node/edge dictionaries **and** their serialised JSON strings
  are computed once per row and reused across queries.  The payload then
  carries the pre-serialised fragments and :func:`payload_to_json`
  concatenates them instead of re-encoding.

Payload dictionaries produced through the fragment cache are shared between
queries; callers must treat them as immutable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from ..storage.schema import EdgeRow

__all__ = [
    "GraphPayload",
    "RowFragments",
    "row_fragments",
    "table_fragments",
    "build_payload",
    "payload_to_json",
]

_dumps = json.dumps
_COMPACT = (",", ":")


@dataclass(frozen=True)
class RowFragments:
    """Pre-built payload pieces for one row: dictionaries plus JSON strings.

    ``node2_obj`` / ``edge_obj`` are ``None`` for self-rows (isolated nodes).
    The JSON strings are exactly ``json.dumps(obj, separators=(",", ":"))`` of
    the corresponding dictionary, so concatenating fragments reproduces a full
    ``json.dumps`` byte for byte.
    """

    node1_id: int
    node2_id: int
    node_row: bool
    node1_obj: dict[str, object]
    node2_obj: dict[str, object] | None
    edge_obj: dict[str, object] | None
    node1_json: str
    node2_json: str
    edge_json: str


def row_fragments(row: EdgeRow) -> RowFragments:
    """Build the cached payload fragments for one row (decodes geometry once)."""
    segment = row.segment()
    start, end = segment.start, segment.end
    node1_obj: dict[str, object] = {
        "id": row.node1_id,
        "label": row.node1_label,
        "x": start.x,
        "y": start.y,
    }
    node_row = row.is_node_row()
    if node_row:
        node2_obj = None
        edge_obj = None
        node2_json = ""
        edge_json = ""
    else:
        node2_obj = {
            "id": row.node2_id,
            "label": row.node2_label,
            "x": end.x,
            "y": end.y,
        }
        edge_obj = {
            "source": row.node1_id,
            "target": row.node2_id,
            "label": row.edge_label,
            "directed": segment.directed,
        }
        node2_json = _dumps(node2_obj, separators=_COMPACT)
        edge_json = _dumps(edge_obj, separators=_COMPACT)
    return RowFragments(
        node1_id=row.node1_id,
        node2_id=row.node2_id,
        node_row=node_row,
        node1_obj=node1_obj,
        node2_obj=node2_obj,
        edge_obj=edge_obj,
        node1_json=_dumps(node1_obj, separators=_COMPACT),
        node2_json=node2_json,
        edge_json=edge_json,
    )


def table_fragments(table, populate: bool = True) -> Callable[[EdgeRow], RowFragments]:
    """Return a fragment source backed by ``table``'s per-row cache.

    The table invalidates cached fragments when a row is inserted, updated or
    deleted, so cached payloads always match fresh ones.  Pass
    ``populate=False`` when the rows being rendered did not come straight from
    the table (e.g. rows replayed from a window cache): misses are then built
    on the fly without writing into the authoritative per-table cache, so a
    stale row can never poison fragments served to fresh queries.
    """
    cache = table.fragment_cache

    def source(row: EdgeRow) -> RowFragments:
        fragments = cache.get(row.row_id)
        if fragments is None:
            fragments = row_fragments(row)
            if populate:
                cache[row.row_id] = fragments
        return fragments

    return source


@dataclass
class GraphPayload:
    """The JSON-ready representation of one window-query result.

    Attributes
    ----------
    nodes:
        One dictionary per distinct node: ``{"id", "label", "x", "y"}``.
    edges:
        One dictionary per edge row: ``{"source", "target", "label", "directed"}``.
    nodes_json / edges_json:
        Pre-serialised JSON fragments parallel to ``nodes`` / ``edges``;
        populated only by the zero-copy build path.  When complete,
        :func:`payload_to_json` concatenates them instead of re-encoding.
    """

    nodes: list[dict[str, object]] = field(default_factory=list)
    edges: list[dict[str, object]] = field(default_factory=list)
    nodes_json: list[str] = field(default_factory=list, repr=False, compare=False)
    edges_json: list[str] = field(default_factory=list, repr=False, compare=False)

    @property
    def num_objects(self) -> int:
        """Total number of visual objects (nodes + edges), the Fig. 3 x-axis companion."""
        return len(self.nodes) + len(self.edges)

    def node_ids(self) -> set[int]:
        """Return the distinct node ids in the payload."""
        return {int(node["id"]) for node in self.nodes}

    def as_dict(self) -> dict[str, object]:
        """Return the payload as a dictionary ready for ``json.dumps``."""
        return {"nodes": self.nodes, "edges": self.edges}


def build_payload(
    rows: list[EdgeRow],
    fragments: Callable[[EdgeRow], RowFragments] | dict[int, RowFragments] | None = None,
) -> GraphPayload:
    """Build the client payload from window-query rows.

    Nodes are deduplicated across rows; their coordinates are taken from the
    geometry endpoints so the client needs no second lookup.  When a
    ``fragments`` source is given — a per-row callable (see
    :func:`table_fragments`) or a table's ``fragment_cache`` dictionary — the
    cached per-row dictionaries and JSON strings are reused instead of
    rebuilt.  Passing the dictionary avoids a Python call per row and is what
    the query manager's hot path does.
    """
    payload = GraphPayload()
    seen_nodes: set[int] = set()

    if fragments is not None:
        nodes = payload.nodes
        edges = payload.edges
        nodes_json = payload.nodes_json
        edges_json = payload.edges_json
        add_seen = seen_nodes.add
        if isinstance(fragments, dict):
            cache = fragments
            cache_get = cache.get
            for row in rows:
                piece = cache_get(row.row_id)
                if piece is None:
                    piece = row_fragments(row)
                    cache[row.row_id] = piece
                node1_id = piece.node1_id
                if node1_id not in seen_nodes:
                    add_seen(node1_id)
                    nodes.append(piece.node1_obj)
                    nodes_json.append(piece.node1_json)
                if piece.node_row:
                    continue
                node2_id = piece.node2_id
                if node2_id not in seen_nodes:
                    add_seen(node2_id)
                    nodes.append(piece.node2_obj)
                    nodes_json.append(piece.node2_json)
                edges.append(piece.edge_obj)
                edges_json.append(piece.edge_json)
            return payload
        for row in rows:
            piece = fragments(row)
            node1_id = piece.node1_id
            if node1_id not in seen_nodes:
                add_seen(node1_id)
                nodes.append(piece.node1_obj)
                nodes_json.append(piece.node1_json)
            if piece.node_row:
                continue
            node2_id = piece.node2_id
            if node2_id not in seen_nodes:
                add_seen(node2_id)
                nodes.append(piece.node2_obj)
                nodes_json.append(piece.node2_json)
            edges.append(piece.edge_obj)
            edges_json.append(piece.edge_json)
        return payload

    for row in rows:
        start, end = row.endpoints()
        if row.node1_id not in seen_nodes:
            seen_nodes.add(row.node1_id)
            payload.nodes.append({
                "id": row.node1_id,
                "label": row.node1_label,
                "x": start.x,
                "y": start.y,
            })
        if row.is_node_row():
            continue
        if row.node2_id not in seen_nodes:
            seen_nodes.add(row.node2_id)
            payload.nodes.append({
                "id": row.node2_id,
                "label": row.node2_label,
                "x": end.x,
                "y": end.y,
            })
        payload.edges.append({
            "source": row.node1_id,
            "target": row.node2_id,
            "label": row.edge_label,
            "directed": row.segment().directed,
        })
    return payload


def payload_to_json(payload: GraphPayload) -> str:
    """Serialise the payload to a JSON string (what actually goes on the wire).

    Payloads built through the fragment cache carry pre-serialised per-object
    JSON; in that case the wire string is assembled by concatenation, which is
    byte-identical to re-encoding the dictionaries.
    """
    if len(payload.nodes_json) == len(payload.nodes) and len(
        payload.edges_json
    ) == len(payload.edges):
        return (
            '{"nodes":[' + ",".join(payload.nodes_json)
            + '],"edges":[' + ",".join(payload.edges_json) + "]}"
        )
    return _dumps(payload.as_dict(), separators=_COMPACT)

"""JSON object construction for the client.

The Fig. 3 latency breakdown has a dedicated "Build JSON Objects" component:
"the time required for the server to process the query result and build the
JSON objects that are sent to the client".  This module converts the rows
returned by a window query into the node/edge JSON objects the (simulated)
mxGraph client renders, deduplicating nodes that appear in several rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..storage.schema import EdgeRow

__all__ = ["GraphPayload", "build_payload", "payload_to_json"]


@dataclass
class GraphPayload:
    """The JSON-ready representation of one window-query result.

    Attributes
    ----------
    nodes:
        One dictionary per distinct node: ``{"id", "label", "x", "y"}``.
    edges:
        One dictionary per edge row: ``{"source", "target", "label", "directed"}``.
    """

    nodes: list[dict[str, object]] = field(default_factory=list)
    edges: list[dict[str, object]] = field(default_factory=list)

    @property
    def num_objects(self) -> int:
        """Total number of visual objects (nodes + edges), the Fig. 3 x-axis companion."""
        return len(self.nodes) + len(self.edges)

    def node_ids(self) -> set[int]:
        """Return the distinct node ids in the payload."""
        return {int(node["id"]) for node in self.nodes}

    def as_dict(self) -> dict[str, object]:
        """Return the payload as a dictionary ready for ``json.dumps``."""
        return {"nodes": self.nodes, "edges": self.edges}


def build_payload(rows: list[EdgeRow]) -> GraphPayload:
    """Build the client payload from window-query rows.

    Nodes are deduplicated across rows; their coordinates are taken from the
    geometry endpoints so the client needs no second lookup.
    """
    payload = GraphPayload()
    seen_nodes: set[int] = set()
    for row in rows:
        start, end = row.endpoints()
        if row.node1_id not in seen_nodes:
            seen_nodes.add(row.node1_id)
            payload.nodes.append({
                "id": row.node1_id,
                "label": row.node1_label,
                "x": start.x,
                "y": start.y,
            })
        if row.is_node_row():
            continue
        if row.node2_id not in seen_nodes:
            seen_nodes.add(row.node2_id)
            payload.nodes.append({
                "id": row.node2_id,
                "label": row.node2_label,
                "x": end.x,
                "y": end.y,
            })
        payload.edges.append({
            "source": row.node1_id,
            "target": row.node2_id,
            "label": row.edge_label,
            "directed": row.segment().directed,
        })
    return payload


def payload_to_json(payload: GraphPayload) -> str:
    """Serialise the payload to a JSON string (what actually goes on the wire)."""
    return json.dumps(payload.as_dict(), separators=(",", ":"))

"""Query Manager: the online half of graphVizdb.

"The Query Manager ... is responsible for the communication between the Client
and the Database."  It translates the three user-facing operations into the
backend spatial operations:

* **interactive navigation** → window query on the current layer's R-tree;
* **multi-level exploration** → the same window query against a different
  layer's table (optionally resizing the window according to the zoom level);
* **keyword search** → trie lookup over node labels, then a window query
  centred on the selected node.

Each window query returns a :class:`WindowQueryResult` carrying the timing
breakdown of Fig. 3 (DB query execution, JSON building; communication and
rendering are added by the client simulator).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..config import ClientConfig
from ..errors import QueryError
from ..spatial.geometry import Point, Rect
from ..storage.database import GraphVizDatabase
from ..storage.schema import EdgeRow
from .filters import FilterSpec, apply_filters
from .json_builder import GraphPayload, build_payload
from .streaming import PayloadChunk, stream_payload
from .viewport import Viewport

__all__ = ["WindowQueryResult", "KeywordSearchResult", "QueryManager"]


@dataclass
class WindowQueryResult:
    """The server-side result of one window query.

    Attributes
    ----------
    layer / window:
        What was asked.
    rows:
        The matching rows (after filtering).
    payload:
        The JSON-ready payload built from the rows.
    chunks:
        The payload split into streaming chunks.
    db_query_seconds:
        Time spent evaluating the window query in the storage layer
        (Fig. 3 "DB Query Execution").
    json_build_seconds:
        Time spent building the JSON objects (Fig. 3 "Build JSON Objects").
    filter_seconds:
        Time spent applying canvas filters and server-side decimation to the
        rows.  Historically this ran outside both timers, under-reporting
        server time; it is now measured and included in ``server_seconds``.
    """

    layer: int
    window: Rect
    rows: list[EdgeRow]
    payload: GraphPayload
    chunks: list[PayloadChunk]
    db_query_seconds: float
    json_build_seconds: float
    filter_seconds: float = 0.0

    @property
    def num_objects(self) -> int:
        """Nodes + edges returned (the secondary y-axis of Fig. 3)."""
        return self.payload.num_objects

    @property
    def server_seconds(self) -> float:
        """Total server-side time (DB + filtering + JSON)."""
        return self.db_query_seconds + self.filter_seconds + self.json_build_seconds

    @property
    def total_bytes(self) -> int:
        """Total bytes that will be streamed to the client."""
        return sum(chunk.byte_size for chunk in self.chunks)


@dataclass
class KeywordSearchResult:
    """The result of a keyword query: matching nodes and their positions."""

    keyword: str
    layer: int
    matches: list[dict[str, object]] = field(default_factory=list)
    search_seconds: float = 0.0

    @property
    def num_matches(self) -> int:
        """Number of matching nodes."""
        return len(self.matches)


class QueryManager:
    """Maps client operations onto database operations.

    Parameters
    ----------
    database:
        The preprocessed, indexed database.
    client_config:
        Streaming/viewport parameters (chunk size, default viewport).

    Thread safety: the manager itself is stateless (both attributes are set
    once and only read), so one instance may serve concurrent reads from many
    threads — the serving subsystem does exactly that.  The shared mutable
    state lives in the layer tables: per-row caches tolerate racing writers,
    lazy secondary-index builds are single-flight, mutations serialise on a
    per-table write lock, spatial reads share that lock only while a table
    runs the edit-demoted dynamic tree (packed-index reads are lock-free),
    and row fetches tolerate ids deleted behind an index snapshot.
    """

    def __init__(
        self, database: GraphVizDatabase, client_config: ClientConfig | None = None
    ) -> None:
        self.database = database
        self.client_config = client_config or ClientConfig()

    # ------------------------------------------------------------ window query

    def window_query(
        self,
        window: Rect,
        layer: int = 0,
        filters: FilterSpec | None = None,
        max_rows: int | None = None,
    ) -> WindowQueryResult:
        """Evaluate a window query on one abstraction layer.

        This is the backend operation behind interactive navigation: "a spatial
        range query ... retrieves all elements of the graph (nodes and edges)
        that overlap with the current window".

        ``max_rows`` optionally decimates the result server-side (keeping the
        rows incident to the most connected in-window nodes) so a zoomed-out
        window never overwhelms the client; see :mod:`repro.core.decimation`.
        """
        if not self.database.has_layer(layer):
            raise QueryError(f"layer {layer} does not exist")
        table = self.database.table(layer)
        # Captured before the rows are fetched: fragment-cache fills for rows
        # a concurrent edit invalidates mid-query are dropped, not stored.
        fragments = table.fragment_fill_guard()

        started = time.perf_counter()
        rows = table.window_query(window)
        db_seconds = time.perf_counter() - started

        started = time.perf_counter()
        rows = apply_filters(rows, filters)
        if max_rows is not None:
            from .decimation import decimate_rows

            rows = decimate_rows(rows, max_rows).rows
        filter_seconds = time.perf_counter() - started

        started = time.perf_counter()
        payload = build_payload(rows, fragments=fragments)
        chunks = list(stream_payload(payload, self.client_config.chunk_size))
        json_seconds = time.perf_counter() - started

        return WindowQueryResult(
            layer=layer,
            window=window,
            rows=rows,
            payload=payload,
            chunks=chunks,
            db_query_seconds=db_seconds,
            json_build_seconds=json_seconds,
            filter_seconds=filter_seconds,
        )

    def rows_for_windows(self, windows: list[Rect], layer: int = 0) -> list[list[EdgeRow]]:
        """Fetch the raw rows of many windows in one call.

        This is the prefetcher's entry point: no filtering, no payload
        construction, no per-window result objects — just the exact in-window
        rows per requested window, straight off the spatial index.
        """
        if not self.database.has_layer(layer):
            raise QueryError(f"layer {layer} does not exist")
        return self.database.window_query_batch(layer, windows)

    def viewport_query(
        self,
        viewport: Viewport,
        layer: int = 0,
        filters: FilterSpec | None = None,
    ) -> WindowQueryResult:
        """Window query for a client viewport (pixel window → plane window)."""
        return self.window_query(viewport.window(), layer=layer, filters=filters)

    # --------------------------------------------------------- layer switching

    def change_layer(
        self,
        viewport: Viewport,
        new_layer: int,
        filters: FilterSpec | None = None,
    ) -> WindowQueryResult:
        """Multi-level exploration: fetch the same window from another layer.

        "When changing a level of abstraction, the graph elements are fetched
        through spatial range queries on the appropriate table that corresponds
        to the selected layer."
        """
        if not self.database.has_layer(new_layer):
            raise QueryError(f"layer {new_layer} does not exist")
        return self.window_query(viewport.window(), layer=new_layer, filters=filters)

    # ---------------------------------------------------------- keyword search

    def keyword_search(
        self, keyword: str, layer: int = 0, mode: str = "contains", limit: int | None = None
    ) -> KeywordSearchResult:
        """Search node labels and return matches with their plane coordinates."""
        if not keyword or not keyword.strip():
            raise QueryError("keyword must not be empty")
        started = time.perf_counter()
        matches = self.database.keyword_search(layer, keyword, mode=mode)
        if limit is not None:
            # Slice before the loop: exactly ``limit`` position lookups happen.
            matches = matches[:limit]
        table = self.database.table(layer)
        result = KeywordSearchResult(keyword=keyword, layer=layer)
        for node_id, label in matches:
            position = table.node_position(node_id)
            result.matches.append({
                "node_id": node_id,
                "label": label,
                "x": position.x if position else None,
                "y": position.y if position else None,
            })
        result.search_seconds = time.perf_counter() - started
        return result

    def focus_on_node(
        self,
        node_id: int,
        viewport: Viewport,
        layer: int = 0,
        filters: FilterSpec | None = None,
    ) -> tuple[Viewport, WindowQueryResult]:
        """Centre the viewport on a node and fetch its surroundings.

        Implements the click-on-search-result behaviour: "the spatial query sent
        to the server uses as window the rectangle whose size is equal to the
        size of the client's window and whose center has the same coordinates
        with the selected node from the list."
        """
        position = self.database.table(layer).node_position(node_id)
        if position is None:
            raise QueryError(f"node {node_id} does not exist in layer {layer}")
        centered = viewport.moved_to(position)
        return centered, self.window_query(centered.window(), layer=layer, filters=filters)

    def neighborhood(
        self, node_id: int, layer: int = 0
    ) -> list[EdgeRow]:
        """Return every row incident to a node ("Focus on node" mode).

        "In this mode, only the selected node and its neighbours are visible."
        Evaluated through the B+-tree indexes, not the R-tree.
        """
        rows = self.database.rows_for_node(layer, node_id)
        if not rows:
            raise QueryError(f"node {node_id} does not exist in layer {layer}")
        return rows

    # ------------------------------------------------------------- information

    def node_info(self, node_id: int, layer: int = 0) -> dict[str, object]:
        """Return the Information-panel payload for one node."""
        rows = self.neighborhood(node_id, layer=layer)
        label = ""
        position: Point | None = None
        neighbours: set[int] = set()
        for row in rows:
            start, end = row.endpoints()
            if row.node1_id == node_id:
                label = row.node1_label
                position = start
                if not row.is_node_row():
                    neighbours.add(row.node2_id)
            if row.node2_id == node_id:
                label = label or row.node2_label
                position = position or end
                if not row.is_node_row():
                    neighbours.add(row.node1_id)
        return {
            "node_id": node_id,
            "label": label,
            "x": position.x if position else None,
            "y": position.y if position else None,
            "degree": len(neighbours),
            "neighbours": sorted(neighbours),
            "layer": layer,
        }

    def recommend_layer(
        self,
        viewport: Viewport,
        max_objects: int = 600,
        current_layer: int | None = None,
    ) -> int:
        """Return the most detailed layer whose window content stays renderable.

        The paper combines vertical navigation with zooming: "the size of the
        window ... is decreased/increased proportionally according to the zoom
        level".  When the user zooms far out, the layer-0 window may contain
        tens of thousands of objects; this helper picks the lowest (most
        detailed) layer whose content for the current window does not exceed
        ``max_objects``, falling back to the most abstract layer.  Counting uses
        the R-tree only (no row fetches), so the recommendation itself is cheap.
        """
        if max_objects <= 0:
            raise QueryError("max_objects must be positive")
        window = viewport.window()
        layers = self.database.layers()
        if not layers:
            raise QueryError("the database has no layers")
        chosen = layers[-1]
        for layer in layers:
            count = self.database.table(layer).count_window_index(window)
            if count <= max_objects:
                chosen = layer
                break
        if current_layer is not None and chosen == current_layer:
            return current_layer
        return chosen

    def default_viewport(self, layer: int = 0) -> Viewport:
        """Return a viewport centred on the layer's drawing."""
        bounds = self.database.bounds(layer)
        center = bounds.center if bounds is not None else Point(0.0, 0.0)
        return Viewport.from_config(self.client_config, center=center)

"""Propagating Edit-panel changes across abstraction layers.

The paper stores edits made through the canvas back into the database, but the
abstraction layers are built offline — an edit applied only to layer 0 would
leave the higher layers stale.  :class:`LayerSynchronizer` applies one logical
edit to every layer in which it is representable:

* **rename** — the node is renamed in every layer that still contains it
  (filter-based layers keep node ids; merge-based layers represent the node by
  a super-node whose label is left untouched);
* **move** — the node's coordinates (and the geometry of its incident edges)
  are updated in every layer containing it, keeping vertical navigation
  spatially consistent;
* **add edge / delete edge** — applied to every layer containing *both*
  endpoints.

Layers where the node does not appear (it was filtered out or merged away) are
skipped, which matches the semantics of those abstractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spatial.geometry import Point
from ..storage.database import GraphVizDatabase
from .editing import GraphEditor

__all__ = ["SyncReport", "LayerSynchronizer"]


@dataclass
class SyncReport:
    """Which layers an edit touched (``layer -> rows touched``)."""

    operation: str
    per_layer: dict[int, int] = field(default_factory=dict)

    @property
    def layers_touched(self) -> list[int]:
        """Layers where the edit was applied."""
        return sorted(layer for layer, rows in self.per_layer.items() if rows > 0)

    @property
    def total_rows(self) -> int:
        """Total rows touched across layers."""
        return sum(self.per_layer.values())


class LayerSynchronizer:
    """Applies logical edits to every abstraction layer of a database."""

    def __init__(self, database: GraphVizDatabase) -> None:
        self.database = database
        self._editors: dict[int, GraphEditor] = {}
        self.reports: list[SyncReport] = []

    def _editor(self, layer: int) -> GraphEditor:
        editor = self._editors.get(layer)
        if editor is None:
            editor = GraphEditor(self.database, layer=layer)
            self._editors[layer] = editor
        return editor

    def _layers_containing(self, *node_ids: int) -> list[int]:
        layers = []
        for layer in self.database.layers():
            table = self.database.table(layer)
            if all(table.node_position(node_id) is not None for node_id in node_ids):
                layers.append(layer)
        return layers

    # ------------------------------------------------------------------- edits

    def rename_node(self, node_id: int, new_label: str) -> SyncReport:
        """Rename a node in every layer that contains it."""
        report = SyncReport(operation="rename_node")
        for layer in self._layers_containing(node_id):
            report.per_layer[layer] = self._editor(layer).rename_node(node_id, new_label)
        self.reports.append(report)
        return report

    def move_node(self, node_id: int, new_position: Point) -> SyncReport:
        """Move a node in every layer that contains it."""
        report = SyncReport(operation="move_node")
        for layer in self._layers_containing(node_id):
            report.per_layer[layer] = self._editor(layer).move_node(node_id, new_position)
        self.reports.append(report)
        return report

    def add_edge(
        self, source_id: int, target_id: int, label: str = "", directed: bool = True
    ) -> SyncReport:
        """Add an edge to every layer that contains both endpoints."""
        report = SyncReport(operation="add_edge")
        for layer in self._layers_containing(source_id, target_id):
            self._editor(layer).add_edge(source_id, target_id, label=label, directed=directed)
            report.per_layer[layer] = 1
        self.reports.append(report)
        return report

    def delete_edge(self, source_id: int, target_id: int) -> SyncReport:
        """Delete an edge from every layer that contains both endpoints."""
        report = SyncReport(operation="delete_edge")
        for layer in self._layers_containing(source_id, target_id):
            report.per_layer[layer] = self._editor(layer).delete_edge(source_id, target_id)
        self.reports.append(report)
        return report

"""Offline preprocessing pipeline (paper Fig. 1, Steps 1-5).

The pipeline takes an input graph and a :class:`~repro.config.GraphVizDBConfig`
and produces a fully indexed :class:`~repro.storage.database.GraphVizDatabase`:

1. **Partitioning** — split the graph into k sub-graphs minimising crossing
   edges (:mod:`repro.partition`).
2. **Layout** — lay out each partition independently (:mod:`repro.layout`).
3. **Partition organisation** — place the partition drawings on the global
   plane without overlaps, keeping crossing edges short (:mod:`repro.organizer`).
4. **Abstraction layers** — build the layer hierarchy bottom-up
   (:mod:`repro.abstraction`).
5. **Store & index** — convert each layer to paper-schema rows and load them
   into indexed layer tables (:mod:`repro.storage`).

Every step is timed individually; :class:`PreprocessingReport` is what the
Table I benchmark prints.  Per-layer indexing times are also recorded so the
parallel-indexing observation of §III ("the time spent in Step 5 equals the
time for indexing the input graph") can be reproduced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..abstraction.hierarchy import LayerHierarchy, build_hierarchy
from ..config import GraphVizDBConfig
from ..errors import PipelineError
from ..graph.model import Graph
from ..layout.registry import create_layout
from ..layout.scale import fit_to_area, spread_coincident_nodes
from ..organizer.placement import GlobalLayout, PartitionOrganizer
from ..partition.base import PartitionResult
from ..partition.multilevel import create_partitioner
from ..storage.database import GraphVizDatabase
from ..storage.schema import rows_from_graph

__all__ = ["StepTiming", "PreprocessingReport", "PreprocessingResult", "PreprocessingPipeline"]

#: Human-readable names of the five preprocessing steps, indexed 1..5 as in Fig. 1.
STEP_NAMES = {
    1: "partitioning",
    2: "layout",
    3: "organize_partitions",
    4: "abstraction_layers",
    5: "store_and_index",
}


@dataclass(frozen=True)
class StepTiming:
    """Wall-clock timing of one preprocessing step."""

    step: int
    name: str
    seconds: float

    @property
    def minutes(self) -> float:
        """Duration in minutes (the unit used by Table I)."""
        return self.seconds / 60.0


@dataclass
class PreprocessingReport:
    """Timing report covering all five steps (the Table I row for one dataset)."""

    dataset: str
    num_nodes: int
    num_edges: int
    steps: list[StepTiming] = field(default_factory=list)
    #: Per-layer indexing seconds inside Step 5 (layer index -> seconds).
    layer_indexing_seconds: dict[int, float] = field(default_factory=dict)

    def step(self, step: int) -> StepTiming:
        """Return the timing of step ``step`` (1-based)."""
        for timing in self.steps:
            if timing.step == step:
                return timing
        raise PipelineError(f"step {step} was not recorded")

    @property
    def total_seconds(self) -> float:
        """Total preprocessing time."""
        return sum(timing.seconds for timing in self.steps)

    def parallel_step5_seconds(self) -> float:
        """Step 5 time if layers were indexed in parallel (max over layers).

        Reproduces the §III observation: with per-layer parallelism the Step-5
        time collapses to the layer-0 (largest layer) indexing time.
        """
        if not self.layer_indexing_seconds:
            return 0.0
        return max(self.layer_indexing_seconds.values())

    def as_dict(self) -> dict[str, object]:
        """Return the report as a JSON-serialisable dictionary."""
        return {
            "dataset": self.dataset,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "steps": {
                timing.name: timing.seconds for timing in self.steps
            },
            "total_seconds": self.total_seconds,
            "layer_indexing_seconds": dict(self.layer_indexing_seconds),
            "parallel_step5_seconds": self.parallel_step5_seconds(),
        }


@dataclass
class PreprocessingResult:
    """Everything the pipeline produces.

    Attributes
    ----------
    database:
        The indexed database (one table per abstraction layer).
    hierarchy:
        The abstraction-layer hierarchy (layer 0 is the input graph).
    partition_result:
        The Step-1 partitioning.
    global_layout:
        The Step-3 global layout of the input graph.
    report:
        Per-step timings (Table I).

    Only ``database`` is guaranteed: a result built from an already-persisted
    database (:meth:`from_database`, e.g. after ``load_from_sqlite``) carries
    ``None`` for the offline artefacts, since they are not stored.
    """

    database: GraphVizDatabase
    hierarchy: LayerHierarchy | None
    partition_result: PartitionResult | None
    global_layout: GlobalLayout | None
    report: PreprocessingReport | None

    @classmethod
    def from_database(cls, database: GraphVizDatabase) -> "PreprocessingResult":
        """Wrap an already-built database with no offline artefacts attached."""
        return cls(
            database=database,
            hierarchy=None,
            partition_result=None,
            global_layout=None,
            report=None,
        )


class PreprocessingPipeline:
    """Runs preprocessing Steps 1-5 for one input graph."""

    def __init__(self, config: GraphVizDBConfig | None = None) -> None:
        self.config = config or GraphVizDBConfig()

    def run(self, graph: Graph) -> PreprocessingResult:
        """Execute the full pipeline on ``graph`` and return every artefact."""
        if graph.num_nodes == 0:
            raise PipelineError("cannot preprocess an empty graph")
        report = PreprocessingReport(
            dataset=graph.name, num_nodes=graph.num_nodes, num_edges=graph.num_edges
        )

        # Step 1: k-way partitioning.
        started = time.perf_counter()
        partition_result = self._partition(graph)
        report.steps.append(StepTiming(1, STEP_NAMES[1], time.perf_counter() - started))

        # Step 2: per-partition layout.
        started = time.perf_counter()
        partition_layouts = self._layout_partitions(partition_result)
        report.steps.append(StepTiming(2, STEP_NAMES[2], time.perf_counter() - started))

        # Step 3: organise partitions on the global plane.
        started = time.perf_counter()
        global_layout = self._organize(partition_result, partition_layouts)
        report.steps.append(StepTiming(3, STEP_NAMES[3], time.perf_counter() - started))

        # Step 4: abstraction layers.
        started = time.perf_counter()
        hierarchy = build_hierarchy(graph, global_layout.layout, self.config.abstraction)
        report.steps.append(StepTiming(4, STEP_NAMES[4], time.perf_counter() - started))

        # Step 5: store & index every layer.
        started = time.perf_counter()
        database = self._store(graph, hierarchy, report)
        report.steps.append(StepTiming(5, STEP_NAMES[5], time.perf_counter() - started))

        return PreprocessingResult(
            database=database,
            hierarchy=hierarchy,
            partition_result=partition_result,
            global_layout=global_layout,
            report=report,
        )

    # ------------------------------------------------------------------- steps

    def _partition(self, graph: Graph) -> PartitionResult:
        k = self.config.partition.resolve_k(graph.num_nodes)
        partitioner = create_partitioner(
            self.config.partition.method, seed=self.config.partition.seed
        )
        return partitioner.partition(graph, k)

    def _layout_partitions(self, partition_result: PartitionResult):
        layout_config = self.config.layout
        algorithm = create_layout(
            layout_config.algorithm,
            iterations=layout_config.iterations,
            area_per_node=layout_config.area_per_node,
            seed=layout_config.seed,
        )
        layouts = []
        for subgraph in partition_result.subgraphs():
            layout = algorithm.layout(subgraph)
            layout = spread_coincident_nodes(layout)
            layout = fit_to_area(layout, layout_config.area_per_node)
            layouts.append(layout)
        return layouts

    def _organize(self, partition_result: PartitionResult, partition_layouts) -> GlobalLayout:
        organizer = PartitionOrganizer(padding=self.config.layout.padding)
        return organizer.organize(partition_result, partition_layouts)

    def _store(
        self, graph: Graph, hierarchy: LayerHierarchy, report: PreprocessingReport
    ) -> GraphVizDatabase:
        database = GraphVizDatabase(name=graph.name, config=self.config.storage)
        for layer in hierarchy:
            layer_started = time.perf_counter()
            rows = rows_from_graph(layer.graph, layer.layout)
            database.load_layer(layer.level, rows)
            report.layer_indexing_seconds[layer.level] = time.perf_counter() - layer_started
        database.metadata["num_layers"] = hierarchy.num_layers
        database.metadata["abstraction_criterion"] = self.config.abstraction.criterion
        return database

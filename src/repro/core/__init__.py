"""graphVizdb core: preprocessing pipeline, query manager, sessions and server façade."""

from .api import ApiError, GraphVizDBApi
from .cache import CacheStatistics, CachingQueryManager, WindowCache
from .decimation import DecimationResult, decimate_rows
from .editing import EditOperation, GraphEditor
from .filters import FilterSpec, apply_filters
from .json_builder import GraphPayload, build_payload, payload_to_json
from .monitoring import KeywordQueryRecord, QueryLog, ServiceMetrics, WindowQueryRecord
from .pipeline import (
    PreprocessingPipeline,
    PreprocessingReport,
    PreprocessingResult,
    StepTiming,
)
from .query_manager import KeywordSearchResult, QueryManager, WindowQueryResult
from .server import DatasetHandle, GraphVizDBServer
from .session import ExplorationSession, InteractionEvent
from .statistics import LayerStatistics, dataset_statistics, layer_statistics
from .sync import LayerSynchronizer, SyncReport
from .streaming import PayloadChunk, chunk_count, stream_payload
from .viewport import Viewport

__all__ = [
    "ApiError",
    "GraphVizDBApi",
    "CacheStatistics",
    "CachingQueryManager",
    "WindowCache",
    "DecimationResult",
    "decimate_rows",
    "EditOperation",
    "GraphEditor",
    "FilterSpec",
    "apply_filters",
    "GraphPayload",
    "build_payload",
    "payload_to_json",
    "KeywordQueryRecord",
    "QueryLog",
    "ServiceMetrics",
    "WindowQueryRecord",
    "LayerSynchronizer",
    "SyncReport",
    "PreprocessingPipeline",
    "PreprocessingReport",
    "PreprocessingResult",
    "StepTiming",
    "KeywordSearchResult",
    "QueryManager",
    "WindowQueryResult",
    "DatasetHandle",
    "GraphVizDBServer",
    "ExplorationSession",
    "InteractionEvent",
    "LayerStatistics",
    "dataset_statistics",
    "layer_statistics",
    "PayloadChunk",
    "chunk_count",
    "stream_payload",
    "Viewport",
]

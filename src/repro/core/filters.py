"""Canvas filters (the demo's Filter panel).

"The attendees will be able to filter (i.e., hide) edges and/or nodes of
specific types (e.g., RDF literals)" — for example hiding ``has-author`` /
``has-title`` edges to visualise only the ``cite`` edges of the ACM dataset.
Filters are applied server-side to the rows of a window query before the JSON
payload is built, so hidden elements never reach the client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.schema import EdgeRow

__all__ = ["FilterSpec", "apply_filters"]


@dataclass
class FilterSpec:
    """Which labels to hide on the canvas.

    Attributes
    ----------
    hidden_edge_labels:
        Edge labels to hide (exact, case-insensitive match).
    hidden_node_labels:
        Node labels to hide; rows where either endpoint matches are dropped.
    only_edge_labels:
        When non-empty, acts as an allow-list: only edges with these labels are
        kept (the "visualize only the cite edges" scenario).
    hide_isolated_nodes:
        Drop self-rows (isolated nodes) from the result.
    """

    hidden_edge_labels: set[str] = field(default_factory=set)
    hidden_node_labels: set[str] = field(default_factory=set)
    only_edge_labels: set[str] = field(default_factory=set)
    hide_isolated_nodes: bool = False

    def __post_init__(self) -> None:
        self.hidden_edge_labels = {label.lower() for label in self.hidden_edge_labels}
        self.hidden_node_labels = {label.lower() for label in self.hidden_node_labels}
        self.only_edge_labels = {label.lower() for label in self.only_edge_labels}

    def is_empty(self) -> bool:
        """Return ``True`` when no filtering is requested."""
        return (
            not self.hidden_edge_labels
            and not self.hidden_node_labels
            and not self.only_edge_labels
            and not self.hide_isolated_nodes
        )

    def hide_edge_label(self, label: str) -> None:
        """Add one edge label to the hidden set."""
        self.hidden_edge_labels.add(label.lower())

    def hide_node_label(self, label: str) -> None:
        """Add one node label to the hidden set."""
        self.hidden_node_labels.add(label.lower())

    def show_only_edge_labels(self, labels: set[str]) -> None:
        """Restrict the canvas to edges with the given labels."""
        self.only_edge_labels = {label.lower() for label in labels}

    def clear(self) -> None:
        """Remove every filter."""
        self.hidden_edge_labels.clear()
        self.hidden_node_labels.clear()
        self.only_edge_labels.clear()
        self.hide_isolated_nodes = False

    # --------------------------------------------------------------- predicate

    def accepts(self, row: EdgeRow) -> bool:
        """Return ``True`` if the row survives the filter."""
        if row.is_node_row():
            if self.hide_isolated_nodes:
                return False
            return row.node1_label.lower() not in self.hidden_node_labels
        edge_label = row.edge_label.lower()
        if self.only_edge_labels and edge_label not in self.only_edge_labels:
            return False
        if edge_label in self.hidden_edge_labels:
            return False
        if row.node1_label.lower() in self.hidden_node_labels:
            return False
        if row.node2_label.lower() in self.hidden_node_labels:
            return False
        return True


def apply_filters(rows: list[EdgeRow], spec: FilterSpec | None) -> list[EdgeRow]:
    """Return the rows surviving ``spec`` (all rows when ``spec`` is ``None``/empty)."""
    if spec is None or spec.is_empty():
        return rows
    return [row for row in rows if spec.accepts(row)]

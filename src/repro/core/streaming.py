"""Chunked streaming of window-query results.

"The part of the graph included in the window of the user is sent from the
server to the client in small pieces, i.e., in a streaming fashion."  The
streamer slices a :class:`~repro.core.json_builder.GraphPayload` into chunks of
a configurable number of objects; the client simulator consumes the chunks one
by one and charges communication + rendering cost per chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import json

from .json_builder import GraphPayload

__all__ = ["PayloadChunk", "stream_payload", "chunk_count"]


@dataclass(frozen=True)
class PayloadChunk:
    """One streamed piece of a window-query result."""

    index: int
    total_chunks: int
    nodes: tuple[dict[str, object], ...]
    edges: tuple[dict[str, object], ...]

    @property
    def num_objects(self) -> int:
        """Number of visual objects carried by this chunk."""
        return len(self.nodes) + len(self.edges)

    @property
    def is_last(self) -> bool:
        """``True`` for the final chunk of the stream."""
        return self.index == self.total_chunks - 1

    def to_json(self) -> str:
        """Serialise this chunk (what goes on the wire for one piece)."""
        return json.dumps(
            {
                "chunk": self.index,
                "total": self.total_chunks,
                "nodes": list(self.nodes),
                "edges": list(self.edges),
            },
            separators=(",", ":"),
        )

    @property
    def byte_size(self) -> int:
        """Size of the serialised chunk in bytes (drives the communication cost model)."""
        return len(self.to_json().encode("utf-8"))


def chunk_count(payload: GraphPayload, chunk_size: int) -> int:
    """Return how many chunks a payload will be streamed in."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    total_objects = payload.num_objects
    if total_objects == 0:
        return 1
    return -(-total_objects // chunk_size)  # ceil division


def stream_payload(payload: GraphPayload, chunk_size: int = 200) -> Iterator[PayloadChunk]:
    """Yield the payload in chunks of at most ``chunk_size`` objects.

    Nodes are streamed before the edges that reference them whenever possible:
    objects are emitted in payload order (nodes first, then edges), which is how
    the original system avoids the client rendering an edge whose endpoints have
    not arrived yet.
    """
    total = chunk_count(payload, chunk_size)
    nodes = payload.nodes
    edges = payload.edges
    num_nodes = len(nodes)

    if num_nodes == 0 and not edges:
        yield PayloadChunk(index=0, total_chunks=1, nodes=(), edges=())
        return

    # Objects are emitted in payload order (nodes first, then edges); each
    # chunk is carved out of the two lists by slicing — no per-object
    # tagging tuples are allocated.
    for index in range(total):
        start = index * chunk_size
        end = start + chunk_size
        chunk_nodes = tuple(nodes[start:end]) if start < num_nodes else ()
        if end <= num_nodes:
            chunk_edges: tuple = ()
        else:
            chunk_edges = tuple(
                edges[max(start - num_nodes, 0):end - num_nodes]
            )
        yield PayloadChunk(
            index=index, total_chunks=total, nodes=chunk_nodes, edges=chunk_edges
        )

"""The graphVizdb server façade — the library's main public entry point.

A :class:`GraphVizDBServer` plays the role of the paper's "graphVizdb Core
module": it owns the preprocessing pipeline and the query managers of every
loaded dataset, and hands out exploration sessions to clients.  The demo lets
attendees "first select a dataset from a number of real-world datasets"; the
server mirrors that by managing multiple named datasets side by side.

Typical usage::

    from repro import GraphVizDBServer, GraphVizDBConfig
    from repro.graph import patent_like

    server = GraphVizDBServer(GraphVizDBConfig.small())
    server.load_dataset(patent_like(num_patents=500))
    session = server.create_session("patent-like")
    result = session.refresh()
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GraphVizDBConfig
from ..errors import QueryError
from ..graph.model import Graph
from ..storage.database import GraphVizDatabase
from .editing import GraphEditor
from .pipeline import PreprocessingPipeline, PreprocessingResult
from .query_manager import QueryManager
from .session import ExplorationSession
from .statistics import LayerStatistics, dataset_statistics, layer_statistics

__all__ = ["DatasetHandle", "GraphVizDBServer"]


@dataclass
class DatasetHandle:
    """Everything the server keeps per loaded dataset."""

    name: str
    graph: Graph
    preprocessing: PreprocessingResult
    query_manager: QueryManager

    @property
    def database(self) -> GraphVizDatabase:
        """The dataset's indexed database."""
        return self.preprocessing.database


class GraphVizDBServer:
    """Hosts preprocessed datasets and serves exploration sessions."""

    def __init__(self, config: GraphVizDBConfig | None = None) -> None:
        self.config = config or GraphVizDBConfig()
        self._datasets: dict[str, DatasetHandle] = {}

    # ----------------------------------------------------------------- loading

    def load_dataset(
        self, graph: Graph, name: str | None = None, config: GraphVizDBConfig | None = None
    ) -> DatasetHandle:
        """Preprocess ``graph`` (Steps 1-5) and register it under ``name``."""
        dataset_name = name or graph.name or f"dataset-{len(self._datasets)}"
        pipeline = PreprocessingPipeline(config or self.config)
        preprocessing = pipeline.run(graph)
        query_manager = QueryManager(preprocessing.database, self.config.client)
        handle = DatasetHandle(
            name=dataset_name,
            graph=graph,
            preprocessing=preprocessing,
            query_manager=query_manager,
        )
        self._datasets[dataset_name] = handle
        return handle

    def register_database(self, graph: Graph, database: GraphVizDatabase, name: str) -> DatasetHandle:
        """Register an already-built database (e.g. loaded from SQLite).

        The preprocessing artefacts other than the database are unavailable in
        this path, so ``preprocessing`` holds only the database; sessions and
        queries work exactly the same.
        """
        query_manager = QueryManager(database, self.config.client)
        handle = DatasetHandle(
            name=name,
            graph=graph,
            preprocessing=PreprocessingResult.from_database(database),
            query_manager=query_manager,
        )
        self._datasets[name] = handle
        return handle

    # ------------------------------------------------------------------ access

    def datasets(self) -> list[str]:
        """Names of the loaded datasets (what the dataset selector shows)."""
        return sorted(self._datasets)

    def dataset(self, name: str) -> DatasetHandle:
        """Return a loaded dataset handle; raises :class:`QueryError` if unknown."""
        try:
            return self._datasets[name]
        except KeyError:
            raise QueryError(
                f"dataset {name!r} is not loaded; available: {', '.join(self.datasets()) or 'none'}"
            ) from None

    def unload_dataset(self, name: str) -> None:
        """Remove a dataset from the server."""
        if name not in self._datasets:
            raise QueryError(f"dataset {name!r} is not loaded")
        del self._datasets[name]

    # ---------------------------------------------------------------- sessions

    def create_session(self, name: str, start_layer: int = 0) -> ExplorationSession:
        """Create an exploration session for one dataset."""
        handle = self.dataset(name)
        return ExplorationSession(
            handle.query_manager, self.config.client, start_layer=start_layer
        )

    def create_editor(self, name: str, layer: int = 0) -> GraphEditor:
        """Create a graph editor (Edit panel) for one dataset."""
        handle = self.dataset(name)
        return GraphEditor(handle.database, layer=layer)

    # ----------------------------------------------------------------- serving

    def start_service(self, config: GraphVizDBConfig | None = None):
        """Start the concurrent serving subsystem over the loaded datasets.

        Returns a running :class:`~repro.service.frontend.ServiceRuntime`
        (a background event loop + worker pool + maintenance scheduler) with
        every currently loaded dataset registered.  The synchronous façade
        keeps working alongside it — the runtime shares the same databases
        and query managers.  Close the runtime (context manager or
        ``close()``) when done.
        """
        # Imported lazily: repro.service imports from repro.core, so a
        # module-level import here would be circular.
        from ..service.frontend import GraphVizDBService, ServiceRuntime

        service = GraphVizDBService(config or self.config)
        for name, handle in self._datasets.items():
            service.register_dataset(name, handle.database, handle.query_manager)
        return ServiceRuntime(service)

    # -------------------------------------------------------------- statistics

    def dataset_statistics(self, name: str):
        """Full statistics of a dataset's original graph (Statistics panel)."""
        return dataset_statistics(self.dataset(name).graph)

    def layer_statistics(self, name: str, layer: int) -> LayerStatistics:
        """Statistics of one abstraction layer of a dataset."""
        return layer_statistics(self.dataset(name).database, layer)

    def preprocessing_report(self, name: str):
        """The Table-I style preprocessing timing report of a dataset."""
        report = self.dataset(name).preprocessing.report
        if report is None:
            raise QueryError(f"dataset {name!r} was registered without preprocessing timings")
        return report

"""Statistics panel backend.

The demo UI has a Statistics panel "that offers basic statistics for the graph
(e.g., average node degree, density, etc.)".  Statistics are computed per layer
either from the original graph (when available) or from the stored rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.metrics import GraphStatistics, compute_statistics
from ..graph.model import Graph
from ..storage.database import GraphVizDatabase

__all__ = ["LayerStatistics", "layer_statistics", "dataset_statistics"]


@dataclass(frozen=True)
class LayerStatistics:
    """Statistics for one abstraction layer as shown in the panel."""

    layer: int
    num_nodes: int
    num_edges: int
    average_degree: float
    density: float

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable dictionary."""
        return {
            "layer": self.layer,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "average_degree": self.average_degree,
            "density": self.density,
        }


def layer_statistics(database: GraphVizDatabase, layer: int) -> LayerStatistics:
    """Compute statistics for one stored layer from its rows."""
    table = database.table(layer)
    node_ids = table.distinct_node_ids()
    num_nodes = len(node_ids)
    num_edges = sum(1 for row in table.scan() if not row.is_node_row())
    average_degree = 2.0 * num_edges / num_nodes if num_nodes else 0.0
    possible = num_nodes * (num_nodes - 1)
    density = num_edges / possible if possible else 0.0
    return LayerStatistics(
        layer=layer,
        num_nodes=num_nodes,
        num_edges=num_edges,
        average_degree=average_degree,
        density=density,
    )


def dataset_statistics(graph: Graph) -> GraphStatistics:
    """Full statistics bundle for the original dataset (layer 0 graph)."""
    return compute_statistics(graph)
